"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run
    Generate a workload, push it through the simulated bottleneck port
    with PrintQueue attached, and diagnose the worst victims.
scenario
    Same, for the named scenarios (microburst / incast / burst-case-study).
overhead
    Print the SRAM and control-plane bandwidth of a configuration.
stats
    Run a workload (or a saved .pqtrace) and print the RunReport —
    collision/pass rates per window level, stale-filter and
    queue-monitor counters — as a summary, JSON, or Prometheus text.
trace
    Generate a workload and save it as a .pqtrace file (or inspect one).
faults
    List the built-in fault-injection profiles (``--faults`` on run/stats
    runs the control plane under one of them).
lint
    Run pqlint, the domain-invariant static analyser (rules
    PQ001-PQ005), over ``src/repro`` or the given paths.
store
    Snapshot-store tooling: ``inspect`` a recording's header and record
    counts, ``record`` a run's poll stream to disk, and ``replay`` a
    recording through any store backend, re-running the same
    deterministic probe queries (``run --store mmap`` records too).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional

from repro.core.config import PrintQueueConfig
from repro.core.diagnosis import Diagnoser
from repro.experiments.figures import timeline
from repro.experiments.runner import simulate_workload
from repro.metrics.overhead import (
    pcie_limit_mbps,
    printqueue_storage_mbps,
    queue_monitor_sram_bytes,
    sram_utilization,
    time_windows_sram_bytes,
)
from repro.obs.metrics import Metrics
from repro.traffic import pcaplike
from repro.traffic.scenarios import (
    incast_scenario,
    microburst_scenario,
    udp_burst_case_study,
)


# Cleanup callbacks run when a command is interrupted (SIGINT/SIGTERM):
# commands register flushes here so partial state (a half-written store
# recording, collected metrics) survives the interrupt instead of dying
# with a bare traceback.  main() drains the list on KeyboardInterrupt.
_interrupt_hooks: List[Callable[[], None]] = []


def on_interrupt(hook: Callable[[], None]) -> None:
    """Register a flush/cleanup callback for SIGINT/SIGTERM."""
    _interrupt_hooks.append(hook)


def _run_interrupt_hooks() -> None:
    while _interrupt_hooks:
        hook = _interrupt_hooks.pop()
        try:
            hook()
        except Exception as exc:  # cleanup must never mask the interrupt
            print(f"interrupt cleanup failed: {exc!r}", file=sys.stderr)


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    from repro.faults import profile_names

    parser.add_argument(
        "--faults",
        choices=profile_names(),
        default=None,
        metavar="PROFILE",
        help="run the control plane under a seeded fault-injection "
        "profile (see `repro faults list`); default: perfect channel",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="re-seed the fault profile's RNG (independent of the "
        "workload --seed); default: the profile's own seed",
    )


def _resolve_faults(args: argparse.Namespace):
    """The --faults/--fault-seed pair as a FaultPlan (or None)."""
    if args.faults is None:
        return None
    from repro.faults import profile

    plan = profile(args.faults)
    if args.fault_seed is not None:
        plan = plan.with_seed(args.fault_seed)
    return plan


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--m0", type=int, default=10, help="cell-period exponent")
    parser.add_argument("--k", type=int, default=12, help="cells-per-window exponent")
    parser.add_argument("--alpha", type=int, default=1, help="compression factor")
    parser.add_argument("--T", type=int, default=4, help="number of time windows")
    parser.add_argument(
        "--min-packet", type=int, default=1500, help="min packet bytes for d"
    )


def _config_from(args: argparse.Namespace) -> PrintQueueConfig:
    return PrintQueueConfig(
        m0=args.m0,
        k=args.k,
        alpha=args.alpha,
        T=args.T,
        min_packet_bytes=args.min_packet,
    )


def _resolve_store(args: argparse.Namespace):
    """The --store/--store-path pair as a SnapshotStore (or None)."""
    backend = getattr(args, "store", None)
    if backend in (None, "memory"):
        return None
    from repro.store import MmapStore

    path = getattr(args, "store_path", None) or "run.pqstore"
    return MmapStore(path)


def _build_trace(args: argparse.Namespace):
    if args.scenario == "microburst":
        return microburst_scenario(seed=args.seed)
    if args.scenario == "incast":
        return incast_scenario(seed=args.seed)
    if args.scenario == "burst-case-study":
        return udp_burst_case_study(seed=args.seed).trace
    raise SystemExit(f"unknown scenario {args.scenario!r}")


def _maybe_write_report(run, args: argparse.Namespace) -> None:
    """Save the run's RunReport when ``--metrics-out`` was given."""
    out = getattr(args, "metrics_out", None)
    if out:
        run.report().save(out)
        print(f"metrics: wrote RunReport to {out}")


def cmd_run(args: argparse.Namespace) -> int:
    """Handle `repro run`: simulate a workload and diagnose victims."""
    config = _config_from(args)
    store = _resolve_store(args)
    metrics = Metrics() if args.metrics_out else None
    if store is not None:
        # An interrupt mid-run still leaves a valid (partial) recording.
        on_interrupt(store.flush)
    if metrics is not None:
        out = args.metrics_out

        def _flush_metrics() -> None:
            import json

            with open(out, "w") as fh:
                json.dump(
                    {"interrupted": True, "metrics": metrics.snapshot()},
                    fh,
                    indent=2,
                    sort_keys=True,
                )
            print(f"metrics: wrote partial sample to {out}", file=sys.stderr)

        on_interrupt(_flush_metrics)
    run = simulate_workload(
        args.workload,
        duration_ns=int(args.duration_ms * 1e6),
        load=args.load,
        config=config,
        seed=args.seed,
        engine=args.engine,
        metrics=metrics,
        faults=_resolve_faults(args),
        store=store,
    )
    _interrupt_hooks.clear()  # run finished; nothing partial to flush
    _report(run, args.victims)
    _maybe_print_faults(run)
    _maybe_write_report(run, args)
    if store is not None:
        store.flush()
        print(
            f"store: recorded poll stream to {store.path} "
            f"({store.tw_added} tw + {store.qm_added} qm snapshots)"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Handle `repro scenario`: run a named scenario and diagnose."""
    config = _config_from(args)
    trace = _build_trace(args)
    run = simulate_workload(
        "unused",
        1,
        config=config,
        trace=trace,
        seed=args.seed,
        metrics=Metrics() if args.metrics_out else None,
    )
    if args.plot:
        times = [r.enq_timestamp for r in run.records]
        depths = [r.enq_qdepth for r in run.records]
        print("queue depth over time:")
        print(timeline(times, depths))
    _report(run, args.victims)
    _maybe_write_report(run, args)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Handle `repro stats`: run a workload and print its RunReport."""
    config = _config_from(args)
    trace = pcaplike.read_trace(args.trace) if args.trace else None
    run = simulate_workload(
        args.workload,
        duration_ns=int(args.duration_ms * 1e6),
        load=args.load,
        config=config,
        seed=args.seed,
        trace=trace,
        engine=args.engine,
        metrics=Metrics(),
        faults=_resolve_faults(args),
    )
    if args.queries > 0 and run.records:
        from repro.core.queries import QueryInterval

        victims = sorted(run.records, key=lambda r: -r.queuing_delay)
        victims = victims[: args.queries]
        run.pq.query(
            intervals=[
                QueryInterval.for_victim(v.enq_timestamp, v.deq_timestamp)
                for v in victims
            ]
        )
    report = run.report()
    if args.format == "json":
        print(report.to_json())
    elif args.format == "prom":
        print(report.to_prometheus(), end="")
    else:
        print(report.summary())
    if args.metrics_out:
        report.save(args.metrics_out)
        print(f"metrics: wrote RunReport to {args.metrics_out}", file=sys.stderr)
    return 0


def _maybe_print_faults(run) -> None:
    """One-line digest of injection + resilience on a fault-injected run."""
    pq = run.pq
    poller = getattr(pq, "_poller", None)
    if poller is None:
        return
    injected = sum(pq.faults.injected.values())
    log = poller.log
    print(
        f"faults ({pq.faults.plan.name}, seed {pq.faults.plan.seed}): "
        f"{injected} injected; lost polls={log.lost_polls} "
        f"delayed={log.delayed_polls} retries={log.retries} "
        f"recovered={log.reads_recovered} "
        f"quarantined cells={log.quarantined_cells}"
    )


def cmd_faults(args: argparse.Namespace) -> int:
    """Handle `repro faults`: describe the built-in fault profiles."""
    from repro.faults import PROFILES, profile_names

    for name in profile_names():
        print(PROFILES[name].describe())
    return 0


def _report(run, num_victims: int) -> None:
    records = run.records
    print(
        f"{len(records)} packets forwarded; "
        f"max depth {max(r.enq_qdepth for r in records)} pkts; "
        f"{len(run.pq.analysis.tw_snapshots)} snapshots"
    )
    diagnoser = Diagnoser(run.pq)
    victims = sorted(records, key=lambda r: -r.queuing_delay)[:num_victims]
    for victim in victims:
        print()
        print(diagnoser.diagnose_record(victim).summary(top=3))


def cmd_overhead(args: argparse.Namespace) -> int:
    """Handle `repro overhead`: print SRAM and polling budgets."""
    config = _config_from(args)
    tw = time_windows_sram_bytes(config, num_ports=args.ports)
    qm = queue_monitor_sram_bytes(config, num_ports=args.ports)
    util = sram_utilization(
        config, num_ports=args.ports, include_queue_monitor=True
    )
    mbps = printqueue_storage_mbps(config)
    print(f"configuration: {config.describe()} ports={args.ports}")
    print(f"time windows SRAM : {tw / 1024:.0f} KiB")
    print(f"queue monitor SRAM: {qm / 1024:.0f} KiB")
    print(f"total utilisation : {100 * util:.2f}% of pipe budget")
    print(
        f"polling bandwidth : {mbps:.2f} MB/s "
        f"(limit {pcie_limit_mbps():.1f} MB/s -> "
        f"{'feasible' if mbps <= pcie_limit_mbps() else 'INFEASIBLE'})"
    )
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    """Handle `repro advise`: sanity-check a configuration."""
    from repro.core.advisor import advise, worst_severity

    config = _config_from(args)
    notes = advise(
        config,
        packet_interval_ns=args.packet_interval,
        expected_max_depth=args.max_depth,
        query_horizon_ns=(
            int(args.horizon_ms * 1e6) if args.horizon_ms is not None else None
        ),
    )
    print(f"configuration: {config.describe()}")
    if not notes:
        print("no findings: configuration looks sound for this workload")
        return 0
    for note in notes:
        print(f"  {note}")
    worst = worst_severity(notes)
    return 1 if worst is not None and worst.value == "error" else 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Handle `repro trace`: generate or inspect .pqtrace files."""
    if args.inspect:
        trace = pcaplike.read_trace(args.path)
        print(
            f"{args.path}: {len(trace)} packets, {trace.num_flows} flows, "
            f"{trace.duration_ns / 1e6:.2f} ms, "
            f"{trace.offered_load_bps() / 1e9:.2f} Gbps offered"
        )
        return 0
    from repro.traffic.distributions import distribution_by_name
    from repro.traffic.generator import PoissonWorkload, WorkloadConfig

    workload = PoissonWorkload(
        distribution_by_name(args.workload),
        WorkloadConfig(load=args.load, duration_ns=int(args.duration_ms * 1e6)),
        seed=args.seed,
    )
    trace = workload.generate()
    count = pcaplike.write_trace(trace, args.path)
    print(f"wrote {count} records to {args.path} "
          f"({pcaplike.trace_file_bytes(count)} bytes)")
    return 0


def _probe_digest(analysis, count: int) -> List[str]:
    """Deterministic probe-query digest shared by record and replay.

    One line per probe interval (see
    :func:`repro.store.default_probe_intervals`): byte-identical output
    on both sides is the CLI-level replay-determinism check.
    """
    from repro.store import default_probe_intervals

    intervals = default_probe_intervals(analysis, count)
    if not intervals:
        return ["probe: no periodic snapshots to query"]
    estimates = analysis.query_time_windows_batch(intervals, source="periodic")
    lines = []
    for interval, estimate in zip(intervals, estimates):
        top = estimate.top(1)
        suffix = f" top={top[0][0]}={top[0][1]:g}" if top else ""
        lines.append(
            f"probe [{interval.start_ns},{interval.end_ns}): "
            f"total={estimate.total:g}{suffix}"
        )
    return lines


def _store_stats_line(store) -> str:
    """One-line ``stats()`` digest for record/replay output."""
    stats = store.stats()
    return (
        f"store ({stats['backend']}): version={stats['version']} "
        f"tw={stats['tw_snapshots']} qm={stats['qm_snapshots']} "
        f"evicted={stats['tw_evictions']}+{stats['qm_evictions']} "
        f"thinned={stats['tw_thinned']} bytes={stats['bytes_total']}"
    )


def cmd_store(args: argparse.Namespace) -> int:
    """Handle `repro store`: inspect / record / replay recordings."""
    import json

    from repro.store import (
        MemoryStore,
        Recorder,
        read_recording,
        replay_analysis,
        replay_store,
    )

    if args.action == "inspect":
        info = read_recording(args.path)
        if args.json:
            store = replay_store(args.path, backend="memory")
            info = dict(info, stats=store.stats())
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        meta = info["meta"]
        config = meta.get("config", {})
        described = " ".join(f"{k}={v}" for k, v in sorted(config.items()))
        print(f"{args.path}: {info['bytes']} bytes, {info['records']} records")
        print(
            f"  tw adds={info['tw_records']} qm adds={info['qm_records']} "
            f"replacements={info['replace_records']}"
        )
        print(f"  config: {described}")
        print(f"  retention: {meta.get('retention')}")
        return 0

    if args.action == "record":
        store = MemoryStore()
        recorder = Recorder(args.path)
        store.attach_recorder(recorder)
        run = simulate_workload(
            args.workload,
            duration_ns=int(args.duration_ms * 1e6),
            load=args.load,
            config=_config_from(args),
            seed=args.seed,
            faults=_resolve_faults(args),
            store=store,
        )
        for line in _probe_digest(run.pq.analysis, args.queries):
            print(line)
        print(_store_stats_line(store))
        recorder.close()
        print(f"recorded {len(run.records)} packets' poll stream to {args.path}")
        return 0

    # replay
    analysis = replay_analysis(args.path, backend=args.backend)
    for line in _probe_digest(analysis, args.queries):
        print(line)
    print(_store_stats_line(analysis.store))
    print(
        f"replayed {analysis.store.replay_position} records from "
        f"{args.path} into the {args.backend} backend"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle `repro serve`: run the always-on diagnosis service.

    Live ingest of the configured workload runs concurrently with query
    serving on a local socket until SIGINT/SIGTERM (or ``--duration-s``)
    stops it; shutdown is graceful — in-flight queries drain against the
    deadline, the store flushes, and the exit code is 0.
    """
    import asyncio
    import json
    import signal

    from repro.service import DiagnosisService, ServiceConfig

    config = ServiceConfig(
        workload=args.workload,
        duration_ns=int(args.duration_ms * 1e6),
        load=args.load,
        seed=args.seed,
        engine=args.engine,
        faults=_resolve_faults(args),
        pq_config=_config_from(args),
        port=args.port,
        max_pending=args.max_pending,
        rate_limit_qps=args.rate_limit_qps,
    )
    service = DiagnosisService(config=config)

    async def _serve() -> None:
        host, port = await service.start()
        print(f"serving on {host}:{port}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as fh:
                fh.write(f"{host} {port}\n")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        if args.duration_s is not None:
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.duration_s)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
        print("shutting down: draining in-flight queries", flush=True)
        await service.shutdown()

    asyncio.run(_serve())
    status = service.status()
    print(json.dumps(status, indent=2, sort_keys=True))
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(
                {"status": status, "metrics": service.metrics.snapshot()},
                fh,
                indent=2,
                sort_keys=True,
            )
        print(f"metrics: wrote service report to {args.metrics_out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Handle `repro lint`: run pqlint over the given paths."""
    from pathlib import Path

    from repro.anlz import (
        git_changed_files,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        rule_codes,
    )
    from repro.anlz.rules import RULE_REGISTRY

    if args.list_rules:
        for code in rule_codes():
            rule = RULE_REGISTRY[code]
            print(f"{code}  {rule.name:<18} {rule.summary}")
        return 0
    only = None
    if args.rules is not None:
        only = [code.strip() for code in args.rules.split(",") if code.strip()]
    changed = None
    if args.changed is not None:
        try:
            changed = git_changed_files(args.changed)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    try:
        result = lint_paths(
            [Path(p) for p in args.paths], only=only, changed=changed
        )
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrintQueue reproduction: queue-measurement diagnosis",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload and diagnose victims")
    run.add_argument("--workload", choices=["ws", "dm", "uw"], default="ws")
    run.add_argument("--duration-ms", type=float, default=40.0)
    run.add_argument("--load", type=float, default=1.2)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--victims", type=int, default=1)
    run.add_argument(
        "--engine",
        choices=["batched", "fused", "scalar", "sharded"],
        default="batched",
        help="ingest engine: vectorised batches, the fused record-array "
        "kernel, the scalar reference, or the sharded multi-process "
        "driver (falls back to in-process fused when pools are "
        "unavailable)",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="save a JSON RunReport of the run to PATH",
    )
    run.add_argument(
        "--store",
        choices=["memory", "mmap"],
        default="memory",
        help="snapshot-store backend; `mmap` writes a replayable "
        "recording to --store-path (default: in-memory)",
    )
    run.add_argument(
        "--store-path",
        default=None,
        metavar="PATH",
        help="backing file for --store mmap (default: run.pqstore)",
    )
    _add_faults_arg(run)
    _add_config_args(run)
    run.set_defaults(func=cmd_run)

    scenario = sub.add_parser("scenario", help="run a named scenario")
    scenario.add_argument(
        "scenario", choices=["microburst", "incast", "burst-case-study"]
    )
    scenario.add_argument("--seed", type=int, default=1)
    scenario.add_argument("--victims", type=int, default=1)
    scenario.add_argument("--plot", action="store_true")
    scenario.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="save a JSON RunReport of the run to PATH",
    )
    _add_config_args(scenario)
    scenario.set_defaults(func=cmd_scenario)

    stats = sub.add_parser(
        "stats", help="run a workload and print its observability RunReport"
    )
    stats.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="optional .pqtrace file to replay (default: generate --workload)",
    )
    stats.add_argument("--workload", choices=["ws", "dm", "uw"], default="ws")
    stats.add_argument("--duration-ms", type=float, default=40.0)
    stats.add_argument("--load", type=float, default=1.2)
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument(
        "--engine",
        choices=["batched", "fused", "scalar", "sharded"],
        default="batched",
        help="ingest engine (reports are counter-identical across engines)",
    )
    stats.add_argument(
        "--format",
        choices=["summary", "json", "prom"],
        default="summary",
        help="output format: human summary, JSON, or Prometheus text",
    )
    stats.add_argument(
        "--queries",
        type=int,
        default=0,
        metavar="N",
        help="batch-query the N worst victims before reporting, so the "
        "report includes query/plan-cache activity",
    )
    stats.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also save the JSON RunReport to PATH",
    )
    _add_faults_arg(stats)
    _add_config_args(stats)
    stats.set_defaults(func=cmd_stats)

    overhead = sub.add_parser("overhead", help="SRAM / bandwidth of a config")
    overhead.add_argument("--ports", type=int, default=1)
    _add_config_args(overhead)
    overhead.set_defaults(func=cmd_overhead)

    advise_cmd = sub.add_parser(
        "advise", help="sanity-check a configuration against a workload"
    )
    advise_cmd.add_argument(
        "--packet-interval",
        type=float,
        default=None,
        help="mean inter-departure time under congestion, ns",
    )
    advise_cmd.add_argument("--max-depth", type=int, default=None)
    advise_cmd.add_argument("--horizon-ms", type=float, default=None)
    _add_config_args(advise_cmd)
    advise_cmd.set_defaults(func=cmd_advise)

    faults = sub.add_parser(
        "faults", help="describe the built-in fault-injection profiles"
    )
    faults.add_argument(
        "action",
        nargs="?",
        choices=["list"],
        default="list",
        help="what to do (only `list` for now)",
    )
    faults.set_defaults(func=cmd_faults)

    trace = sub.add_parser("trace", help="generate or inspect .pqtrace files")
    trace.add_argument("path")
    trace.add_argument("--inspect", action="store_true")
    trace.add_argument("--workload", choices=["ws", "dm", "uw"], default="ws")
    trace.add_argument("--duration-ms", type=float, default=10.0)
    trace.add_argument("--load", type=float, default=1.0)
    trace.add_argument("--seed", type=int, default=1)
    trace.set_defaults(func=cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the always-on diagnosis service (live ingest + query "
        "serving over a local socket)",
    )
    serve.add_argument("--workload", choices=["ws", "dm", "uw"], default="ws")
    serve.add_argument("--duration-ms", type=float, default=50.0,
                       help="length of the live workload the ingest task replays")
    serve.add_argument("--load", type=float, default=1.2)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--engine",
        choices=["batched", "fused"],
        default="fused",
        help="ingest engine driven by the live ingest task",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port on 127.0.0.1 (default 0 = ephemeral)",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="write `host port` to PATH once the socket is bound",
    )
    serve.add_argument(
        "--duration-s",
        type=float,
        default=None,
        metavar="S",
        help="auto-stop after S seconds (default: run until SIGINT/SIGTERM)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="bounded request-queue depth (admission control)",
    )
    serve.add_argument(
        "--rate-limit-qps",
        type=float,
        default=0.0,
        help="token-bucket sustained rate; 0 disables rate limiting",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="save the final service status + metrics snapshot to PATH",
    )
    _add_faults_arg(serve)
    _add_config_args(serve)
    serve.set_defaults(func=cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="run pqlint, the domain-invariant static analyser "
        "(PQ001-PQ005 file rules, PQ101-PQ105 concurrency rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--changed",
        default=None,
        metavar="REF",
        help="only report findings in *.py files changed vs this git ref "
        "(call graph stays project-wide)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.set_defaults(func=cmd_lint)

    store = sub.add_parser(
        "store", help="inspect, record, and replay snapshot-store recordings"
    )
    store_sub = store.add_subparsers(dest="action", required=True)

    inspect = store_sub.add_parser(
        "inspect", help="print a recording's header metadata and record counts"
    )
    inspect.add_argument("path", help="recording file (.pqstore)")
    inspect.add_argument(
        "--json",
        action="store_true",
        help="emit JSON (meta + counts + replayed store stats; feed to "
        "tools/lint_report.py --store-json)",
    )
    inspect.set_defaults(func=cmd_store)

    record = store_sub.add_parser(
        "record", help="run a workload and record its poll stream to disk"
    )
    record.add_argument("path", help="recording file to write (.pqstore)")
    record.add_argument("--workload", choices=["ws", "dm", "uw"], default="ws")
    record.add_argument("--duration-ms", type=float, default=10.0)
    record.add_argument("--load", type=float, default=1.2)
    record.add_argument("--seed", type=int, default=1)
    record.add_argument(
        "--queries",
        type=int,
        default=4,
        metavar="N",
        help="probe-query the last N periodic snapshots and print the "
        "digest (replay prints the identical lines)",
    )
    _add_faults_arg(record)
    _add_config_args(record)
    record.set_defaults(func=cmd_store)

    replay = store_sub.add_parser(
        "replay",
        help="rebuild a recorded run in any backend and re-run its probes",
    )
    replay.add_argument("path", help="recording file (.pqstore)")
    replay.add_argument(
        "--backend",
        choices=["memory", "mmap", "compressed"],
        default="memory",
        help="store backend to replay into (default: memory)",
    )
    replay.add_argument(
        "--queries",
        type=int,
        default=4,
        metavar="N",
        help="probe-query the last N periodic snapshots (match against "
        "the record-side digest)",
    )
    replay.set_defaults(func=cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    SIGTERM is mapped onto ``KeyboardInterrupt`` so both interrupt paths
    behave the same: registered cleanup hooks flush partial state (store
    recordings, metrics samples), a one-line notice goes to stderr, and
    the exit code is 130 — never a bare traceback.  (``repro serve``
    installs its own asyncio signal handlers for graceful drain and
    exits 0 instead.)
    """
    import signal

    parser = build_parser()
    args = parser.parse_args(argv)

    def _sigterm(_signum: int, _frame: object) -> None:
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:
        pass  # not the main thread (embedded use): keep existing handler
    try:
        return args.func(args)
    except KeyboardInterrupt:
        _run_interrupt_hooks()
        print("interrupted: partial state flushed", file=sys.stderr)
        return 130
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


if __name__ == "__main__":
    sys.exit(main())
