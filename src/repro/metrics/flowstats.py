"""Per-flow statistics over a dequeue log.

Operators acting on PrintQueue's culprit reports usually want flow-level
context next: how big is the culprit flow, what rate was it pushing, how
long has it been active, is it an elephant or one of many mice.  This
module derives those statistics from the ground-truth records (or any
iterable of per-packet observations) so examples and analyses can rank
and describe flows consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.switch.packet import FlowKey
from repro.switch.telemetry import DequeueRecord


@dataclass
class FlowStats:
    """Aggregated behaviour of one flow at the measured port."""

    flow: FlowKey
    packets: int
    bytes: int
    first_enq_ns: int
    last_deq_ns: int
    max_queuing_ns: int
    sum_queuing_ns: int

    @property
    def duration_ns(self) -> int:
        return max(1, self.last_deq_ns - self.first_enq_ns)

    @property
    def rate_bps(self) -> float:
        return self.bytes * 8 / (self.duration_ns / 1e9)

    @property
    def mean_queuing_ns(self) -> float:
        return self.sum_queuing_ns / max(1, self.packets)

    @property
    def mean_packet_bytes(self) -> float:
        return self.bytes / max(1, self.packets)


def collect_flow_stats(records: Iterable[DequeueRecord]) -> Dict[FlowKey, FlowStats]:
    """Fold a dequeue log into per-flow statistics."""
    stats: Dict[FlowKey, FlowStats] = {}
    for r in records:
        s = stats.get(r.flow)
        if s is None:
            stats[r.flow] = FlowStats(
                flow=r.flow,
                packets=1,
                bytes=r.size_bytes,
                first_enq_ns=r.enq_timestamp,
                last_deq_ns=r.deq_timestamp,
                max_queuing_ns=r.queuing_delay,
                sum_queuing_ns=r.queuing_delay,
            )
            continue
        s.packets += 1
        s.bytes += r.size_bytes
        s.first_enq_ns = min(s.first_enq_ns, r.enq_timestamp)
        s.last_deq_ns = max(s.last_deq_ns, r.deq_timestamp)
        s.max_queuing_ns = max(s.max_queuing_ns, r.queuing_delay)
        s.sum_queuing_ns += r.queuing_delay
    return stats


def rank_by_packets(
    stats: Dict[FlowKey, FlowStats], top: Optional[int] = None
) -> List[FlowStats]:
    """Flows by descending packet count."""
    ranked = sorted(stats.values(), key=lambda s: (-s.packets, str(s.flow)))
    return ranked if top is None else ranked[:top]


def elephant_mice_split(
    stats: Dict[FlowKey, FlowStats], byte_fraction: float = 0.8
) -> Tuple[List[FlowStats], List[FlowStats]]:
    """Smallest flow set carrying ``byte_fraction`` of bytes vs the rest.

    The classic elephant definition: the few flows that together carry
    most of the traffic.
    """
    if not 0 < byte_fraction < 1:
        raise ValueError(f"fraction must be in (0,1), got {byte_fraction}")
    ranked = sorted(stats.values(), key=lambda s: -s.bytes)
    total = sum(s.bytes for s in ranked)
    elephants: List[FlowStats] = []
    acc = 0
    for s in ranked:
        if total and acc >= byte_fraction * total:
            break
        elephants.append(s)
        acc += s.bytes
    mice = ranked[len(elephants):]
    return elephants, mice


def flow_completion_times(
    stats: Dict[FlowKey, FlowStats]
) -> List[Tuple[FlowKey, int]]:
    """(flow, FCT) pairs — port-local completion times, ascending."""
    out = [(s.flow, s.duration_ns) for s in stats.values()]
    out.sort(key=lambda kv: kv[1])
    return out
