"""Precision / recall scoring, as defined in Section 7.1.

For every flow in the query period, the *true positives* are
``min(estimate, ground_truth)`` — the packets PrintQueue correctly
attributes.  Precision is their sum over the cumulative estimate; recall
is their sum over the cumulative ground truth.  Both equal 1 exactly when
the estimate matches the ground truth flow-for-flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.core.queries import FlowEstimate, flow_order_key
from repro.switch.packet import FlowKey


@dataclass(frozen=True)
class AccuracyScore:
    """A single query's (precision, recall) pair."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _as_mapping(obj) -> Mapping[FlowKey, float]:
    if isinstance(obj, FlowEstimate):
        return obj.as_dict()
    return obj


def precision_recall(estimate, truth) -> AccuracyScore:
    """Packet-count-weighted precision/recall (the paper's metric).

    Conventions for degenerate cases: an empty truth with an empty
    estimate scores (1, 1); an empty truth with a non-empty estimate
    scores (0, 1); the reverse scores (1, 0).
    """
    est = _as_mapping(estimate)
    tru = _as_mapping(truth)
    est_total = sum(est.values())
    tru_total = sum(tru.values())
    tp = 0.0
    for flow, est_count in est.items():
        true_count = tru.get(flow, 0.0)
        if true_count:
            tp += min(est_count, true_count)
    # Clamp: tp is mathematically <= each total, but summing the per-flow
    # minima in a different order than the totals can overshoot by an ulp.
    precision = min(1.0, tp / est_total) if est_total > 0 else 1.0
    recall = min(1.0, tp / tru_total) if tru_total > 0 else 1.0
    return AccuracyScore(precision, recall)


def topk_precision_recall(estimate, truth, k: int) -> AccuracyScore:
    """Accuracy restricted to the heaviest flows (Figure 12's metric).

    Precision is evaluated over the top-k flows *by estimate* (does what
    PrintQueue reports hold up?); recall over the top-k flows *by ground
    truth* (does PrintQueue find the flows that matter?).
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    est = _as_mapping(estimate)
    tru = _as_mapping(truth)
    # Ties at the k-th rank break on the numeric 5-tuple, so the cut is
    # deterministic regardless of dict insertion order (which differs
    # between the scalar and columnar query paths).
    top_est = dict(
        sorted(est.items(), key=lambda kv: (-kv[1], flow_order_key(kv[0])))[:k]
    )
    top_tru = dict(
        sorted(tru.items(), key=lambda kv: (-kv[1], flow_order_key(kv[0])))[:k]
    )
    est_total = sum(top_est.values())
    tru_total = sum(top_tru.values())
    tp_precision = sum(
        min(count, tru.get(flow, 0.0)) for flow, count in top_est.items()
    )
    tp_recall = sum(
        min(est.get(flow, 0.0), count) for flow, count in top_tru.items()
    )
    precision = min(1.0, tp_precision / est_total) if est_total > 0 else 1.0
    recall = min(1.0, tp_recall / tru_total) if tru_total > 0 else 1.0
    return AccuracyScore(precision, recall)


def summarize_scores(scores: Sequence[AccuracyScore]) -> Dict[str, float]:
    """Mean and median precision/recall over a batch of queries."""
    if not scores:
        return {
            "mean_precision": math.nan,
            "mean_recall": math.nan,
            "median_precision": math.nan,
            "median_recall": math.nan,
            "count": 0,
        }
    precisions = sorted(s.precision for s in scores)
    recalls = sorted(s.recall for s in scores)

    def median(values: List[float]) -> float:
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2

    return {
        "mean_precision": sum(precisions) / len(precisions),
        "mean_recall": sum(recalls) / len(recalls),
        "median_precision": median(precisions),
        "median_recall": median(recalls),
        "count": len(scores),
    }


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for CDF plots (Figure 10)."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    return [(value, (i + 1) / n) for i, value in enumerate(data)]
