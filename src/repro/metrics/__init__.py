"""Evaluation metrics: accuracy scoring and hardware-overhead models."""

from repro.metrics.accuracy import (
    AccuracyScore,
    precision_recall,
    summarize_scores,
    topk_precision_recall,
)
from repro.metrics.overhead import (
    linear_storage_mbps,
    pcie_limit_mbps,
    printqueue_storage_mbps,
    queue_monitor_sram_bytes,
    sram_utilization,
    time_windows_sram_bytes,
)

__all__ = [
    "AccuracyScore",
    "precision_recall",
    "topk_precision_recall",
    "summarize_scores",
    "time_windows_sram_bytes",
    "queue_monitor_sram_bytes",
    "sram_utilization",
    "printqueue_storage_mbps",
    "linear_storage_mbps",
    "pcie_limit_mbps",
]
