"""Hardware-overhead models: SRAM footprints and control-plane bandwidth.

These analytic models back the overhead figures (Fig. 13-15).  The paper
reports *relative* numbers (utilization percentages, linear:exponential
ratios, a data-exchange-limit line), so the shapes reproduce as long as
one consistent set of budget constants is used; the constants live in
:mod:`repro.units` and are documented there.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PrintQueueConfig
from repro.units import (
    PCIE_BYTES_PER_ENTRY,
    PCIE_REGISTER_READS_PER_SEC,
    TOFINO_PIPE_SRAM_BYTES,
)

#: Bytes per time-window cell: a 64-bit flow identity plus a 32-bit cycle
#: ID, padded to the register-word granularity.
TW_CELL_BYTES = 16

#: Bytes per queue-monitor level: upper (increase) and lower (decrease)
#: halves, each a 64-bit flow identity plus a 32-bit sequence number.
QM_LEVEL_BYTES = 32

#: Register banks kept per structure (active / standby / special, Fig. 8).
NUM_BANKS = 3


def time_windows_sram_bytes(
    config: PrintQueueConfig,
    num_ports: Optional[int] = None,
    banks: int = NUM_BANKS,
) -> int:
    """SRAM for the time-window arrays across all banks and partitions."""
    ports = config.rounded_ports if num_ports is None else _round_up(num_ports)
    return config.T * config.num_cells * TW_CELL_BYTES * ports * banks


def queue_monitor_sram_bytes(
    config: PrintQueueConfig, num_ports: Optional[int] = None
) -> int:
    """SRAM for the queue-monitor stack (single-banked; read atomically)."""
    ports = config.rounded_ports if num_ports is None else _round_up(num_ports)
    return config.qm_levels * QM_LEVEL_BYTES * ports


def sram_utilization(
    config: PrintQueueConfig,
    num_ports: Optional[int] = None,
    include_queue_monitor: bool = False,
    budget_bytes: int = TOFINO_PIPE_SRAM_BYTES,
) -> float:
    """Fraction of the pipeline SRAM budget consumed (Fig. 14b / 15)."""
    total = time_windows_sram_bytes(config, num_ports)
    if include_queue_monitor:
        total += queue_monitor_sram_bytes(config, num_ports)
    return total / budget_bytes


def printqueue_storage_mbps(config: PrintQueueConfig) -> float:
    """Control-plane storage bandwidth: one full register set per set period.

    Entries read per set period = T * 2^k (time windows); expressed in
    MB/s of PCIe + storage traffic (Fig. 13's y-axis, Fig. 14a's
    denominator).
    """
    entries = config.T * config.num_cells
    bytes_per_set = entries * PCIE_BYTES_PER_ENTRY
    sets_per_sec = 1e9 / config.set_period_ns
    return bytes_per_set * sets_per_sec / 1e6


def linear_storage_mbps(
    packets_per_sec: float, record_bytes: int = PCIE_BYTES_PER_ENTRY
) -> float:
    """Per-packet linear storage cost (NetSight / BurstRadar style).

    Those systems export a fixed-size record for every packet (or every
    packet in a congested period); at the paper's UW rate of ~9.1 Mpps
    this is hundreds of MB/s.
    """
    if packets_per_sec < 0:
        raise ValueError("negative packet rate")
    return packets_per_sec * record_bytes / 1e6


def linear_to_exponential_ratio(
    config: PrintQueueConfig, packets_per_sec: float
) -> float:
    """Fig. 14a's y-axis: linear storage cost over PrintQueue's."""
    pq = printqueue_storage_mbps(config)
    if pq <= 0:
        raise ValueError("PrintQueue storage rate must be positive")
    return linear_storage_mbps(packets_per_sec) / pq


def pcie_limit_mbps() -> float:
    """The data-exchange-limit line of Fig. 13.

    The control plane can sustain at most
    ``PCIE_REGISTER_READS_PER_SEC`` entry reads per second; above the
    equivalent MB/s, register sets age out before they are fully read.
    """
    return PCIE_REGISTER_READS_PER_SEC * PCIE_BYTES_PER_ENTRY / 1e6


def config_is_feasible(config: PrintQueueConfig) -> bool:
    """Whether periodic polling can keep up with the set period."""
    return printqueue_storage_mbps(config) <= pcie_limit_mbps()


def _round_up(num_ports: int) -> int:
    r = 1
    while r < num_ports:
        r *= 2
    return r
