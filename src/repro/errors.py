"""Exception hierarchy for the PrintQueue reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A structurally invalid configuration (bad k/alpha/T, port counts...)."""


class SimulationError(ReproError):
    """The switch simulator was driven into an inconsistent state."""


class QueryError(ReproError):
    """A diagnosis query could not be executed (bad interval, no snapshot)."""


class RegisterError(ReproError):
    """Invalid register access (bank locked, out-of-range index...)."""


class DecodeError(ReproError):
    """A baseline structure (e.g. FlowRadar) failed to decode its state."""


class StoreError(ReproError):
    """A snapshot store operation failed (bad backend state, corrupt or
    incompatible recording, replay mismatch)."""


class FaultInjected(ReproError):
    """An injected fault surfaced to the caller.

    Raised only by a strict-mode :class:`~repro.faults.ResilientPoller`
    (debug/test aid); the default resilient path degrades gracefully
    instead of raising.
    """


class DataPlaneReadError(ReproError):
    """A control-plane register read failed outright (RPC/PCIe layer)."""


class SnapshotValidationError(DataPlaneReadError):
    """A register read violated the cycle-ID/TTS or sequence-number
    invariants (torn or corrupted cells) and strict mode forbade
    quarantining it."""


class RetryExhausted(DataPlaneReadError):
    """A read kept failing past its :class:`~repro.faults.RetryPolicy`
    attempt budget."""


class PoolTimeoutError(ReproError):
    """A process-pool worker exceeded its bounded wait.

    Raised internally by :class:`~repro.engine.parallel.ParallelSweep`
    and :class:`~repro.engine.sharded.ShardRunner` when a
    ``future.result(timeout=...)`` wait expires; both catch it as part of
    their degradation taxonomy and fall back to in-process execution, so
    callers only ever see it re-raised when the fallback itself fails.
    """


class ServiceError(ReproError):
    """Base class for always-on diagnosis-service errors."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a request (queue full or rate-limited).

    Carries ``retry_after_ms``, the server's hint for when capacity is
    expected back — the wire protocol maps it to a ``Retry-After``-style
    field so clients can back off instead of hammering a saturated
    front door.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServiceDegradedRejection(ServiceError):
    """The service is in a degraded stage that cannot serve this request.

    Unlike :class:`ServiceOverloadError` this is not about queue space:
    the request *kind* (e.g. a queue-monitor walk or an on-demand
    data-plane read) is shed in the current degradation stage.  Carries
    ``retry_after_ms`` and the ``stage`` name so clients can retry once
    the service recovers.
    """

    def __init__(
        self, message: str, stage: str = "", retry_after_ms: float = 0.0
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.retry_after_ms = retry_after_ms


class ServiceShuttingDown(ServiceError):
    """The service is draining and no longer admits new requests."""


class IngestFailed(ServiceError):
    """The supervised live-ingest task died past its restart budget."""
