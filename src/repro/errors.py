"""Exception hierarchy for the PrintQueue reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A structurally invalid configuration (bad k/alpha/T, port counts...)."""


class SimulationError(ReproError):
    """The switch simulator was driven into an inconsistent state."""


class QueryError(ReproError):
    """A diagnosis query could not be executed (bad interval, no snapshot)."""


class RegisterError(ReproError):
    """Invalid register access (bank locked, out-of-range index...)."""


class DecodeError(ReproError):
    """A baseline structure (e.g. FlowRadar) failed to decode its state."""


class StoreError(ReproError):
    """A snapshot store operation failed (bad backend state, corrupt or
    incompatible recording, replay mismatch)."""


class FaultInjected(ReproError):
    """An injected fault surfaced to the caller.

    Raised only by a strict-mode :class:`~repro.faults.ResilientPoller`
    (debug/test aid); the default resilient path degrades gracefully
    instead of raising.
    """


class DataPlaneReadError(ReproError):
    """A control-plane register read failed outright (RPC/PCIe layer)."""


class SnapshotValidationError(DataPlaneReadError):
    """A register read violated the cycle-ID/TTS or sequence-number
    invariants (torn or corrupted cells) and strict mode forbade
    quarantining it."""


class RetryExhausted(DataPlaneReadError):
    """A read kept failing past its :class:`~repro.faults.RetryPolicy`
    attempt budget."""
