"""Exception hierarchy for the PrintQueue reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A structurally invalid configuration (bad k/alpha/T, port counts...)."""


class SimulationError(ReproError):
    """The switch simulator was driven into an inconsistent state."""


class QueryError(ReproError):
    """A diagnosis query could not be executed (bad interval, no snapshot)."""


class RegisterError(ReproError):
    """Invalid register access (bank locked, out-of-range index...)."""


class DecodeError(ReproError):
    """A baseline structure (e.g. FlowRadar) failed to decode its state."""
