"""The batched ingest engine and the parallel experiment fabric.

``repro.engine`` is the performance layer between the vectorised FIFO
fast path and PrintQueue's measurement structures:

* :class:`~repro.engine.ingest.IngestPipeline` slices a merged
  enqueue/dequeue event stream into poll-boundary-aligned batches and
  drives a :class:`~repro.core.printqueue.PrintQueuePort` through the
  array-at-a-time ``absorb_batch`` / ``apply_batch`` path — producing
  bit-identical snapshots and estimates to the scalar reference loop.
* :class:`~repro.engine.fused.FusedIngestPipeline` is the top tier: it
  consumes a structured record array
  (:class:`~repro.switch.records.RecordBatch`) and swaps the port's
  banks for :class:`~repro.engine.fused.FusedTimeWindowSet`, whose
  single-pass fused absorb+pass kernel updates every time-window level
  on integer flow indices — no per-packet Python objects anywhere in
  the hot loop, still bit-identical to both slower tiers.
* :class:`~repro.engine.queryplan.CompiledQueryPlan` is the same
  treatment for the query side: snapshots compile once into columnar
  (TTS array + interned flow index) form and batched multi-victim
  queries run as ``searchsorted`` slices with in-order per-flow
  accumulation — numerically identical to the scalar reference walk.
* :class:`~repro.engine.sharded.ShardedIngestPipeline` drives the
  fused tier per egress port across a process pool: record arrays ship
  via shared memory, worker snapshot streams replay into the parent's
  store, and counters merge back — bit-identical to per-port fused
  runs, with a graceful in-process fallback.
* :class:`~repro.engine.parallel.ParallelSweep` fans independent
  (workload, config, port) experiment cells across a process pool with
  per-cell result caching, so figure-style sweeps scale with cores;
  victim scoring inside each cell goes through the batch query API.
"""

from repro.engine.fused import FusedIngestPipeline, FusedTimeWindowSet, FusedWindow
from repro.engine.ingest import IngestPipeline
from repro.engine.parallel import (
    CellResult,
    ParallelSweep,
    ResultCache,
    SweepCell,
    intern_config,
)
from repro.engine.sharded import (
    Shard,
    ShardedIngestPipeline,
    ShardRunner,
    partition_trace_by_port,
)
from repro.engine.queryplan import (
    CompiledQueryPlan,
    CompiledSnapshot,
    CompiledWindow,
    PlanBuildStats,
    compile_snapshot,
)

__all__ = [
    "IngestPipeline",
    "FusedIngestPipeline",
    "Shard",
    "ShardedIngestPipeline",
    "ShardRunner",
    "partition_trace_by_port",
    "FusedTimeWindowSet",
    "FusedWindow",
    "ParallelSweep",
    "ResultCache",
    "SweepCell",
    "CellResult",
    "intern_config",
    "CompiledQueryPlan",
    "CompiledSnapshot",
    "CompiledWindow",
    "PlanBuildStats",
    "compile_snapshot",
]
