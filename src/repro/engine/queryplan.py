"""Columnar compiled snapshots and the batched multi-victim query engine.

The scalar reference path (:meth:`AnalysisProgram.query_time_windows`)
walks every retained ``(tts, flow)`` cell of every covering window in a
per-cell Python loop.  That is faithful to Algorithms 2-3 and easy to
audit, but Fig. 10-style evaluations issue thousands of victim queries
against the *same* snapshot store, so the per-query Python overhead —
re-deriving coverage, bisecting tuple lists, one ``dict`` update per
cell — dominates wall-clock.

This module compiles each :class:`~repro.core.analysis.TimeWindowSnapshot`
**once** into a columnar form and answers interval queries with array
kernels:

* :func:`compile_snapshot` turns each filtered window into a sorted
  ``int64`` TTS array plus an array of *interned* flow indices (flow
  objects are replaced by small integers into a per-snapshot flow table).
  The compiled form is cached on the snapshot object itself — snapshots
  are immutable once stored, so one compilation serves every future plan.
* :class:`CompiledQueryPlan` merges the per-snapshot flow tables into one
  global interning, and answers a query by slicing each covering window
  with ``np.searchsorted`` and accumulating per-flow weights with
  ``np.add.at`` into a dense accumulator over the interned flow universe.

**Equivalence argument.**  The plan performs *the same* piece-splitting
walk as the scalar path (newest snapshot first; within a snapshot,
window 0 first with each deeper window's coverage clamped below the
previous one; every time point attributed to exactly one window), with
the coverage chain precomputed at compile time from the same integer
arithmetic.  Per covered piece, ``searchsorted`` selects exactly the
cells the scalar ``bisect`` loop visits, in the same TTS order, and
``np.add.at`` performs the *unbuffered, in-order* ``acc[i] += w``
additions — each individual addition is the same IEEE-754 double
operation, on the same operands, in the same order as the scalar
``FlowEstimate.add`` calls.  The result dict is materialised in
*first-touch* order (the order the scalar walk inserts flows), so even
metrics that sum dict values in iteration order see the identical
floating-point reduction.  Results are therefore bit-identical, not
merely close; ``tests/test_queryplan.py`` asserts exact equality with
fractional cells both on and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.queries import FlowEstimate, QueryInterval

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot
    from repro.core.filtering import FilteredWindow

__all__ = [
    "CompiledWindow",
    "CompiledSnapshot",
    "CompiledQueryPlan",
    "PlanBuildStats",
    "compile_snapshot",
]


@dataclass
class PlanBuildStats:
    """Per-snapshot compile cache accounting for one plan build."""

    snapshot_hits: int = 0
    snapshot_misses: int = 0


class CompiledWindow:
    """Columnar form of one :class:`~repro.core.filtering.FilteredWindow`.

    ``cov_start``/``cov_end`` already carry the snapshot's
    ``valid_from_ns`` clamp *and* the newer-window clamp of the scalar
    walk, so at query time a window claims exactly the pieces the scalar
    path would hand it.  Windows the scalar path skips entirely (no
    coverage, coverage emptied by the clamp, non-positive coefficient)
    are not compiled at all.  A window with coverage but zero retained
    cells *is* compiled: it still claims its pieces, contributing
    nothing — the same attribution the scalar path produces.
    """

    __slots__ = (
        "window_index",
        "shift",
        "cov_start",
        "cov_end",
        "tts",
        "flow_idx",
        "coefficient",
        "inv_coefficient",
    )

    def __init__(
        self,
        window_index: int,
        shift: int,
        cov_start: int,
        cov_end: int,
        tts: np.ndarray,
        flow_idx: np.ndarray,
        coefficient: float,
    ) -> None:
        self.window_index = window_index
        self.shift = shift
        self.cov_start = cov_start
        self.cov_end = cov_end
        self.tts = tts
        self.flow_idx = flow_idx
        self.coefficient = coefficient
        # The scalar path computes `1.0 / coefficient` per cell; the value
        # is cell-independent, so hoist the division out of the kernel.
        self.inv_coefficient = 1.0 / coefficient


class CompiledSnapshot:
    """One snapshot's compiled windows plus its local flow intern table."""

    __slots__ = ("read_time_ns", "flows", "windows", "num_cells")

    def __init__(
        self,
        read_time_ns: int,
        flows: List,
        windows: List[CompiledWindow],
    ) -> None:
        self.read_time_ns = read_time_ns
        self.flows = flows
        self.windows = windows
        self.num_cells = sum(len(w.tts) for w in windows)


def _window_arrays(fw: "FilteredWindow") -> Tuple[np.ndarray, Sequence]:
    """The window's (tts array, aligned flow sequence), columnar-first.

    ``filter_windows`` attaches the arrays directly; fall back to
    deriving them from the ``cells`` tuple list for snapshots built by
    hand (tests, older pickles).
    """
    tts = getattr(fw, "tts_array", None)
    flows = getattr(fw, "cell_flows", None)
    if tts is None or flows is None:
        tts = np.fromiter(
            (c[0] for c in fw.cells), dtype=np.int64, count=len(fw.cells)
        )
        flows = [c[1] for c in fw.cells]
    return tts, flows


def compile_snapshot(
    snapshot: "TimeWindowSnapshot",
    k: int,
    coefficients: Sequence[float],
    apply_coefficients: bool = True,
    stats: Optional[PlanBuildStats] = None,
) -> CompiledSnapshot:
    """Compile (or fetch the cached compilation of) one snapshot.

    The result is memoised on the snapshot object keyed by everything the
    compilation depends on, so re-planning after a new poll only compiles
    the snapshot that did not exist before.
    """
    key = (k, bool(apply_coefficients), tuple(coefficients))
    cached = getattr(snapshot, "_columnar_cache", None)
    if cached is not None and cached[0] == key:
        if stats is not None:
            stats.snapshot_hits += 1
        return cached[1]
    if stats is not None:
        stats.snapshot_misses += 1

    flows: List = []
    index_of: Dict = {}
    windows: List[CompiledWindow] = []
    newer_start: Optional[int] = None
    for fw in snapshot.windows:
        cov = fw.coverage_ns(k)
        if cov is None:
            continue
        cov_start = max(cov[0], snapshot.valid_from_ns)
        cov_end = cov[1] if newer_start is None else min(cov[1], newer_start)
        newer_start = cov_start
        if cov_end <= cov_start:
            continue
        coefficient = (
            coefficients[fw.window_index] if apply_coefficients else 1.0
        )
        if coefficient <= 0:
            continue
        window_fidx = getattr(fw, "flow_idx", None)
        window_table = getattr(fw, "flow_table", None)
        if window_fidx is not None and window_table is not None:
            # Index-based window (fused ingest / zero-copy PQSTORE1
            # decode): intern one dict lookup per *distinct* flow and
            # remap the cell column vectorised — the mmap-backed view
            # feeds the plan without any per-cell object decode.
            tts = fw.tts_array
            if len(window_fidx):
                uniq = np.unique(np.asarray(window_fidx, dtype=np.int64))
                lookup = np.empty(int(uniq[-1]) + 1, dtype=np.intp)
                for t in uniq.tolist():
                    flow = window_table[t]
                    i = index_of.get(flow)
                    if i is None:
                        i = len(flows)
                        index_of[flow] = i
                        flows.append(flow)
                    lookup[t] = i
                flow_idx = lookup[window_fidx]
            else:
                flow_idx = np.empty(0, dtype=np.intp)
        else:
            tts, cell_flows = _window_arrays(fw)
            flow_idx = np.empty(len(cell_flows), dtype=np.intp)
            for j, flow in enumerate(cell_flows):
                i = index_of.get(flow)
                if i is None:
                    i = len(flows)
                    index_of[flow] = i
                    flows.append(flow)
                flow_idx[j] = i
        windows.append(
            CompiledWindow(
                fw.window_index,
                fw.shift,
                cov_start,
                cov_end,
                tts,
                flow_idx,
                coefficient,
            )
        )
    compiled = CompiledSnapshot(snapshot.read_time_ns, flows, windows)
    try:
        snapshot._columnar_cache = (key, compiled)
    except AttributeError:
        pass  # slotted / frozen stand-ins: still correct, just uncached
    return compiled


class CompiledQueryPlan:
    """A set of compiled snapshots sharing one global flow interning.

    Build once per snapshot-store version, then answer any number of
    interval queries against it.  The plan owns a dense ``float64``
    accumulator over the interned flow universe; a query touches only the
    slots its cells index and zeroes exactly those afterwards, so
    repeated queries pay no per-query allocation proportional to the
    universe size.  Not thread-safe (one accumulator).
    """

    def __init__(
        self,
        flows: List,
        snapshots: List[List[CompiledWindow]],
    ) -> None:
        #: global interned flow table: index -> flow key
        self.flows = flows
        #: per-snapshot compiled windows, newest snapshot first
        self._snapshots = snapshots
        self._acc = np.zeros(len(flows))
        self.num_cells = sum(
            len(w.tts) for windows in snapshots for w in windows
        )
        #: total victims answered through this plan
        self.queries_answered = 0

    @classmethod
    def build(
        cls,
        snapshots_newest_first: Sequence,
        k: int,
        coefficients: Sequence[float],
        apply_coefficients: bool = True,
        stats: Optional[PlanBuildStats] = None,
    ) -> "CompiledQueryPlan":
        """Compile ``snapshots_newest_first`` into one plan.

        The caller provides the snapshots in *query order* (newest read
        time first, ties in the same order the scalar walk visits them);
        the plan preserves that order exactly.
        """
        global_flows: List = []
        global_index: Dict = {}
        plan_snapshots: List[List[CompiledWindow]] = []
        for snapshot in snapshots_newest_first:
            cs = compile_snapshot(
                snapshot, k, coefficients, apply_coefficients, stats=stats
            )
            # Remap the snapshot-local interning into the plan-global one.
            lookup = np.empty(len(cs.flows), dtype=np.intp)
            for i, flow in enumerate(cs.flows):
                g = global_index.get(flow)
                if g is None:
                    g = len(global_flows)
                    global_index[flow] = g
                    global_flows.append(flow)
                lookup[i] = g
            windows: List[CompiledWindow] = []
            for w in cs.windows:
                gidx = lookup[w.flow_idx] if len(w.flow_idx) else w.flow_idx
                windows.append(
                    CompiledWindow(
                        w.window_index,
                        w.shift,
                        w.cov_start,
                        w.cov_end,
                        w.tts,
                        gidx,
                        w.coefficient,
                    )
                )
            plan_snapshots.append(windows)
        return cls(global_flows, plan_snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    # -- query execution ---------------------------------------------------

    def query(
        self, interval: QueryInterval, fractional_cells: bool = False
    ) -> FlowEstimate:
        """One interval query; identical contents to the scalar path."""
        self.queries_answered += 1
        acc = self._acc
        touched: List[np.ndarray] = []
        remaining: List[Tuple[int, int]] = [
            (interval.start_ns, interval.end_ns)
        ]
        for windows in self._snapshots:
            if not remaining:
                break
            remaining = self._accumulate(
                windows, remaining, acc, touched, fractional_cells
            )
        if not touched:
            return FlowEstimate()
        # First-touch order, not sorted order: the scalar path inserts
        # each flow into its dict the first time a cell touches it, and
        # downstream metrics sum dict values in insertion order — to stay
        # bit-identical end to end the result dict must iterate the same.
        cat = np.concatenate(touched)
        uniq, first_pos = np.unique(cat, return_index=True)
        idx = uniq[np.argsort(first_pos, kind="stable")]
        values = acc[idx]
        acc[idx] = 0.0
        flows = self.flows
        return FlowEstimate(
            {flows[i]: v for i, v in zip(idx.tolist(), values.tolist())}
        )

    def query_batch(
        self,
        intervals: Sequence[QueryInterval],
        fractional_cells: bool = False,
        latency_observer: Optional[Callable[[int], None]] = None,
    ) -> List[FlowEstimate]:
        """Answer many victims against the same compiled state.

        ``latency_observer`` (e.g. a ``Histogram.observe``) receives each
        victim's wall-clock nanoseconds; when absent, no clocks are read.
        """
        if latency_observer is None:
            return [self.query(iv, fractional_cells) for iv in intervals]
        out: List[FlowEstimate] = []
        for iv in intervals:
            start = perf_counter_ns()
            out.append(self.query(iv, fractional_cells))
            latency_observer(perf_counter_ns() - start)
        return out

    def _accumulate(
        self,
        windows: List[CompiledWindow],
        pieces: List[Tuple[int, int]],
        acc: np.ndarray,
        touched: List[np.ndarray],
        fractional_cells: bool,
    ) -> List[Tuple[int, int]]:
        """One snapshot's contribution; returns the uncovered pieces.

        Mirrors ``AnalysisProgram._accumulate_snapshot`` piece for piece;
        the coverage clamps were already applied at compile time.
        """
        leftovers = pieces
        for w in windows:
            cov_start = w.cov_start
            cov_end = w.cov_end
            shift = w.shift
            tts = w.tts
            new_leftovers: List[Tuple[int, int]] = []
            for piece_start, piece_end in leftovers:
                lo = max(piece_start, cov_start)
                hi = min(piece_end, cov_end)
                if hi <= lo:
                    new_leftovers.append((piece_start, piece_end))
                    continue
                # Cells overlapping [lo, hi): first whose end exceeds lo
                # through last whose start precedes hi — the same range
                # the scalar bisect loop visits, in the same TTS order.
                a = int(np.searchsorted(tts, lo >> shift, side="left"))
                b = int(np.searchsorted(tts, (hi - 1) >> shift, side="right"))
                if b > a:
                    idx = w.flow_idx[a:b]
                    if fractional_cells:
                        span = 1 << shift
                        cell_start = tts[a:b] << shift
                        overlap = np.minimum(
                            cell_start + span, hi
                        ) - np.maximum(cell_start, lo)
                        # Two divisions, exactly as the scalar path:
                        # (overlap / span) first, then / coefficient.
                        np.add.at(
                            acc, idx, (overlap / span) / w.coefficient
                        )
                    else:
                        np.add.at(acc, idx, w.inv_coefficient)
                    touched.append(idx)
                if piece_start < lo:
                    new_leftovers.append((piece_start, lo))
                if hi < piece_end:
                    new_leftovers.append((hi, piece_end))
            leftovers = new_leftovers
            if not leftovers:
                break
        return leftovers
