"""The fused ingest tier: record arrays in, one vectorised sweep per batch.

The batched tier (:class:`repro.engine.ingest.IngestPipeline`) already
replays poll-aligned slices array-at-a-time, but it still pays Python
three times per run: gathering timestamp/flow attributes out of
``DequeueRecord`` objects up front, reading the pre-batch cell contents
one cell at a time (``np.fromiter`` over a Python list), and writing each
touched cell back through a Python loop that resolves flow *objects*.

The fused tier removes all three:

* the log arrives as a structured :class:`~repro.switch.records.RecordBatch`
  (:data:`~repro.switch.records.PACKET_RECORD_DTYPE`), so the timestamp
  columns are zero-copy views and flow identity is an ``int64`` index
  into the batch's flow table — no per-packet objects exist anywhere;
* :class:`FusedTimeWindowSet` keeps each window's registers as two
  ``int64`` arrays (cycle IDs and flow indices), so one batch updates all
  T window levels in a single fused absorb+pass sweep of pure array
  reads/writes — fancy-indexed gathers against the pre-batch state and
  fancy-indexed scatters for the surviving writes;
* snapshots stay columnar: the Algorithm-3 filter consumes the cycle
  array directly and hands the survivors onward as a flow-index column
  (see :func:`repro.core.filtering.filter_windows`), which the store
  encodes and the compiled query plan interns without per-cell work.

Equivalence contract (DESIGN.md §14, asserted by
``tests/test_fused_ingest.py`` and the ingest micro-benchmark): for any
dequeue log, the fused tier produces bit-identical snapshots, query
results, and structure counters to both the scalar walk and the batched
tier.  :meth:`FusedTimeWindowSet.absorb_indexed` is a transliteration of
:meth:`~repro.core.windowset.TimeWindowSet.absorb_batch` with integer
flow identity — same grouping, same collision/pass rule, same counter
accounting — and the snapshot conversion is a pure representation change.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, cast

import numpy as np

from repro.baselines.interval import FixedIntervalEstimator
from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueuePort
from repro.core.registers import BankedStructure
from repro.core.timewindow import EMPTY, CellRecord, TimeWindow
from repro.core.windowset import TimeWindowSet
from repro.engine.ingest import IngestPipeline
from repro.errors import SimulationError
from repro.switch.packet import FlowKey
from repro.switch.records import FlowColumn, RecordBatch, as_record_batch
from repro.switch.telemetry import DequeueRecord


class _CellFlows:
    """Lazy per-cell flow view: ``table[idx[i]]``, ``None`` for empties."""

    __slots__ = ("table", "idx")

    def __init__(self, table: Sequence[FlowKey], idx: np.ndarray) -> None:
        self.table = table
        self.idx = idx

    def __len__(self) -> int:
        return len(self.idx)

    def __getitem__(self, i: int) -> Optional[FlowKey]:
        j = int(self.idx[i])
        return None if j < 0 else self.table[j]


class FusedWindow(TimeWindow):
    """A :class:`TimeWindow` whose registers are int64 arrays.

    ``cycle_arr``/``flow_idx`` are the authoritative state; the inherited
    ``cycle_ids``/``flows`` slots alias them (the array itself, and a
    lazy flow view) so every columnar consumer — the Algorithm-3 filter,
    the observability occupancy probe — works unchanged and faster.
    """

    __slots__ = ("cycle_arr", "flow_idx", "table")

    def __init__(
        self,
        k: int,
        table: Sequence[FlowKey],
        cycle_arr: Optional[np.ndarray] = None,
        flow_idx: Optional[np.ndarray] = None,
    ) -> None:
        if k < 1:
            raise SimulationError(f"k must be >= 1, got {k}")
        self.k = k
        self.mask = (1 << k) - 1
        n = 1 << k
        self.cycle_arr = (
            np.full(n, EMPTY, dtype=np.int64) if cycle_arr is None else cycle_arr
        )
        self.flow_idx = (
            np.full(n, -1, dtype=np.int64) if flow_idx is None else flow_idx
        )
        self.table = table
        # Alias the inherited representation onto the arrays: cycle_ids
        # supports everything the filter does to a list (len, iteration,
        # np.array()) and flows resolves objects only when indexed.
        self.cycle_ids = cast(List[int], self.cycle_arr)
        self.flows = cast(
            List[Optional[FlowKey]], _CellFlows(table, self.flow_idx)
        )

    def reset(self) -> None:
        self.cycle_arr.fill(EMPTY)
        self.flow_idx.fill(-1)

    def occupancy(self) -> int:
        return int(np.count_nonzero(self.cycle_arr != EMPTY))

    def latest_cell(self) -> Optional[CellRecord]:
        """Vectorised ``LatestCell()``: max cycle, then max index.

        Identical choice to the scalar scan in
        :meth:`TimeWindow.latest_cell` (which keeps the *last* index
        among cells sharing the maximum cycle ID).
        """
        if len(self.cycle_arr) == 0:
            return None
        best_cycle = int(self.cycle_arr.max())
        if best_cycle == EMPTY:
            return None
        best_index = int(np.flatnonzero(self.cycle_arr == best_cycle)[-1])
        flow = self.table[int(self.flow_idx[best_index])]
        return CellRecord(best_index, best_cycle, flow)

    def snapshot(self) -> "TimeWindow":
        """A frozen array copy (what a register read returns)."""
        return FusedWindow(
            self.k, self.table, self.cycle_arr.copy(), self.flow_idx.copy()
        )


class FusedTimeWindowSet(TimeWindowSet):
    """T fused windows sharing one flow table; Algorithm 1 on arrays.

    Drop-in replacement for :class:`TimeWindowSet` inside a
    :class:`~repro.core.registers.BankedStructure`: same counters, same
    snapshot/occupancy surface, bit-identical behaviour.  Flow identity
    is an index into ``flow_table`` (normally the record batch's table);
    object-flow entry points intern through :meth:`_intern`.
    """

    __slots__ = ("flow_table", "_index_of")

    def __init__(
        self, config: PrintQueueConfig, flow_table: List[FlowKey]
    ) -> None:
        self.config = config
        self.flow_table = flow_table
        self._index_of: Optional[Dict[FlowKey, int]] = None
        self.windows = cast(
            List[TimeWindow],
            [FusedWindow(config.k, flow_table) for _ in range(config.T)],
        )
        self.updates = 0
        self.passes = 0
        self.drops = 0
        self.level_inserts = [0] * config.T
        self.level_passes = [0] * config.T
        self.level_drops = [0] * config.T

    # -- flow interning ----------------------------------------------------

    def _intern(self, flow: FlowKey) -> int:
        """Index of ``flow`` in the table, appending it if unseen."""
        if self._index_of is None:
            self._index_of = {f: i for i, f in enumerate(self.flow_table)}
        idx = self._index_of.get(flow)
        if idx is None:
            idx = len(self.flow_table)
            self.flow_table.append(flow)
            self._index_of[flow] = idx
        return idx

    # -- Algorithm 1 -------------------------------------------------------

    def update(self, flow: FlowKey, deq_timestamp_ns: int) -> int:
        """Scalar Algorithm 1 on the array registers (reference entry)."""
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        self.updates += 1
        tts = deq_timestamp_ns >> cfg.m0
        fid = self._intern(flow)
        depth = 0
        for i in range(cfg.T):
            window = cast(FusedWindow, self.windows[i])
            index = tts & window.mask
            new_cycle = tts >> k
            old_cycle = int(window.cycle_arr[index])
            old_fid = int(window.flow_idx[index])
            window.cycle_arr[index] = new_cycle
            window.flow_idx[index] = fid
            depth += 1
            self.level_inserts[i] += 1
            if old_cycle != EMPTY and new_cycle - old_cycle == 1:
                fid = old_fid
                tts = ((old_cycle << k) | index) >> alpha
                self.passes += 1
                self.level_passes[i] += 1
            else:
                if old_cycle != EMPTY:
                    self.drops += 1
                    self.level_drops[i] += 1
                break
        return depth

    def absorb_batch(
        self,
        flows: Sequence[FlowKey],
        deq_timestamps_ns: "np.ndarray",
    ) -> int:
        """Batched Algorithm 1; fast path for table-backed flow columns.

        A :class:`~repro.switch.records.FlowColumn` over this set's own
        flow table feeds :meth:`absorb_indexed` directly (no objects);
        any other flow sequence is interned first.
        """
        if (
            isinstance(flows, FlowColumn)
            and flows.table is self.flow_table
        ):
            return self.absorb_indexed(flows.idx, deq_timestamps_ns)
        n = len(flows)
        fids = np.fromiter(
            (self._intern(f) for f in flows), dtype=np.int64, count=n
        )
        return self.absorb_indexed(fids, deq_timestamps_ns)

    def absorb_indexed(
        self, flow_idx: "np.ndarray", deq_timestamps_ns: "np.ndarray"
    ) -> int:
        """The fused absorb+pass sweep over all T window levels.

        A transliteration of
        :meth:`~repro.core.windowset.TimeWindowSet.absorb_batch` with
        integer flow identity: the same per-cell grouping (stable sort),
        the same head/mid collision split, the same pass/drop rule and
        counter accounting — but the pre-batch reads, the eviction
        stream, and the final cell writes are all fancy-indexed array
        operations.  No Python executes per cell or per packet.
        """
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        tts = np.asarray(deq_timestamps_ns, dtype=np.int64) >> cfg.m0
        n = len(tts)
        if n == 0:
            return 0
        fids = np.asarray(flow_idx, dtype=np.int64)
        if len(fids) != n:
            raise SimulationError(
                "flow_idx and deq_timestamps_ns must have equal length"
            )
        self.updates += n

        passes = 0
        drops = 0
        for level in range(cfg.T):
            if len(tts) == 0:
                break
            window = cast(FusedWindow, self.windows[level])
            self.level_inserts[level] += len(tts)
            index = tts & window.mask
            cycle = tts >> k
            # Group writes per cell; stable sort keeps batch order inside
            # each group (exactly as the batched tier does).
            perm = np.argsort(index, kind="stable")
            s_index = index[perm]
            s_cycle = cycle[perm]
            m = len(perm)
            diff = np.flatnonzero(s_index[1:] != s_index[:-1])
            starts = np.empty(len(diff) + 1, dtype=np.int64)
            starts[0] = 0
            starts[1:] = diff + 1
            ends = np.empty_like(starts)
            ends[:-1] = diff
            ends[-1] = m - 1

            # Group heads collide with the pre-batch cell contents —
            # gathered in one fancy-indexed read (the batched tier walks
            # a Python list here).
            head_index = s_index[starts]
            cycle_arr = window.cycle_arr
            fid_arr = window.flow_idx
            old_cycles = cycle_arr[head_index]
            old_fids = fid_arr[head_index]
            occupied = old_cycles != EMPTY
            head_pass = occupied & (s_cycle[starts] - old_cycles == 1)
            head_drop = occupied & ~head_pass
            # Adjacent writes to the same cell collide with each other.
            same = s_index[1:] == s_index[:-1]
            mid_pass = same & (s_cycle[1:] - s_cycle[:-1] == 1)
            mid_drop = same & ~mid_pass
            level_pass = int(np.count_nonzero(head_pass)) + int(
                np.count_nonzero(mid_pass)
            )
            level_drop = int(np.count_nonzero(head_drop)) + int(
                np.count_nonzero(mid_drop)
            )
            passes += level_pass
            drops += level_drop
            self.level_passes[level] += level_pass
            self.level_drops[level] += level_drop

            if level + 1 < cfg.T:
                # Pass stream for the next window, ordered by the
                # evicting write's batch position (= scalar insert
                # order).  Evicted flow indices are read before this
                # window's final state is scattered below.
                hp = np.flatnonzero(head_pass)
                head_ev_pos = perm[starts[hp]]
                head_ev_tts = (old_cycles[hp] << k) | head_index[hp]
                head_ev_fid = old_fids[hp]
                mp = np.flatnonzero(mid_pass)
                mid_ev_pos = perm[mp + 1]
                mid_ev_tts = (s_cycle[mp] << k) | s_index[mp]
                mid_ev_fid = fids[perm[mp]]
                ev_pos = np.concatenate([head_ev_pos, mid_ev_pos])
                ev_tts = np.concatenate([head_ev_tts, mid_ev_tts]) >> alpha
                ev_fid = np.concatenate([head_ev_fid, mid_ev_fid])
                order = np.argsort(ev_pos, kind="stable")
            else:
                order = None

            # The last write of each group is this window's final state:
            # one fancy-indexed scatter per register array.
            cycle_arr[head_index] = s_cycle[ends]
            fid_arr[head_index] = fids[perm[ends]]

            if order is None:
                break
            tts = ev_tts[order]
            fids = ev_fid[order]

        self.passes += passes
        self.drops += drops
        return n


class FusedIngestPipeline(IngestPipeline):
    """Drive one port through the fused record-array ingest path.

    Accepts a :class:`~repro.switch.records.RecordBatch` (an object-
    record log is interned on entry) and swaps the port's time-window
    banks for :class:`FusedTimeWindowSet` instances sharing the batch's
    flow table.  Everything else — poll-boundary slicing, trigger
    truncation, queue-monitor batching, baselines — is inherited from
    the batched tier; only the per-event carriers change, so the
    equivalence argument composes.
    """

    def __init__(
        self,
        pq: PrintQueuePort,
        records: "Sequence[DequeueRecord]",
        dp_trigger_indices: Optional[Set[int]] = None,
        baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
    ) -> None:
        batch = as_record_batch(records)
        super().__init__(
            pq,
            batch,
            dp_trigger_indices=dp_trigger_indices,
            baselines=baselines,
        )
        self.batch: RecordBatch = batch
        self._install_fused_banks()

    def _install_fused_banks(self) -> None:
        """Replace the port's banks with fused ones (pre-traffic only)."""
        pq = self.pq
        banks = pq.analysis.tw_banks
        if pq.packets_seen or any(b.updates for b in banks.banks):
            raise SimulationError(
                "fused ingest requires a fresh port: the time-window banks "
                "already hold traffic"
            )
        table = self.batch.flows
        config = pq.config
        # partial(), not a lambda: the factory rides inside the port, and
        # the sharded driver pickles finished ports back from its worker
        # processes (analysis.py keeps its bank factory picklable for the
        # same reason).
        fused: BankedStructure[TimeWindowSet] = BankedStructure(
            partial(FusedTimeWindowSet, config, table)
        )
        pq.analysis.tw_banks = fused

    def _timestamp_arrays(self) -> "Tuple[np.ndarray, np.ndarray]":
        # Contiguous copies of the structured columns: the merge sorts
        # and searches them heavily, and a strided field view would pay
        # the gather on every pass.
        data = self.batch.data
        return (
            np.ascontiguousarray(data["enq_ts"]),
            np.ascontiguousarray(data["deq_ts"]),
        )

    def _event_flows(self, rec_idx: np.ndarray) -> Sequence:
        ev_fid = self.batch.data["flow"][rec_idx].astype(np.int64)
        return FlowColumn(self.batch.flows, ev_fid)
