"""Process-pool fan-out of independent experiment cells, with caching.

The figure benches repeatedly evaluate independent (workload, config,
port) cells — one full trace simulation plus victim scoring per cell.
Cells share nothing, so they parallelise perfectly across cores:
:class:`ParallelSweep` maps a picklable worker over the cells with a
:class:`concurrent.futures.ProcessPoolExecutor`, memoising each cell's
result in a :class:`ResultCache` so repeated requests (benches sharing a
workload) pay for the simulation once.

The default worker, :func:`evaluate_cell`, runs the whole
simulate → sample victims → score pipeline inside the child process and
returns only the compact :class:`CellResult`, keeping pickling traffic
small.  The pool degrades gracefully to in-process execution where
subprocesses are unavailable (sandboxes, restricted CI).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import partial
from pickle import PicklingError
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.config import PrintQueueConfig
from repro.obs.metrics import Metrics

#: Environment override for the default bounded pool wait (seconds).
POOL_TIMEOUT_ENV = "REPRO_POOL_TIMEOUT_S"

#: Default per-future wait before a pool worker is declared stuck.  Far
#: above any real cell/shard runtime, so it only fires on genuine hangs;
#: both pool drivers then abandon the pool and fall back in-process.
DEFAULT_POOL_TIMEOUT_S = 600.0


def default_pool_timeout_s() -> Optional[float]:
    """The configured bounded pool wait: env override or the default.

    ``REPRO_POOL_TIMEOUT_S=0`` (or negative) disables the bound and
    restores the old wait-forever behaviour.
    """
    raw = os.environ.get(POOL_TIMEOUT_ENV)
    if raw is None:
        return DEFAULT_POOL_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_POOL_TIMEOUT_S
    return value if value > 0 else None


#: canonical instance per distinct config value (see :func:`intern_config`).
_CONFIG_INTERN: Dict[PrintQueueConfig, PrintQueueConfig] = {}


def intern_config(config: PrintQueueConfig) -> PrintQueueConfig:
    """Return the canonical shared instance for this config value.

    Figure benches build hundreds of :class:`SweepCell`\\ s whose configs
    are equal but freshly constructed, so every cell used to carry (and
    the cache key, hash, and pool pickling to touch) its own copy.
    Interning collapses equal values to one shared instance: cache-key
    equality short-circuits on identity and a sweep's cells reference a
    single config object apiece.
    """
    return _CONFIG_INTERN.setdefault(config, config)


@dataclass(frozen=True)
class SweepCell:
    """One independent experiment cell of a figure-style sweep."""

    workload: str
    config: PrintQueueConfig
    duration_ns: int
    load: float = 1.15
    seed: int = 42
    #: port id the cell models (cells of a multi-port sweep differ only in
    #: accounting, but keying on the port keeps their results distinct).
    port: int = 0
    victims_per_band: int = 20
    #: fault-injection profile name (repro.faults) the cell's simulation
    #: runs under; None (the default) keeps the perfect control channel.
    faults: Optional[str] = None


@dataclass
class CellResult:
    """Compact, picklable outcome of one evaluated cell."""

    cell: SweepCell
    accuracy: Dict[str, float]
    per_band: Dict[str, Dict[str, float]]
    num_records: int
    drops: int
    storage_mbps: float
    sram_fraction: float


def evaluate_cell(cell: SweepCell) -> CellResult:
    """Simulate one cell and score asynchronous queries per depth band.

    Every sampled victim across all bands is scored in a single batched
    ``pq.query(intervals=...)`` pass (one snapshot compile instead of one
    per band), then the per-band summaries are sliced from the shared
    score map.  Per-victim scores are order-independent, so the numbers
    match the old band-by-band scalar loops exactly.

    Module-level (not a closure) so a process pool can pickle it by
    reference; imports are local to keep worker start-up lazy.
    """
    from repro.experiments.evaluation import evaluate_async_queries
    from repro.experiments.runner import simulate_workload
    from repro.experiments.sampling import band_label, sample_victims_by_band
    from repro.metrics.accuracy import summarize_scores
    from repro.metrics.overhead import printqueue_storage_mbps, sram_utilization

    run = simulate_workload(
        cell.workload,
        duration_ns=cell.duration_ns,
        load=cell.load,
        config=cell.config,
        seed=cell.seed,
        faults=cell.faults,
    )
    victims = sample_victims_by_band(run.records, per_band=cell.victims_per_band)
    union = sorted({i for indices in victims.values() for i in indices})
    scores = evaluate_async_queries(run.pq, run.taxonomy, run.records, union)
    by_index = dict(zip(union, scores))
    per_band: Dict[str, Dict[str, float]] = {}
    for band, indices in victims.items():
        if not indices:
            continue
        per_band[band_label(band)] = summarize_scores(
            [by_index[i] for i in indices]
        )
    accuracy = summarize_scores(scores)
    return CellResult(
        cell=cell,
        accuracy=accuracy,
        per_band=per_band,
        num_records=len(run.records),
        drops=run.drops,
        storage_mbps=printqueue_storage_mbps(cell.config),
        sram_fraction=sram_utilization(cell.config),
    )


class ResultCache:
    """A keyed result cache with hit/miss accounting.

    Replaces the bare module-level dictionaries the benchmark harness
    used to share simulation runs, and doubles as the per-cell memo of
    :class:`ParallelSweep`.
    """

    def __init__(self) -> None:
        self._data: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        return self._data.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value

    def get_or(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        value = compute()
        self._data[key] = value
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


@dataclass
class _WorkerFailure:
    """Sentinel a guarded pool worker returns instead of raising.

    Carrying the exception back as a *value* keeps worker bugs separable
    from pool-infrastructure failures: a raising worker used to surface
    through ``pool.map`` as e.g. a bare ``TypeError`` and get silently
    swallowed by the no-subprocess-support fallback, re-running the bad
    cell serially just to crash again.
    """

    exception: BaseException


def _guarded(worker: Callable[[Any], Any], cell: Any) -> Any:
    """Run ``worker(cell)`` in a child, boxing exceptions as values.

    Module-level so ``functools.partial(_guarded, worker)`` pickles by
    reference whenever ``worker`` itself does.
    """
    try:
        return worker(cell)
    except Exception as exc:  # noqa: BLE001 - boxed and re-raised in parent
        return _WorkerFailure(exc)


class ParallelSweep:
    """Fan a worker over independent cells with per-cell caching.

    Failure handling separates three distinct things that can go wrong:

    * **The worker raised** (a genuine bug or a flaky cell) — the
      exception comes back boxed as :class:`_WorkerFailure`; the cell is
      retried in-process up to ``cell_retries`` times, then the original
      exception is re-raised to the caller.  Worker bugs are never
      masked as "no subprocess support".
    * **The pool broke** (a worker process died: crash, OOM kill) —
      ``BrokenProcessPool``; surviving results are kept, a fresh pool is
      started for the remaining cells up to ``max_pool_restarts`` times,
      then execution degrades to serial.
    * **The pool can't be used at all** (sandboxes without subprocess
      support, non-picklable workers such as lambdas) — submission-time
      ``PicklingError``/``AttributeError``/``TypeError``/``OSError``/
      ``RuntimeError``; execution degrades to serial immediately.

    Parameters
    ----------
    worker:
        Picklable callable mapped over the cells; defaults to
        :func:`evaluate_cell`.
    max_workers:
        Pool size; defaults to the CPU count.  ``1`` forces in-process
        execution (no pool).
    cache:
        Optional shared :class:`ResultCache`; a private one is created
        otherwise.  Cells must be hashable to act as cache keys.
    cell_retries:
        In-process retries granted to a cell whose worker raised before
        the exception propagates (default 1 — one second chance).
    max_pool_restarts:
        Fresh pools started after a ``BrokenProcessPool`` before falling
        back to serial execution (default 1).
    timeout_s:
        Bounded wait per pooled cell result.  ``None`` (the default)
        uses :func:`default_pool_timeout_s` (600 s, or the
        ``REPRO_POOL_TIMEOUT_S`` env override; ``<= 0`` disables the
        bound).  An expired wait abandons the pool (no blocking join on
        the stuck worker), ticks ``pq_pool_timeouts_total``, and falls
        back to the in-process path.
    metrics:
        Optional :class:`~repro.obs.metrics.Metrics` registry for the
        ``pq_pool_timeouts_total`` counter.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any] = evaluate_cell,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        cell_retries: int = 1,
        max_pool_restarts: int = 1,
        timeout_s: Optional[float] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.worker = worker
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        self.cell_retries = cell_retries
        self.max_pool_restarts = max_pool_restarts
        if timeout_s is None:
            self.timeout_s: Optional[float] = default_pool_timeout_s()
        else:
            self.timeout_s = timeout_s if timeout_s > 0 else None
        self.metrics = metrics
        #: how the last run() executed: "pool", "serial", or "cached"
        self.last_execution = "cached"
        #: pools restarted after BrokenProcessPool (lifetime counter).
        self.pool_restarts = 0
        #: in-process retries consumed by failing cells (lifetime counter).
        self.cell_retries_used = 0
        #: bounded waits that expired on a pooled future (lifetime counter).
        self.pool_timeouts = 0

    @staticmethod
    def _intern_cell(cell: Hashable) -> Hashable:
        """Swap a SweepCell's config for the interned shared instance."""
        if isinstance(cell, SweepCell):
            canonical = intern_config(cell.config)
            if canonical is not cell.config:
                cell = replace(cell, config=canonical)
        return cell

    def run(self, cells: Sequence[Hashable]) -> List[Any]:
        """Evaluate every cell (cache-first), preserving input order."""
        cells = [self._intern_cell(c) for c in cells]
        missing = [c for c in dict.fromkeys(cells) if c not in self.cache]
        self.cache.hits += len(cells) - len(missing)
        self.cache.misses += len(missing)
        if missing:
            self._evaluate(missing)
        else:
            self.last_execution = "cached"
        return [self.cache.get(c) for c in cells]

    def _evaluate(self, cells: List[Hashable]) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(cells))
        if workers > 1 and self._evaluate_pool(cells, workers):
            return
        for cell in cells:
            if cell not in self.cache:
                self.cache.put(cell, self._run_cell(cell))
        self.last_execution = "serial"

    def _note_pool_timeout(self) -> None:
        """Account one expired bounded wait (counter + registry tick)."""
        self.pool_timeouts += 1
        if self.metrics is not None:
            self.metrics.counter("pq_pool_timeouts_total").inc()

    def _evaluate_pool(self, cells: List[Hashable], workers: int) -> bool:
        """Pool execution; returns False to request the serial fallback."""
        remaining = list(cells)
        restarts_left = self.max_pool_restarts
        guarded = partial(_guarded, self.worker)
        while True:
            failures: List[Tuple[Hashable, BaseException]] = []
            # Managed by hand (not `with`): a `with` exit joins the pool,
            # and after a bounded wait expired that join would block on
            # the very worker we just declared stuck.
            pool = ProcessPoolExecutor(max_workers=workers)
            wait_on_shutdown = True
            try:
                futures = [(cell, pool.submit(guarded, cell)) for cell in remaining]
                for cell, future in futures:
                    # Bounded wait (the old pool.map iterator waited
                    # forever); FuturesTimeout is caught below, before
                    # the generic taxonomy — on 3.11+ it aliases the
                    # builtin TimeoutError, an OSError subclass.
                    result = future.result(timeout=self.timeout_s)
                    if isinstance(result, _WorkerFailure):
                        failures.append((cell, result.exception))
                    else:
                        self.cache.put(cell, result)
            except BrokenProcessPool:
                # Pool infrastructure died under us (worker process
                # crashed or was killed).  Results cached before the
                # break are kept; restart a fresh pool for the rest.
                remaining = [c for c in remaining if c not in self.cache]
                if restarts_left > 0 and remaining:
                    restarts_left -= 1
                    self.pool_restarts += 1
                    continue
                return False
            except FuturesTimeout:
                # A worker exceeded the bounded wait.  Abandon the pool
                # (shutdown without joining the stuck process), tick the
                # timeout counter, and serve the remaining cells via the
                # existing in-process fallback path.
                self._note_pool_timeout()
                wait_on_shutdown = False
                return False
            except (PicklingError, AttributeError, TypeError, OSError, RuntimeError):
                # No subprocess support here (sandbox, restricted CI) or a
                # non-picklable worker/result (closures and lambdas fail
                # with AttributeError/TypeError): fall back to one core.
                return False
            finally:
                pool.shutdown(wait=wait_on_shutdown, cancel_futures=not wait_on_shutdown)
            # Genuine worker exceptions: retry in-process, then re-raise.
            for cell, exc in failures:
                self.cache.put(cell, self._retry_cell(cell, exc))
            self.last_execution = "pool"
            return True

    def _run_cell(self, cell: Hashable) -> Any:
        """Serial-path evaluation with the same per-cell retry budget."""
        try:
            return self.worker(cell)
        except Exception as exc:
            return self._retry_cell(cell, exc)

    def _retry_cell(self, cell: Hashable, exc: BaseException) -> Any:
        """Re-run a failed cell in-process; re-raise when retries run out."""
        for _ in range(self.cell_retries):
            self.cell_retries_used += 1
            try:
                return self.worker(cell)
            except Exception as retry_exc:
                exc = retry_exc
        raise exc
