"""Process-pool fan-out of independent experiment cells, with caching.

The figure benches repeatedly evaluate independent (workload, config,
port) cells — one full trace simulation plus victim scoring per cell.
Cells share nothing, so they parallelise perfectly across cores:
:class:`ParallelSweep` maps a picklable worker over the cells with a
:class:`concurrent.futures.ProcessPoolExecutor`, memoising each cell's
result in a :class:`ResultCache` so repeated requests (benches sharing a
workload) pay for the simulation once.

The default worker, :func:`evaluate_cell`, runs the whole
simulate → sample victims → score pipeline inside the child process and
returns only the compact :class:`CellResult`, keeping pickling traffic
small.  The pool degrades gracefully to in-process execution where
subprocesses are unavailable (sandboxes, restricted CI).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pickle import PicklingError
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.config import PrintQueueConfig


@dataclass(frozen=True)
class SweepCell:
    """One independent experiment cell of a figure-style sweep."""

    workload: str
    config: PrintQueueConfig
    duration_ns: int
    load: float = 1.15
    seed: int = 42
    #: port id the cell models (cells of a multi-port sweep differ only in
    #: accounting, but keying on the port keeps their results distinct).
    port: int = 0
    victims_per_band: int = 20


@dataclass
class CellResult:
    """Compact, picklable outcome of one evaluated cell."""

    cell: SweepCell
    accuracy: Dict[str, float]
    per_band: Dict[str, Dict[str, float]]
    num_records: int
    drops: int
    storage_mbps: float
    sram_fraction: float


def evaluate_cell(cell: SweepCell) -> CellResult:
    """Simulate one cell and score asynchronous queries per depth band.

    Every sampled victim across all bands is scored in a single batched
    ``pq.query(intervals=...)`` pass (one snapshot compile instead of one
    per band), then the per-band summaries are sliced from the shared
    score map.  Per-victim scores are order-independent, so the numbers
    match the old band-by-band scalar loops exactly.

    Module-level (not a closure) so a process pool can pickle it by
    reference; imports are local to keep worker start-up lazy.
    """
    from repro.experiments.evaluation import evaluate_async_queries
    from repro.experiments.runner import simulate_workload
    from repro.experiments.sampling import band_label, sample_victims_by_band
    from repro.metrics.accuracy import summarize_scores
    from repro.metrics.overhead import printqueue_storage_mbps, sram_utilization

    run = simulate_workload(
        cell.workload,
        duration_ns=cell.duration_ns,
        load=cell.load,
        config=cell.config,
        seed=cell.seed,
    )
    victims = sample_victims_by_band(run.records, per_band=cell.victims_per_band)
    union = sorted({i for indices in victims.values() for i in indices})
    scores = evaluate_async_queries(run.pq, run.taxonomy, run.records, union)
    by_index = dict(zip(union, scores))
    per_band: Dict[str, Dict[str, float]] = {}
    for band, indices in victims.items():
        if not indices:
            continue
        per_band[band_label(band)] = summarize_scores(
            [by_index[i] for i in indices]
        )
    accuracy = summarize_scores(scores)
    return CellResult(
        cell=cell,
        accuracy=accuracy,
        per_band=per_band,
        num_records=len(run.records),
        drops=run.drops,
        storage_mbps=printqueue_storage_mbps(cell.config),
        sram_fraction=sram_utilization(cell.config),
    )


class ResultCache:
    """A keyed result cache with hit/miss accounting.

    Replaces the bare module-level dictionaries the benchmark harness
    used to share simulation runs, and doubles as the per-cell memo of
    :class:`ParallelSweep`.
    """

    def __init__(self) -> None:
        self._data: Dict[Hashable, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        return self._data.get(key)

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value

    def get_or(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        value = compute()
        self._data[key] = value
        return value

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


class ParallelSweep:
    """Fan a worker over independent cells with per-cell caching.

    Parameters
    ----------
    worker:
        Picklable callable mapped over the cells; defaults to
        :func:`evaluate_cell`.
    max_workers:
        Pool size; defaults to the CPU count.  ``1`` forces in-process
        execution (no pool).
    cache:
        Optional shared :class:`ResultCache`; a private one is created
        otherwise.  Cells must be hashable to act as cache keys.
    """

    def __init__(
        self,
        worker: Callable[[Any], Any] = evaluate_cell,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.worker = worker
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        #: how the last run() executed: "pool", "serial", or "cached"
        self.last_execution = "cached"

    def run(self, cells: Sequence[Hashable]) -> List[Any]:
        """Evaluate every cell (cache-first), preserving input order."""
        missing = [c for c in dict.fromkeys(cells) if c not in self.cache]
        self.cache.hits += len(cells) - len(missing)
        self.cache.misses += len(missing)
        if missing:
            self._evaluate(missing)
        else:
            self.last_execution = "cached"
        return [self.cache.get(c) for c in cells]

    def _evaluate(self, cells: List[Hashable]) -> None:
        workers = self.max_workers or os.cpu_count() or 1
        workers = min(workers, len(cells))
        if workers > 1:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for cell, result in zip(cells, pool.map(self.worker, cells)):
                        self.cache.put(cell, result)
                self.last_execution = "pool"
                return
            except (PicklingError, AttributeError, TypeError, OSError, RuntimeError):
                # No subprocess support here (sandbox, restricted CI) or a
                # non-picklable worker/result (closures and lambdas fail
                # with AttributeError/TypeError): fall back to one core.
                pass
        for cell in cells:
            if cell not in self.cache:
                self.cache.put(cell, self.worker(cell))
        self.last_execution = "serial"
