"""The sharded ingest tier: per-egress-port shards across a process pool.

PrintQueue's data-plane layout partitions registers per egress port
(paper §6), which makes ports the natural parallelism axis for offline
ingest too: each port's dequeue log is an independent stream with its
own time-window banks, queue monitor, and snapshot store.  This module
drives one :class:`~repro.engine.fused.FusedIngestPipeline` per shard in
a worker process and adopts the finished ports back into the parent,
with results bit-identical to running each shard's fused pipeline
in-process.

Transport
---------

* The record array (:data:`~repro.switch.records.PACKET_RECORD_DTYPE`)
  travels through ``multiprocessing.shared_memory`` — one memcpy in,
  one copy out in the worker, never pickled.  The flow table and the
  (fresh, pre-traffic) port are pickled normally.
* The worker's snapshot-store writes are captured as a PQSTORE1 byte
  stream by an in-memory recorder twin and replayed into the parent's
  real store object afterwards (:func:`repro.store.replay.replay_into`).
  The parent store object — whatever backend: memory, mmap, compressed,
  with or without its own recorder — keeps its identity and produces
  byte-identical files/recordings to an in-process run.
* Worker-side observability counters merge into the parent registry
  (:meth:`~repro.obs.metrics.Metrics.merge`); the adopted port's handles
  then re-point at it (:meth:`~repro.core.printqueue.PrintQueuePort.attach_metrics`).

Degradation contract
--------------------

Mirrors :class:`~repro.engine.parallel.ParallelSweep`: typed submission
and transport failures (pickling, broken pool, OS limits) fall back to
running every remaining shard in-process — same results, one process.
``REPRO_SHARDED_INPROCESS=1`` forces the in-process path outright, and
shards carrying baseline estimators run in-process unconditionally
(estimator state lives in the parent).  ``last_execution`` records which
path ran (``"pool"`` or ``"in-process"``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pickle import PicklingError
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.interval import FixedIntervalEstimator
from repro.core.printqueue import DataPlaneQueryResult, PrintQueuePort
from repro.errors import ConfigError, PoolTimeoutError
from repro.engine.fused import FusedIngestPipeline
from repro.engine.parallel import default_pool_timeout_s
from repro.obs.metrics import Metrics
from repro.store import format as storefmt
from repro.store.memory import MemoryStore
from repro.store.replay import replay_into
from repro.switch.records import PACKET_RECORD_DTYPE, RecordBatch, as_record_batch
from repro.switch.telemetry import DequeueRecord
from repro.traffic.trace import Trace

#: Environment variable forcing the in-process path (no worker processes).
INPROCESS_ENV = "REPRO_SHARDED_INPROCESS"

#: Failure taxonomy that downgrades the pool to in-process execution —
#: the same classes :class:`~repro.engine.parallel.ParallelSweep` treats
#: as "the pool cannot work here", nothing else (a real error inside the
#: pipeline raises either way).
_FALLBACK_ERRORS = (
    PoolTimeoutError,
    PicklingError,
    AttributeError,
    TypeError,
    OSError,
    RuntimeError,
)


class _StreamRecorder:
    """In-memory twin of :class:`~repro.store.recording.Recorder`.

    Captures the worker store's ingest stream in PQSTORE1 wire format;
    the parent replays the bytes into its real store, so the stream any
    backend persists is byte-identical to an in-process run's.
    """

    __slots__ = ("_chunks", "_header_written", "bytes_written", "records_written")

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._header_written = False
        self.bytes_written = 0
        self.records_written = 0

    def write_header(self, meta: Dict[str, object]) -> None:
        if self._header_written:
            return
        self._append(storefmt.encode_header(meta))
        self._header_written = True

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self.bytes_written += len(data)

    def _record(self, kind: int, payload: bytes) -> None:
        self._append(storefmt.frame(kind, payload))
        self.records_written += 1

    def record_tw(self, snapshot: object) -> None:
        self._record(storefmt.REC_TW_ADD, storefmt.encode_tw(snapshot))

    def record_qm(self, snapshot: object, bounded: bool) -> None:
        self._record(storefmt.REC_QM_ADD, storefmt.encode_qm(snapshot, bounded))

    def record_replace(self, target_seq: int, snapshot: object) -> None:
        self._record(
            storefmt.REC_TW_REPLACE, storefmt.encode_replace(target_seq, snapshot)
        )

    def flush(self) -> None:  # Recorder interface; nothing buffered outside
        pass

    def close(self) -> None:
        pass

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


@dataclass
class Shard:
    """One egress port's slice of work: a fresh port plus its dequeue log."""

    pq: PrintQueuePort
    records: Sequence[DequeueRecord]
    dp_trigger_indices: Optional[Set[int]] = None
    baselines: List[FixedIntervalEstimator] = field(default_factory=list)


def partition_trace_by_port(trace: Trace, num_ports: int) -> List[Trace]:
    """Split a trace into per-egress-port sub-traces, deterministically.

    Flows map to ports by ``flow_index % num_ports`` — a stand-in for a
    forwarding table that is stable across runs and engines, so shard
    counts can vary while every flow's port (hence its queue dynamics)
    stays fixed for a given ``num_ports``.  Each sub-trace keeps the full
    flow table (indices stay valid) and its arrays remain arrival-sorted.
    """
    if num_ports < 1:
        raise ConfigError(f"need at least one port, got {num_ports}")
    ports: List[Trace] = []
    assignment = trace.flow_index % num_ports
    for port in range(num_ports):
        mask = assignment == port
        ports.append(
            Trace(
                arrival_ns=trace.arrival_ns[mask],
                size_bytes=trace.size_bytes[mask],
                flow_index=trace.flow_index[mask],
                flows=trace.flows,
                priority=None if trace.priority is None else trace.priority[mask],
                name=f"{trace.name}:port{port}",
            )
        )
    return ports


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _shard_worker(
    pq: PrintQueuePort,
    shm_name: str,
    num_records: int,
    flows: Sequence,
    triggers: Optional[Set[int]],
) -> Tuple[PrintQueuePort, Dict[int, DataPlaneQueryResult]]:
    """Run one shard's fused pipeline against a shared-memory record array."""
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        view = np.ndarray(num_records, dtype=PACKET_RECORD_DTYPE, buffer=shm.buf)
        # One copy: the port's state (window arrays, snapshots) must not
        # alias a segment the parent unlinks after this worker returns.
        data = view.copy()
    finally:
        shm.close()
    batch = RecordBatch(data, flows)
    dp_results = FusedIngestPipeline(
        pq, batch, dp_trigger_indices=triggers
    ).run()
    return pq, dp_results


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _prepare_for_worker(pq: PrintQueuePort) -> Tuple[Optional[Metrics], object]:
    """Swap transport-safe stand-ins into a port before pickling it.

    The real store (possibly an unpicklable write-mode mmap) is replaced
    by a fresh :class:`MemoryStore` carrying the same retention policy
    and bound metadata, with a :class:`_StreamRecorder` capturing the
    ingest stream; the parent registry is replaced by an empty one so
    the merge after adoption adds exactly the worker's deltas.  Returns
    what :func:`_adopt_worker_port` needs to undo the swap.
    """
    parent_metrics = pq.metrics
    if parent_metrics is not None:
        pq.attach_metrics(Metrics())
    parent_store = pq.analysis.store
    shard_store = MemoryStore(retention=parent_store.retention)
    shard_store.bind(dict(parent_store.meta))
    shard_store.attach_recorder(_StreamRecorder())
    pq.analysis.store = shard_store
    return parent_metrics, parent_store


def _restore_parent(
    pq: PrintQueuePort, parent_metrics: Optional[Metrics], parent_store: object
) -> None:
    """Undo :func:`_prepare_for_worker` on a port that never ran (fallback)."""
    pq.analysis.store = parent_store  # type: ignore[assignment]
    pq.attach_metrics(parent_metrics)


def _adopt_worker_port(
    pq: PrintQueuePort,
    worker_pq: PrintQueuePort,
    parent_metrics: Optional[Metrics],
    parent_store: object,
) -> None:
    """Fold a finished worker port back into the parent's port object.

    The parent port object keeps its identity (callers hold references);
    its state becomes the worker's.  The worker's store stream replays
    into the parent's real store, worker counters merge into the parent
    registry, and every metrics handle re-points at it.
    """
    pq.__dict__.update(worker_pq.__dict__)
    shard_store = pq.analysis.store
    recorder = shard_store._recorder  # type: ignore[attr-defined]
    pq.analysis.store = parent_store  # type: ignore[assignment]
    replay_into(parent_store, recorder.getvalue())  # type: ignore[arg-type]
    worker_metrics = pq.metrics
    if parent_metrics is not None and worker_metrics is not None:
        parent_metrics.merge(worker_metrics)
    pq.attach_metrics(parent_metrics)


class ShardRunner:
    """Run a fleet of per-port shards, one worker process per shard.

    Mutates each shard's port in place (the adopted worker state) and
    returns the per-shard data-plane query results, in shard order.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        max_workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.shards = list(shards)
        cores = os.cpu_count() or 1
        self.max_workers = max_workers or min(len(self.shards), cores) or 1
        # Bounded per-shard wait: None (default) reads REPRO_POOL_TIMEOUT_S
        # via the sweep module's resolver; <= 0 disables the bound.
        if timeout_s is None:
            self.timeout_s: Optional[float] = default_pool_timeout_s()
        else:
            self.timeout_s = timeout_s if timeout_s > 0 else None
        #: ``"pool"`` or ``"in-process"`` after :meth:`run`.
        self.last_execution: Optional[str] = None
        #: Number of expired bounded waits (each downgrades to in-process).
        self.pool_timeouts = 0
        # Shards already adopted from a worker; the in-process fallback
        # must not re-drive them (their ports are no longer fresh).
        self._completed: Dict[int, Dict[int, DataPlaneQueryResult]] = {}

    def _note_pool_timeout(self) -> None:
        """Account one expired wait against the first shard's registry."""
        self.pool_timeouts += 1
        for shard in self.shards:
            metrics = shard.pq.metrics
            if metrics is not None:
                metrics.counter("pq_pool_timeouts_total").inc()
                break

    def _force_in_process(self) -> bool:
        if os.environ.get(INPROCESS_ENV):
            return True
        return any(shard.baselines for shard in self.shards)

    def run(self) -> List[Dict[int, DataPlaneQueryResult]]:
        if not self.shards:
            self.last_execution = "in-process"
            return []
        if self._force_in_process():
            return self._run_in_process()
        try:
            return self._run_pool()
        except PoolTimeoutError:
            # A worker exceeded its bounded wait; ports were already
            # restored by the pool path's cleanup handler, so the parent
            # registry is back in place for the counter tick.
            self._note_pool_timeout()
            return self._run_in_process()
        except _FALLBACK_ERRORS:
            return self._run_in_process()

    # -- the two execution paths -------------------------------------------

    def _run_in_process(self) -> List[Dict[int, DataPlaneQueryResult]]:
        results: List[Dict[int, DataPlaneQueryResult]] = []
        for i, shard in enumerate(self.shards):
            done = self._completed.get(i)
            if done is not None:
                results.append(done)
                continue
            results.append(
                FusedIngestPipeline(
                    shard.pq,
                    shard.records,
                    dp_trigger_indices=shard.dp_trigger_indices,
                    baselines=shard.baselines or None,
                ).run()
            )
        self.last_execution = "in-process"
        return results

    def _run_pool(self) -> List[Dict[int, DataPlaneQueryResult]]:
        batches = [as_record_batch(shard.records) for shard in self.shards]
        segments: List[Optional[shared_memory.SharedMemory]] = [None] * len(
            self.shards
        )
        prepared: List[Optional[Tuple[Optional[Metrics], object]]] = [None] * len(
            self.shards
        )
        results: List[Optional[Dict[int, DataPlaneQueryResult]]] = [None] * len(
            self.shards
        )
        # Managed by hand (not `with`): a `with` exit joins the pool, and
        # after a bounded wait expired that join would block on the very
        # worker we just declared stuck.
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        wait_on_shutdown = True
        try:
            futures = []
            for i, (shard, batch) in enumerate(zip(self.shards, batches)):
                data = np.ascontiguousarray(batch.data)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, data.nbytes)
                )
                segments[i] = shm
                dest = np.ndarray(
                    len(data), dtype=PACKET_RECORD_DTYPE, buffer=shm.buf
                )
                dest[:] = data
                prepared[i] = _prepare_for_worker(shard.pq)
                futures.append(
                    pool.submit(
                        _shard_worker,
                        shard.pq,
                        shm.name,
                        len(data),
                        batch.flows,
                        shard.dp_trigger_indices,
                    )
                )
            for i, future in enumerate(futures):
                # BrokenProcessPool is a RuntimeError subclass, so a
                # crashed worker propagates straight into run()'s
                # _FALLBACK_ERRORS net after the restore handler runs.
                # FuturesTimeout must be converted before that net sees
                # it: on 3.11+ it aliases the builtin TimeoutError (an
                # OSError subclass) and would lose the timeout identity.
                try:
                    worker_pq, dp_results = future.result(timeout=self.timeout_s)
                except FuturesTimeout:
                    wait_on_shutdown = False
                    raise PoolTimeoutError(
                        f"shard {i} exceeded its {self.timeout_s}s pool wait"
                    ) from None
                parent_metrics, parent_store = prepared[i]  # type: ignore[misc]
                _adopt_worker_port(
                    self.shards[i].pq, worker_pq, parent_metrics, parent_store
                )
                prepared[i] = None
                results[i] = dp_results
                self._completed[i] = dp_results
        except BaseException:
            # Ports whose workers never (fully) ran get their original
            # store/registry back, so the in-process fallback (or the
            # caller, for non-taxonomy errors) sees consistent ports;
            # adopted ports are final and the fallback skips them.
            for i, swap in enumerate(prepared):
                if swap is not None:
                    _restore_parent(self.shards[i].pq, *swap)
            raise
        finally:
            pool.shutdown(wait=wait_on_shutdown, cancel_futures=not wait_on_shutdown)
            for shm in segments:
                if shm is not None:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:
                        pass
        self.last_execution = "pool"
        return [r if r is not None else {} for r in results]


class ShardedIngestPipeline:
    """Single-port facade over :class:`ShardRunner` (``engine="sharded"``).

    Signature-compatible with the other ingest pipelines, so
    :func:`~repro.experiments.runner.drive_printqueue` can dispatch to it:
    one port, one record log, optional triggers and baselines.  The log
    ships to one worker process (shared-memory record array) and the
    finished port is adopted back; outputs are bit-identical to
    ``engine="fused"`` on the same log.
    """

    def __init__(
        self,
        pq: PrintQueuePort,
        records: Sequence[DequeueRecord],
        dp_trigger_indices: Optional[Set[int]] = None,
        baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
    ) -> None:
        self.pq = pq
        self.batch = as_record_batch(records)
        self.dp_trigger_indices = dp_trigger_indices
        self.baselines = list(baselines or [])
        self.last_execution: Optional[str] = None

    def run(self) -> Dict[int, DataPlaneQueryResult]:
        runner = ShardRunner(
            [
                Shard(
                    self.pq,
                    self.batch,
                    dp_trigger_indices=self.dp_trigger_indices,
                    baselines=self.baselines,
                )
            ]
        )
        results = runner.run()
        self.last_execution = runner.last_execution
        return results[0] if results else {}
