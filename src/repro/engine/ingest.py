"""Poll-boundary-aligned batched ingest (the tentpole fast path).

The scalar reference driver replays a dequeue log one event at a time:
every enqueue/dequeue crosses the Python call boundary into
``process_enqueue`` / ``process_dequeue``, which dominates wall-clock on
million-packet traces.  :class:`IngestPipeline` replays the *same* merged
event stream in slices:

1. merge the enqueue and dequeue sides into one time-ordered stream
   (vectorised, :func:`repro.switch.fastpath.merge_event_streams`);
2. cut the stream at every poll boundary (queue-monitor cadence, set
   period) and at every data-plane trigger, so that within one slice no
   control-plane action can occur;
3. feed each slice to :meth:`PrintQueuePort.process_batch`, which updates
   the queue monitor via ``apply_batch`` and the active time-window bank
   via ``absorb_batch`` — both array-at-a-time.

Because slices never straddle a poll boundary and triggers still fire at
their exact dequeue instants, the resulting snapshots, counters, and
query results are bit-identical to the scalar path (the equivalence suite
asserts this record for record).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Set, Union

import numpy as np

from repro.baselines.interval import FixedIntervalEstimator
from repro.core.printqueue import DataPlaneQueryResult, PrintQueuePort
from repro.core.queries import QueryInterval
from repro.switch.fastpath import merge_event_streams
from repro.switch.telemetry import DequeueRecord


class _GatheredFlows:
    """Lazy ``base[idx[i]]`` view over the per-record flow array.

    The batch kernels only ever look up the handful of flows that survive
    a batch (per touched cell / level), so materialising a per-event
    object array would be wasted work.  Boolean/array indexing narrows the
    view; integer indexing resolves the actual flow.
    """

    __slots__ = ("base", "idx")

    def __init__(self, base: np.ndarray, idx: np.ndarray) -> None:
        self.base = base
        self.idx = idx

    def __len__(self) -> int:
        return len(self.idx)

    def __getitem__(self, i: "Union[int, slice, np.ndarray]") -> object:
        if isinstance(i, (np.ndarray, slice)):
            return _GatheredFlows(self.base, self.idx[i])
        return self.base[self.idx[i]]

    def __iter__(self) -> "Iterator[object]":
        return iter(self.base[self.idx].tolist())


class IngestPipeline:
    """Drive one port through the batched ingest path.

    Parameters
    ----------
    pq:
        The per-port PrintQueue instance to feed.
    records:
        The dequeue log, in dequeue order (as produced by
        :func:`repro.experiments.runner.run_trace_through_fifo`).
    dp_trigger_indices:
        Record positions at whose dequeue instant an on-demand
        read+query fires.
    baselines:
        Fixed-interval baseline estimators fed every dequeue (these stay
        scalar; they are only used by the comparison benches).
    """

    def __init__(
        self,
        pq: PrintQueuePort,
        records: Sequence[DequeueRecord],
        dp_trigger_indices: Optional[Set[int]] = None,
        baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
    ) -> None:
        self.pq = pq
        self.records = records
        self.triggers = set(dp_trigger_indices or ())
        self.baselines = list(baselines or [])
        self.batches_processed = 0
        #: Completed on-demand queries; filled by :meth:`steps`/:meth:`run`.
        self.dp_results: Dict[int, DataPlaneQueryResult] = {}
        # repro.obs: batch-size distribution and batch tally, published
        # into the port's registry when one is attached (apply/absorb
        # timings are recorded inside PrintQueuePort.process_batch).
        metrics = pq.metrics
        if metrics is not None:
            self._obs_batch_events = metrics.histogram("pq_ingest_batch_events")
            self._obs_batches = metrics.counter("pq_ingest_batches_total")
        else:
            self._obs_batch_events = None
            self._obs_batches = None

    def _timestamp_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """The (enq_ts, deq_ts) int64 columns of the log.

        The object-record tier gathers them attribute by attribute; the
        fused tier (:class:`repro.engine.fused.FusedIngestPipeline`)
        overrides this with zero-copy views of the structured array.
        """
        records = self.records
        enq_ts = np.array([r.enq_timestamp for r in records], dtype=np.int64)
        deq_ts = np.array([r.deq_timestamp for r in records], dtype=np.int64)
        return enq_ts, deq_ts

    def _event_flows(self, rec_idx: np.ndarray) -> Sequence:
        """A lazy per-event flow view for the batch kernels.

        The fused tier overrides this with a table-backed
        :class:`~repro.switch.records.FlowColumn` carrying int flow
        indices instead of an object array.
        """
        records = self.records
        n = len(records)
        flows = np.empty(n, dtype=object)
        flows[:] = [r.flow for r in records]
        return _GatheredFlows(flows, rec_idx)

    def run(self) -> Dict[int, DataPlaneQueryResult]:
        """Replay the whole log; returns completed on-demand queries."""
        for _ in self.steps():
            pass
        return self.dp_results

    def steps(self) -> "Iterator[int]":
        """Replay the log one poll-aligned batch at a time.

        Yields the number of merged events absorbed after each processed
        batch — the chunked drive hook the live service's ingest task
        uses to interleave ingest with its event loop.  Exhausting the
        generator finishes the port (windows flushed, store synced);
        completed on-demand queries accumulate in :attr:`dp_results`.
        :meth:`run` simply drains this generator, so the two drivers are
        bit-identical; a generator abandoned mid-stream leaves the port
        unfinished (see the supervisor's fail-stop contract in
        ``repro.service``).
        """
        records = self.records
        pq = self.pq
        n = len(records)
        dp_results: Dict[int, DataPlaneQueryResult] = {}
        self.dp_results = dp_results
        if n == 0:
            return

        enq_ts, deq_ts = self._timestamp_arrays()

        stream = merge_event_streams(enq_ts, deq_ts)
        times = stream.time_ns
        is_enq = stream.is_enqueue
        rec_idx = stream.record_index
        depth = stream.depth_after
        ev_flows = self._event_flows(rec_idx)
        num_events = len(times)

        # Merged positions at which a data-plane trigger fires (after the
        # dequeue event at that position is processed).
        if self.triggers:
            trig_sorted = np.fromiter(
                sorted(self.triggers), dtype=np.int64, count=len(self.triggers)
            )
            trig_pos = np.flatnonzero(
                ~is_enq & np.isin(rec_idx, trig_sorted)
            )
        else:
            trig_pos = np.empty(0, dtype=np.int64)

        cur = 0
        tp = 0
        while cur < num_events:
            boundary = pq.next_poll_boundary_ns
            if times[cur] >= boundary:
                # Fire every poll due before this event, exactly as the
                # scalar path's per-event _poll_if_due would.
                pq._poll_if_due(int(times[cur]))
                continue
            end = int(np.searchsorted(times, boundary, side="left"))
            while tp < len(trig_pos) and trig_pos[tp] < cur:
                tp += 1
            fire_trigger = False
            if tp < len(trig_pos) and trig_pos[tp] < end:
                end = int(trig_pos[tp]) + 1
                fire_trigger = True
            sl = slice(cur, end)
            pq.process_batch(
                is_enq[sl], ev_flows[sl], times[sl], depth[sl]
            )
            self.batches_processed += 1
            if self._obs_batches is not None:
                self._obs_batches.inc()
                self._obs_batch_events.observe(end - cur)
            if self.baselines:
                for pos in np.flatnonzero(~is_enq[sl]):
                    record = records[int(rec_idx[cur + pos])]
                    for baseline in self.baselines:
                        baseline.update(record.flow, record.deq_timestamp)
            if fire_trigger:
                d = int(rec_idx[end - 1])
                record = records[d]
                interval = QueryInterval.for_victim(
                    record.enq_timestamp, record.deq_timestamp
                )
                result = pq._dp_query_interval(record.deq_timestamp, interval)
                if result is not None:
                    dp_results[d] = result
                tp += 1
            cur = end
            yield end - sl.start

        end_ns = records[-1].deq_timestamp + 1
        pq.finish(end_ns)
        for baseline in self.baselines:
            baseline.finish()
