"""A small deterministic event queue for the switch simulator.

Events at equal timestamps are delivered in insertion order (a stable
tie-break via a monotonically increasing sequence number), which keeps the
simulator fully deterministic for a given input trace.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

EventCallback = Callable[[], None]


class EventQueue:
    """A time-ordered queue of zero-argument callbacks."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventCallback]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_ns: int, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at ``time_ns``."""
        if time_ns < 0:
            raise ValueError(f"negative event time: {time_ns}")
        heapq.heappush(self._heap, (time_ns, self._counter, callback))
        self._counter += 1

    def peek_time(self) -> int:
        """Timestamp of the next event; raises IndexError if empty."""
        return self._heap[0][0]

    def pop(self) -> Tuple[int, EventCallback]:
        """Remove and return ``(time_ns, callback)`` of the next event."""
        time_ns, _seq, callback = heapq.heappop(self._heap)
        return time_ns, callback

    def run_until(self, end_ns: int) -> int:
        """Run all events with time <= ``end_ns``; return the last time run.

        New events scheduled by callbacks are honoured as long as they fall
        within the horizon.
        """
        last = 0
        while self._heap and self._heap[0][0] <= end_ns:
            time_ns, callback = self.pop()
            last = time_ns
            callback()
        return last

    def run_all(self, max_events: int = 100_000_000) -> int:
        """Drain the queue entirely; return the time of the last event.

        ``max_events`` guards against runaway self-rescheduling callbacks.
        """
        last = 0
        executed = 0
        while self._heap:
            time_ns, callback = self.pop()
            last = time_ns
            callback()
            executed += 1
            if executed > max_events:
                raise RuntimeError("event budget exhausted; runaway simulation?")
        return last
