"""Vectorised FIFO fast path.

The benchmark harness needs to push millions of packets through a single
FIFO bottleneck per configuration.  For that common case the queueing
recurrence

    start[i] = max(arrival[i], finish[i-1]);  finish[i] = start[i] + tx[i]

is computed in one pass over numpy arrays, producing exactly the same
timestamps (integer ns) and enqueue-time depths as the event-driven
:class:`~repro.switch.switchsim.Switch` with a FIFO scheduler — a property
the test suite checks record-for-record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.units import PS_PER_NS

if TYPE_CHECKING:  # runtime imports would cycle through repro.switch
    from repro.switch.records import RecordBatch
    from repro.traffic.trace import Trace


@dataclass
class MergedEventStream:
    """A dequeue log merged into one time-ordered enqueue/dequeue stream.

    Event ``j`` refers to record ``record_index[j]``; ``is_enqueue[j]``
    says which side, ``time_ns[j]`` when it happened, and
    ``depth_after[j]`` the queue depth (in packets) right after the event
    — the exact values the scalar driver would have passed to
    ``process_enqueue`` / ``process_dequeue``.
    """

    time_ns: np.ndarray  # int64 ns
    is_enqueue: np.ndarray  # bool
    record_index: np.ndarray  # int64 indices into the record log
    depth_after: np.ndarray  # int64 packets


def merge_event_streams(
    enq_timestamp: np.ndarray, deq_timestamp: np.ndarray
) -> MergedEventStream:
    """Merge a dequeue-ordered record log into one event stream.

    Enqueues are ordered by enqueue timestamp (ties by record position),
    dequeues keep the log order, and an enqueue wins a tie against a
    dequeue at the same instant — the same discipline as the scalar
    event loop in :func:`repro.experiments.runner.drive_printqueue_scalar`.
    """
    enq_timestamp = np.asarray(enq_timestamp, dtype=np.int64)
    deq_timestamp = np.asarray(deq_timestamp, dtype=np.int64)
    if enq_timestamp.shape != deq_timestamp.shape or enq_timestamp.ndim != 1:
        raise ValueError("expected matching 1-D timestamp arrays")
    n = len(enq_timestamp)
    if n and np.any(enq_timestamp[1:] < enq_timestamp[:-1]):
        enq_order = np.argsort(enq_timestamp, kind="stable")
        enq_sorted = enq_timestamp[enq_order]
    else:
        # FIFO logs arrive enqueue-sorted already (dequeue order equals
        # enqueue order), so the sort usually costs one comparison pass.
        enq_order = np.arange(n, dtype=np.int64)
        enq_sorted = enq_timestamp
    if n and np.any(deq_timestamp[1:] < deq_timestamp[:-1]):
        raise ValueError("dequeue log must be in dequeue order")
    ranks = np.arange(n, dtype=np.int64)
    # Merge the two sorted streams by rank arithmetic: an event's merged
    # position is its own rank plus the count of other-stream events that
    # precede it.  side="left"/"right" encode the tie rule (an enqueue
    # wins a tie against a dequeue at the same instant).
    pos_enq = ranks + np.searchsorted(deq_timestamp, enq_sorted, side="left")
    pos_deq = ranks + np.searchsorted(enq_sorted, deq_timestamp, side="right")
    times = np.empty(2 * n, dtype=np.int64)
    is_enqueue = np.empty(2 * n, dtype=bool)
    record_index = np.empty(2 * n, dtype=np.int64)
    times[pos_enq] = enq_sorted
    times[pos_deq] = deq_timestamp
    is_enqueue[pos_enq] = True
    is_enqueue[pos_deq] = False
    record_index[pos_enq] = enq_order
    record_index[pos_deq] = ranks
    depth_after = np.cumsum(np.where(is_enqueue, 1, -1))
    return MergedEventStream(
        time_ns=times,
        is_enqueue=is_enqueue,
        record_index=record_index,
        depth_after=depth_after,
    )


@dataclass
class FifoResult:
    """Arrays describing one FIFO pass; all times are integer nanoseconds.

    ``kept`` maps positions in the output arrays back to indices in the
    input arrival arrays (tail-dropped packets are removed).  Outputs are
    ordered by arrival which, for a FIFO, equals dequeue order.
    """

    enq_timestamp: np.ndarray  # int64 ns
    deq_timestamp: np.ndarray  # int64 ns
    enq_qdepth: np.ndarray  # int64, depth in packets at enqueue (excl. self)
    kept: np.ndarray  # int64 indices into the input arrays
    drops: int


def fifo_timestamps(
    arrival_ns: np.ndarray,
    size_bytes: np.ndarray,
    rate_bps: int,
    capacity_pkts: Optional[int] = None,
) -> FifoResult:
    """Run a FIFO bottleneck over sorted arrivals.

    Parameters
    ----------
    arrival_ns:
        Integer arrival times, must be non-decreasing.
    size_bytes:
        Packet sizes, same length.
    rate_bps:
        Drain rate of the port.
    capacity_pkts:
        Optional tail-drop capacity in packets.

    Notes
    -----
    Depth accounting is in packets (the default of ``EgressQueue``).  The
    transmitter is work-conserving with exact picosecond accounting: a
    packet's transmission *starts* at its dequeue timestamp, and the wire
    is busy for ``size * 8 / rate`` after that, exactly as
    ``EgressPort._transmit`` behaves.
    """
    arrival_ns = np.asarray(arrival_ns, dtype=np.int64)
    size_bytes = np.asarray(size_bytes, dtype=np.int64)
    if arrival_ns.shape != size_bytes.shape:
        raise ValueError("arrival and size arrays must have the same shape")
    if arrival_ns.ndim != 1:
        raise ValueError("expected 1-D arrays")
    if len(arrival_ns) == 0:
        empty = np.empty(0, dtype=np.int64)
        return FifoResult(empty, empty.copy(), empty.copy(), empty.copy(), 0)
    if np.any(np.diff(arrival_ns) < 0):
        raise ValueError("arrival times must be non-decreasing")
    if rate_bps <= 0:
        raise ValueError(f"non-positive rate: {rate_bps}")

    tx_ps = (size_bytes * (8 * PS_PER_NS * 1_000_000_000)) // rate_bps

    n = len(arrival_ns)
    deq = np.empty(n, dtype=np.int64)
    qdepth = np.empty(n, dtype=np.int64)
    kept = np.empty(n, dtype=np.int64)

    arr = arrival_ns.tolist()
    tx = tx_ps.tolist()
    wire_free_ps = 0
    out = 0
    drops = 0
    # deq_times of packets still "in the queue" relative to the scanning
    # arrival pointer: maintained implicitly via a moving head index.
    deq_list = deq  # alias for speed
    head = 0  # first output index whose deq_timestamp may still be pending
    for i in range(n):
        now = arr[i]
        # Depth at this arrival = packets already enqueued but not dequeued.
        # Strict <: the event-driven Switch processes an arrival before a
        # dequeue carrying the same timestamp, so a packet dequeuing at
        # exactly `now` still counts towards this arrival's depth.
        while head < out and deq_list[head] < now:
            head += 1
        depth = out - head
        if capacity_pkts is not None and depth + 1 > capacity_pkts:
            drops += 1
            continue
        start_ps = max(now * PS_PER_NS, wire_free_ps)
        start_ns = -(-start_ps // PS_PER_NS)  # ceil, matching EgressPort
        deq_list[out] = start_ns
        qdepth[out] = depth
        kept[out] = i
        wire_free_ps = start_ns * PS_PER_NS + tx[i]
        out += 1

    kept = kept[:out]
    return FifoResult(
        enq_timestamp=arrival_ns[kept],
        deq_timestamp=deq[:out].copy(),
        enq_qdepth=qdepth[:out].copy(),
        kept=kept,
        drops=drops,
    )


def fifo_record_batch(
    trace: "Trace",
    rate_bps: int,
    capacity_pkts: Optional[int] = None,
) -> "Tuple[RecordBatch, int]":
    """FIFO pass returning the structured record-array dequeue log.

    The columnar twin of ``run_trace_through_fifo``: the same
    :func:`fifo_timestamps` recurrence, but the kept packets come back as
    a :class:`~repro.switch.records.RecordBatch` built directly from the
    result arrays plus the trace's flow-index/size columns — no
    per-packet ``DequeueRecord`` objects.  Returns ``(batch, drops)``.
    """
    # Local import: records depends on this module for FifoResult.
    from repro.switch.records import RecordBatch

    result = fifo_timestamps(
        trace.arrival_ns, trace.size_bytes, rate_bps, capacity_pkts
    )
    kept = result.kept
    batch = RecordBatch.from_fifo(
        result,
        trace.flow_index[kept],
        trace.size_bytes[kept],
        trace.flows,
    )
    return batch, result.drops
