"""Packet schedulers for an egress port.

PrintQueue's time windows claim to be agnostic to the scheduling policy
(they consume only dequeue timestamps), and its queue monitor "can track
each priority or rank separately" (Section 5).  To exercise both claims the
simulator supports FIFO, strict priority, and deficit round robin over a
set of per-class FIFO queues.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.switch.packet import Packet
from repro.switch.queue import EgressQueue


class Scheduler(ABC):
    """Selects which of a port's class queues dequeues next."""

    def __init__(self, queues: Sequence[EgressQueue]) -> None:
        if not queues:
            raise ValueError("scheduler needs at least one queue")
        self.queues: List[EgressQueue] = list(queues)

    def queue_for(self, packet: Packet) -> EgressQueue:
        """Queue a packet of this priority class enqueues into.

        Priorities beyond the configured class count map to the last
        (lowest-priority) queue.
        """
        index = min(packet.priority, len(self.queues) - 1)
        return self.queues[index]

    @property
    def total_depth_units(self) -> int:
        return sum(q.depth_units for q in self.queues)

    @property
    def empty(self) -> bool:
        return all(len(q) == 0 for q in self.queues)

    @abstractmethod
    def select(self) -> Optional[EgressQueue]:
        """The queue to dequeue from next, or None if all are empty."""


class FifoScheduler(Scheduler):
    """A single FIFO queue; the paper's default evaluation setting."""

    def __init__(self, queue: EgressQueue) -> None:
        super().__init__([queue])

    def select(self) -> Optional[EgressQueue]:
        return self.queues[0] if len(self.queues[0]) else None


class StrictPriorityScheduler(Scheduler):
    """Always serve the lowest-indexed non-empty queue (0 = highest)."""

    def select(self) -> Optional[EgressQueue]:
        for queue in self.queues:
            if len(queue):
                return queue
        return None


class DeficitRoundRobinScheduler(Scheduler):
    """Byte-fair deficit round robin across the class queues."""

    def __init__(self, queues: Sequence[EgressQueue], quantum_bytes: int = 1500) -> None:
        super().__init__(queues)
        if quantum_bytes <= 0:
            raise ValueError(f"non-positive quantum: {quantum_bytes}")
        self.quantum_bytes = quantum_bytes
        self._deficit: Dict[int, int] = {i: 0 for i in range(len(self.queues))}
        #: whether the current visit to each queue has received its quantum
        self._granted: Dict[int, bool] = {i: False for i in range(len(self.queues))}
        self._active = 0

    def select(self) -> Optional[EgressQueue]:
        if self.empty:
            # Reset credit so an idle period does not bank deficit.
            for index in self._deficit:
                self._deficit[index] = 0
                self._granted[index] = False
            return None
        n = len(self.queues)
        # Each queue needs at most 3 steps per lap (grant, recheck, move
        # on); deficits accumulate across laps when the quantum is smaller
        # than the head packet, needing at most ceil(max_size/quantum) laps.
        max_steps = 3 * n * (1 + 10_000 // self.quantum_bytes)
        for _ in range(max_steps):
            index = self._active
            queue = self.queues[index]
            head = queue.head()
            if head is None:
                self._deficit[index] = 0
                self._granted[index] = False
                self._active = (index + 1) % n
                continue
            if self._deficit[index] >= head.size_bytes:
                # Serve from the current visit's remaining credit.
                self._deficit[index] -= head.size_bytes
                return queue
            if self._granted[index]:
                # Quantum already granted this visit and still short:
                # carry the deficit over and move to the next queue.
                self._granted[index] = False
                self._active = (index + 1) % n
                continue
            self._granted[index] = True
            self._deficit[index] += self.quantum_bytes
        raise SimulationError("DRR failed to serve; quantum far below packet sizes?")
