"""Egress queue with depth accounting.

The queue tracks its depth in *units* — by default one unit per packet,
optionally one unit per ``cell_bytes`` of buffered data (Tofino counts
80-byte cells).  ``enq_qdepth`` metadata and the queue monitor both consume
this unit, so the whole pipeline is consistent whichever granularity is
chosen.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.switch.packet import Packet


@dataclass(frozen=True)
class QueueSample:
    """A (time, depth) sample of the queue occupancy."""

    time_ns: int
    depth: int


class EgressQueue:
    """A single FIFO queue with unit-based depth accounting and a drop tail.

    Parameters
    ----------
    capacity_units:
        Maximum depth in units before tail drop.  ``None`` = unbounded.
    cell_bytes:
        If set, depth is measured in ceil(size/cell_bytes) buffer cells;
        otherwise depth is measured in packets.
    """

    def __init__(
        self,
        capacity_units: Optional[int] = None,
        cell_bytes: Optional[int] = None,
        record_samples: bool = False,
    ) -> None:
        if capacity_units is not None and capacity_units <= 0:
            raise ValueError(f"non-positive capacity: {capacity_units}")
        if cell_bytes is not None and cell_bytes <= 0:
            raise ValueError(f"non-positive cell size: {cell_bytes}")
        self.capacity_units = capacity_units
        self.cell_bytes = cell_bytes
        self._packets: Deque[Packet] = deque()
        self._depth_units = 0
        self._bytes = 0
        self.drops = 0
        self.max_depth_seen = 0
        self._samples: Optional[List[QueueSample]] = [] if record_samples else None

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def depth_units(self) -> int:
        """Current depth in accounting units (packets or cells)."""
        return self._depth_units

    @property
    def buffered_bytes(self) -> int:
        return self._bytes

    @property
    def samples(self) -> List[QueueSample]:
        if self._samples is None:
            raise SimulationError("queue was created with record_samples=False")
        return self._samples

    def units_of(self, packet: Packet) -> int:
        """Depth units consumed by one packet."""
        if self.cell_bytes is None:
            return 1
        return -(-packet.size_bytes // self.cell_bytes)

    def enqueue(self, packet: Packet, now_ns: int) -> bool:
        """Try to enqueue; returns False (and counts a drop) on tail drop.

        On success the packet's ``enq_timestamp`` and ``enq_qdepth`` are
        stamped; ``enq_qdepth`` is the depth *before* this packet joins,
        matching the Tofino metadata semantics.
        """
        units = self.units_of(packet)
        if (
            self.capacity_units is not None
            and self._depth_units + units > self.capacity_units
        ):
            self.drops += 1
            packet.dropped = True
            return False
        packet.enq_timestamp = now_ns
        packet.enq_qdepth = self._depth_units
        self._packets.append(packet)
        self._depth_units += units
        self._bytes += packet.size_bytes
        if self._depth_units > self.max_depth_seen:
            self.max_depth_seen = self._depth_units
        if self._samples is not None:
            self._samples.append(QueueSample(now_ns, self._depth_units))
        return True

    def head(self) -> Optional[Packet]:
        """Peek at the packet that would dequeue next, or None."""
        return self._packets[0] if self._packets else None

    def dequeue(self, now_ns: int) -> Packet:
        """Remove the head packet and stamp its ``deq_timedelta``."""
        if not self._packets:
            raise SimulationError("dequeue from an empty queue")
        packet = self._packets.popleft()
        self._depth_units -= self.units_of(packet)
        self._bytes -= packet.size_bytes
        assert packet.enq_timestamp is not None
        if now_ns < packet.enq_timestamp:
            raise SimulationError(
                f"dequeue time {now_ns} precedes enqueue {packet.enq_timestamp}"
            )
        packet.deq_timedelta = now_ns - packet.enq_timestamp
        packet.deq_qdepth = self._depth_units
        if self._samples is not None:
            self._samples.append(QueueSample(now_ns, self._depth_units))
        return packet
