"""Telemetry headers and the ground-truth recorder.

In the paper's testbed, the switch inserts a telemetry header (enqueue /
dequeue timestamps and enqueue-time queue depth) into every packet, and a
DPDK receiver logs the headers to files that later yield the ground truth.
In the simulator the recorder simply subscribes to the egress pipeline and
logs the same fields losslessly — strictly more faithful than a capture
pipeline, and only used for scoring, never by PrintQueue itself.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.switch.packet import FlowKey, Packet


@dataclass(frozen=True)
class TelemetryHeader:
    """The per-packet telemetry header of Section 7.1."""

    enq_timestamp: int
    deq_timestamp: int
    enq_qdepth: int

    @property
    def deq_timedelta(self) -> int:
        return self.deq_timestamp - self.enq_timestamp


@dataclass(frozen=True)
class DequeueRecord:
    """One dequeued packet as logged by the ground-truth recorder."""

    flow: FlowKey
    size_bytes: int
    enq_timestamp: int
    deq_timestamp: int
    enq_qdepth: int
    priority: int = 0

    @property
    def queuing_delay(self) -> int:
        return self.deq_timestamp - self.enq_timestamp

    @property
    def header(self) -> TelemetryHeader:
        return TelemetryHeader(self.enq_timestamp, self.deq_timestamp, self.enq_qdepth)


class GroundTruthRecorder:
    """Logs every dequeue event on a port, ordered by dequeue time.

    Provides the primitives the evaluation needs: per-flow dequeue counts
    over an interval, victim selection by queue depth, and queue-depth
    reconstruction.
    """

    def __init__(self) -> None:
        self._records: List[DequeueRecord] = []
        self._deq_times: List[int] = []
        self._finalized = False

    def __len__(self) -> int:
        return len(self._records)

    def hook(self, packet: Packet) -> None:
        """Egress-pipeline hook: log a dequeued packet."""
        assert packet.enq_timestamp is not None
        assert packet.deq_timedelta is not None
        assert packet.enq_qdepth is not None
        record = DequeueRecord(
            flow=packet.flow,
            size_bytes=packet.size_bytes,
            enq_timestamp=packet.enq_timestamp,
            deq_timestamp=packet.enq_timestamp + packet.deq_timedelta,
            enq_qdepth=packet.enq_qdepth,
            priority=packet.priority,
        )
        if self._deq_times and record.deq_timestamp < self._deq_times[-1]:
            raise SimulationError("dequeue events arrived out of order")
        self._records.append(record)
        self._deq_times.append(record.deq_timestamp)

    @property
    def records(self) -> Sequence[DequeueRecord]:
        return self._records

    # -- interval queries --------------------------------------------------

    def index_range(self, start_ns: int, end_ns: int) -> Tuple[int, int]:
        """Indices of records with ``start_ns <= deq_timestamp <= end_ns``."""
        lo = bisect.bisect_left(self._deq_times, start_ns)
        hi = bisect.bisect_right(self._deq_times, end_ns)
        return lo, hi

    def flow_counts(self, start_ns: int, end_ns: int) -> Dict[FlowKey, int]:
        """Ground-truth per-flow packet counts dequeued in the interval."""
        lo, hi = self.index_range(start_ns, end_ns)
        counts: Dict[FlowKey, int] = {}
        for record in self._records[lo:hi]:
            counts[record.flow] = counts.get(record.flow, 0) + 1
        return counts

    def records_in(self, start_ns: int, end_ns: int) -> Sequence[DequeueRecord]:
        lo, hi = self.index_range(start_ns, end_ns)
        return self._records[lo:hi]

    # -- victim selection ---------------------------------------------------

    def victims_by_depth(
        self,
        min_depth: int,
        max_depth: Optional[int] = None,
    ) -> List[DequeueRecord]:
        """All records whose enqueue-time queue depth fell in a band."""
        out = []
        for record in self._records:
            if record.enq_qdepth >= min_depth and (
                max_depth is None or record.enq_qdepth < max_depth
            ):
                out.append(record)
        return out

    def depth_timeline(self) -> Tuple[List[int], List[int]]:
        """(enqueue timestamps, enqueue-time depths) for plotting Fig. 16a."""
        pairs = sorted((r.enq_timestamp, r.enq_qdepth) for r in self._records)
        return [t for t, _ in pairs], [d for _, d in pairs]
