"""Shared buffer management with dynamic thresholds.

Real switch ASICs share one packet buffer across egress queues and admit
packets by a *dynamic threshold* (DT) policy: a queue may grow up to
``alpha x remaining_free_buffer``.  PrintQueue's evaluation runs a
single uncontended port, but the multi-port experiments (Figure 15) and
any realistic deployment sit behind such a buffer manager, so the
simulator provides one.  Plugging it into the egress queues makes drops
depend on *global* occupancy, the way Tofino's traffic manager behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.switch.packet import Packet
from repro.switch.queue import EgressQueue


@dataclass
class BufferStats:
    admitted: int = 0
    dropped: int = 0
    peak_occupancy_bytes: int = 0


class SharedBuffer:
    """A byte-accounted shared buffer with dynamic-threshold admission.

    Parameters
    ----------
    capacity_bytes:
        Total buffer size (Tofino-1 carries ~22 MB per pipe group).
    alpha:
        DT aggressiveness: a queue is admitted while
        ``queue_bytes < alpha * free_bytes``.  Large alpha approaches
        complete sharing; small alpha reserves headroom for quiet queues.
    """

    def __init__(self, capacity_bytes: int = 22 * 1024 * 1024, alpha: float = 1.0) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"non-positive capacity: {capacity_bytes}")
        if alpha <= 0:
            raise ValueError(f"non-positive alpha: {alpha}")
        self.capacity_bytes = capacity_bytes
        self.alpha = alpha
        self._queue_bytes: Dict[int, int] = {}
        self._occupied = 0
        self.stats = BufferStats()

    @property
    def occupied_bytes(self) -> int:
        return self._occupied

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._occupied

    def queue_bytes(self, queue_id: int) -> int:
        return self._queue_bytes.get(queue_id, 0)

    def threshold_bytes(self) -> float:
        """The current per-queue DT limit."""
        return self.alpha * self.free_bytes

    def admit(self, queue_id: int, size_bytes: int) -> bool:
        """Try to admit ``size_bytes`` for ``queue_id``."""
        if size_bytes <= 0:
            raise ValueError(f"non-positive packet size: {size_bytes}")
        current = self._queue_bytes.get(queue_id, 0)
        if size_bytes > self.free_bytes or current >= self.threshold_bytes():
            self.stats.dropped += 1
            return False
        self._queue_bytes[queue_id] = current + size_bytes
        self._occupied += size_bytes
        self.stats.admitted += 1
        if self._occupied > self.stats.peak_occupancy_bytes:
            self.stats.peak_occupancy_bytes = self._occupied
        return True

    def release(self, queue_id: int, size_bytes: int) -> None:
        """Return ``size_bytes`` to the pool on dequeue."""
        current = self._queue_bytes.get(queue_id, 0)
        if size_bytes > current:
            raise SimulationError(
                f"queue {queue_id} releasing {size_bytes} B but holds {current} B"
            )
        self._queue_bytes[queue_id] = current - size_bytes
        self._occupied -= size_bytes


class BufferedQueue(EgressQueue):
    """An egress queue whose admission is gated by a shared buffer."""

    def __init__(
        self,
        shared: SharedBuffer,
        queue_id: int,
        cell_bytes: Optional[int] = None,
        record_samples: bool = False,
    ) -> None:
        super().__init__(
            capacity_units=None, cell_bytes=cell_bytes, record_samples=record_samples
        )
        self.shared = shared
        self.queue_id = queue_id

    def enqueue(self, packet: Packet, now_ns: int) -> bool:
        if not self.shared.admit(self.queue_id, packet.size_bytes):
            self.drops += 1
            packet.dropped = True
            return False
        return super().enqueue(packet, now_ns)

    def dequeue(self, now_ns: int) -> Packet:
        packet = super().dequeue(now_ns)
        self.shared.release(self.queue_id, packet.size_bytes)
        return packet
