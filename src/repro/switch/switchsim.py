"""The event-driven switch simulator.

``Switch`` wires together the ingress step (port selection), the traffic
manager (per-port queues + schedulers), and the egress pipeline hooks, and
drives everything off a single deterministic :class:`EventQueue`.

The paper's evaluation topology — two senders over 40 Gbps links funnelling
into a 10 Gbps receiver link — is reproduced simply by generating an
arrival process whose offered load exceeds the 10 Gbps egress capacity;
ingress links are not a bottleneck there, so they are not modelled
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.errors import SimulationError
from repro.obs.metrics import Metrics
from repro.switch.events import EventQueue
from repro.switch.packet import Packet
from repro.switch.port import EgressPort
from repro.units import DEFAULT_LINK_RATE_BPS


@dataclass
class SwitchStats:
    """Aggregate counters over a simulation run."""

    rx_packets: int = 0
    tx_packets: int = 0
    drops: int = 0
    tx_bytes: int = 0
    last_event_ns: int = 0
    per_port_tx: Dict[int, int] = field(default_factory=dict)


class Switch:
    """A single-switch simulator with per-port egress queues.

    Parameters
    ----------
    ports:
        The egress ports.  Packets are steered by ``classifier`` or, by
        default, to the packet's ``egress_spec`` if preset, else port 0.
    classifier:
        Optional ingress function mapping a packet to an egress port id.
    """

    def __init__(
        self,
        ports: Iterable[EgressPort],
        classifier: Optional[Callable[[Packet], int]] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.ports: Dict[int, EgressPort] = {}
        for port in ports:
            if port.port_id in self.ports:
                raise ValueError(f"duplicate port id {port.port_id}")
            self.ports[port.port_id] = port
        if not self.ports:
            raise ValueError("switch needs at least one port")
        self.classifier = classifier
        self.events = EventQueue()
        self.stats = SwitchStats()
        #: repro.obs registry owned by the switch; run() publishes the
        #: aggregate rx/tx/drop gauges into it after every drive.
        self.metrics = metrics if metrics is not None else Metrics()

    @classmethod
    def single_port(
        cls,
        rate_bps: int = DEFAULT_LINK_RATE_BPS,
        port: Optional[EgressPort] = None,
    ) -> "Switch":
        """Convenience constructor for the paper's single-bottleneck setup."""
        return cls([port or EgressPort(0, rate_bps)])

    def port(self, port_id: int = 0) -> EgressPort:
        return self.ports[port_id]

    # -- driving the simulation -----------------------------------------

    def inject(self, packet: Packet) -> None:
        """Schedule a packet's arrival at its ``arrival_ns``."""
        self.events.schedule(packet.arrival_ns, lambda: self._ingress(packet))

    def inject_all(self, packets: Iterable[Packet]) -> int:
        """Inject a batch of packets; returns the number injected."""
        count = 0
        for packet in packets:
            self.inject(packet)
            count += 1
        return count

    def _ingress(self, packet: Packet) -> None:
        self.stats.rx_packets += 1
        if self.classifier is not None:
            port_id = self.classifier(packet)
        elif packet.egress_spec is not None:
            port_id = packet.egress_spec
        else:
            port_id = next(iter(self.ports))
        port = self.ports.get(port_id)
        if port is None:
            raise SimulationError(f"classifier chose unknown port {port_id}")
        if not port.receive(packet, packet.arrival_ns, self.events):
            self.stats.drops += 1

    def run(self, until_ns: Optional[int] = None) -> SwitchStats:
        """Run injected traffic to completion (or up to ``until_ns``)."""
        if until_ns is None:
            last = self.events.run_all()
        else:
            last = self.events.run_until(until_ns)
        self.stats.last_event_ns = max(self.stats.last_event_ns, last)
        self.stats.tx_packets = sum(p.tx_packets for p in self.ports.values())
        self.stats.tx_bytes = sum(p.tx_bytes for p in self.ports.values())
        self.stats.per_port_tx = {
            pid: p.tx_packets for pid, p in self.ports.items()
        }
        self._publish_metrics()
        return self.stats

    def _publish_metrics(self) -> None:
        m = self.metrics
        m.gauge("switch_rx_packets").set(self.stats.rx_packets)
        m.gauge("switch_tx_packets").set(self.stats.tx_packets)
        m.gauge("switch_tx_bytes").set(self.stats.tx_bytes)
        m.gauge("switch_drops").set(self.stats.drops)
        m.gauge("switch_last_event_ns").set(self.stats.last_event_ns)
        for pid, tx in self.stats.per_port_tx.items():
            m.gauge("switch_port_tx_packets", port=str(pid)).set(tx)

    def run_trace(self, packets: Iterable[Packet]) -> SwitchStats:
        """Inject an entire trace then run it to completion."""
        self.inject_all(packets)
        return self.run()
