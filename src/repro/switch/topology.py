"""Multi-switch topologies: wiring switches into a network.

PrintQueue is a per-switch system, but performance diagnosis questions
("which hop delayed this packet, and who was there?") are network-level.
This module connects :class:`~repro.switch.switchsim.Switch` instances
over propagation-delay links on one shared event clock, so a packet can
traverse leaf -> spine -> leaf with PrintQueue active on every egress
port it crosses.

A packet is *re-materialized* at each hop (fresh metadata per queue, as
on real hardware), while a :class:`PathRecorder` keeps the per-hop
records stitched together by packet identity for end-to-end analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, SimulationError
from repro.switch.events import EventQueue
from repro.switch.packet import FlowKey, Packet, ipv4_octet
from repro.switch.port import EgressPort
from repro.switch.switchsim import Switch


@dataclass(frozen=True)
class HopRecord:
    """One hop's queueing metadata for one packet."""

    node: str
    port_id: int
    enq_timestamp: int
    deq_timestamp: int
    enq_qdepth: int

    @property
    def queuing_delay(self) -> int:
        return self.deq_timestamp - self.enq_timestamp


@dataclass
class PathTrace:
    """All hops one packet traversed, in order."""

    flow: FlowKey
    seq: int
    hops: List[HopRecord] = field(default_factory=list)

    @property
    def total_queuing(self) -> int:
        return sum(h.queuing_delay for h in self.hops)

    def worst_hop(self) -> HopRecord:
        if not self.hops:
            raise SimulationError("packet has not traversed any hop")
        return max(self.hops, key=lambda h: h.queuing_delay)


class Network:
    """Switches + links on a single event clock.

    Nodes are added with :meth:`add_switch`; a link attaches an egress
    port of one node to another node's ingress (with propagation delay).
    Ports without a link are network egress (hosts); packets leaving
    them are complete.
    """

    def __init__(self) -> None:
        self.events = EventQueue()
        self.nodes: Dict[str, Switch] = {}
        #: (node, port_id) -> (next_node, propagation_ns)
        self._links: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._forwarders: Dict[str, Callable[[Packet], int]] = {}
        self._path_recorder: Optional["PathRecorder"] = None
        self.delivered: List[Packet] = []

    # -- construction -----------------------------------------------------

    def add_switch(
        self,
        name: str,
        ports: Sequence[EgressPort],
        forwarder: Callable[[Packet], int],
    ) -> Switch:
        """Add a node; ``forwarder(packet) -> egress port id`` routes it."""
        if name in self.nodes:
            raise ConfigError(f"duplicate node {name!r}")
        switch = Switch(ports, classifier=forwarder)
        # All nodes share one clock: replace the private event queue.
        switch.events = self.events
        self.nodes[name] = switch
        self._forwarders[name] = forwarder
        for port in ports:
            port.add_egress_hook(self._make_egress_hook(name, port))
        return switch

    def link(
        self, node: str, port_id: int, next_node: str, propagation_ns: int = 1000
    ) -> None:
        """Attach ``node``'s egress ``port_id`` to ``next_node``'s ingress."""
        if node not in self.nodes or next_node not in self.nodes:
            raise ConfigError("both endpoints must be added first")
        if port_id not in self.nodes[node].ports:
            raise ConfigError(f"{node} has no port {port_id}")
        if propagation_ns < 0:
            raise ConfigError(f"negative propagation: {propagation_ns}")
        self._links[(node, port_id)] = (next_node, propagation_ns)

    def record_paths(self) -> "PathRecorder":
        """Enable per-packet path stitching; returns the recorder."""
        if self._path_recorder is None:
            self._path_recorder = PathRecorder()
        return self._path_recorder

    # -- data path ------------------------------------------------------------

    def _make_egress_hook(self, name: str, port: EgressPort):
        def hook(packet: Packet) -> None:
            if self._path_recorder is not None:
                self._path_recorder.on_hop(name, port.port_id, packet)
            destination = self._links.get((name, port.port_id))
            if destination is None:
                self.delivered.append(packet)
                return
            next_node, propagation = destination
            arrival = packet.deq_timestamp + propagation
            # Re-materialize: fresh metadata for the next hop's queue.
            next_hop = Packet(
                packet.flow,
                packet.size_bytes,
                arrival,
                priority=packet.priority,
                seq=packet.seq,
            )
            self.events.schedule(
                arrival, lambda p=next_hop: self._ingress_at(next_node, p)
            )

        return hook

    def _ingress_at(self, node: str, packet: Packet) -> None:
        self.nodes[node]._ingress(packet)

    def inject(self, node: str, packet: Packet) -> None:
        """Schedule a packet's first-hop arrival at ``node``."""
        if node not in self.nodes:
            raise ConfigError(f"unknown node {node!r}")
        self.events.schedule(
            packet.arrival_ns, lambda: self._ingress_at(node, packet)
        )

    def run(self, until_ns: Optional[int] = None) -> int:
        """Run the whole network to completion; returns the last time."""
        if until_ns is None:
            return self.events.run_all()
        return self.events.run_until(until_ns)


class PathRecorder:
    """Stitches per-hop records into per-packet path traces."""

    def __init__(self) -> None:
        self._paths: Dict[Tuple[int, int], PathTrace] = {}

    def on_hop(self, node: str, port_id: int, packet: Packet) -> None:
        key = (packet.flow_id, packet.seq)
        trace = self._paths.get(key)
        if trace is None:
            trace = PathTrace(flow=packet.flow, seq=packet.seq)
            self._paths[key] = trace
        assert packet.enq_timestamp is not None
        assert packet.enq_qdepth is not None
        trace.hops.append(
            HopRecord(
                node=node,
                port_id=port_id,
                enq_timestamp=packet.enq_timestamp,
                deq_timestamp=packet.deq_timestamp,
                enq_qdepth=packet.enq_qdepth,
            )
        )

    def paths(self) -> List[PathTrace]:
        return list(self._paths.values())

    def path_of(self, packet: Packet) -> Optional[PathTrace]:
        return self._paths.get((packet.flow_id, packet.seq))


def build_leaf_spine(
    num_leaves: int = 2,
    rate_bps: int = 10_000_000_000,
    propagation_ns: int = 1000,
    host_port: int = 0,
    up_port: int = 1,
) -> Tuple[Network, Dict[str, Switch]]:
    """A minimal leaf-spine fabric: N leaves, one spine.

    Each leaf has a host-facing port (``host_port``) and an uplink
    (``up_port``); the spine has one downlink port per leaf (port ``i``
    faces ``leaf<i>``).  Routing: at a leaf, traffic for a local
    destination (matching the leaf's subnet octet) exits the host port,
    everything else goes up; the spine forwards by destination subnet.

    Convention: a flow with ``dst_ip`` in ``10.<l>.x.y`` belongs to
    ``leaf<l>``.
    """
    if num_leaves < 2:
        raise ConfigError("leaf-spine needs at least two leaves")
    network = Network()

    def leaf_forwarder(leaf_index: int) -> Callable[[Packet], int]:
        def forward(packet: Packet) -> int:
            destination_leaf = ipv4_octet(packet.flow.dst_ip, 1)
            return host_port if destination_leaf == leaf_index else up_port

        return forward

    def spine_forwarder(packet: Packet) -> int:
        return ipv4_octet(packet.flow.dst_ip, 1)

    spine_ports = [EgressPort(i, rate_bps) for i in range(num_leaves)]
    network.add_switch("spine", spine_ports, spine_forwarder)

    nodes = {"spine": network.nodes["spine"]}
    for i in range(num_leaves):
        name = f"leaf{i}"
        ports = [EgressPort(host_port, rate_bps), EgressPort(up_port, rate_bps)]
        network.add_switch(name, ports, leaf_forwarder(i))
        network.link(name, up_port, "spine", propagation_ns)
        network.link("spine", i, name, propagation_ns)
        nodes[name] = network.nodes[name]
    return network, nodes
