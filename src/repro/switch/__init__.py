"""Simulated programmable switch substrate.

This package replaces the Intel Tofino testbed of the paper with an
event-driven, single-switch simulator that produces exactly the metadata
PrintQueue consumes (Table 1 of the paper): ``egress_spec``,
``enq_timestamp``, ``deq_timedelta``, and ``enq_qdepth``.

Public entry points:

* :class:`~repro.switch.packet.Packet` / :class:`~repro.switch.packet.FlowKey`
* :class:`~repro.switch.switchsim.Switch` — the event-driven simulator
* :class:`~repro.switch.telemetry.GroundTruthRecorder` — lossless dequeue log
* :func:`~repro.switch.fastpath.fifo_timestamps` — vectorised FIFO fast path
* :class:`~repro.switch.records.RecordBatch` — the columnar dequeue log
  (one structured record array) consumed by the fused ingest tier
"""

from repro.switch.packet import FlowKey, Packet, PROTO_TCP, PROTO_UDP
from repro.switch.queue import EgressQueue, QueueSample
from repro.switch.scheduler import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    Scheduler,
    StrictPriorityScheduler,
)
from repro.switch.buffer import BufferedQueue, SharedBuffer
from repro.switch.port import EgressPort
from repro.switch.switchsim import Switch, SwitchStats
from repro.switch.telemetry import DequeueRecord, GroundTruthRecorder, TelemetryHeader
from repro.switch.fastpath import fifo_record_batch, fifo_timestamps
from repro.switch.records import (
    PACKET_RECORD_DTYPE,
    FlowColumn,
    RecordBatch,
    as_record_batch,
)

__all__ = [
    "FlowKey",
    "Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "EgressQueue",
    "QueueSample",
    "Scheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "DeficitRoundRobinScheduler",
    "EgressPort",
    "SharedBuffer",
    "BufferedQueue",
    "Switch",
    "SwitchStats",
    "TelemetryHeader",
    "DequeueRecord",
    "GroundTruthRecorder",
    "fifo_timestamps",
    "fifo_record_batch",
    "PACKET_RECORD_DTYPE",
    "FlowColumn",
    "RecordBatch",
    "as_record_batch",
]
