"""Structured packet-record arrays (the fused ingest tier's carrier).

A dequeue log can be carried two ways: as a list of
:class:`~repro.switch.telemetry.DequeueRecord` objects (the scalar and
batched tiers), or as one structured numpy array of
:data:`PACKET_RECORD_DTYPE` plus a flow table (:class:`RecordBatch`, the
fused tier).  The structured form never materialises a per-packet Python
object: flow identity is an ``int`` index into the table, and every
timestamp/size/depth column is a zero-copy view over the array.

:class:`RecordBatch` is a ``Sequence[DequeueRecord]`` — indexing lazily
materialises the equivalent record object — so every consumer of a
dequeue log (the culprit taxonomy, victim sampling, baselines, data-plane
triggers) works on either carrier unchanged.

:class:`FlowColumn` is the lazy ``table[idx[i]]`` view the batch kernels
see: array/slice indexing narrows the view without touching Python
objects; integer indexing resolves the actual :class:`FlowKey`.  Kernels
that understand flow *indices* (the fused time-window set, the
Algorithm-3 filter) read ``.idx``/``.table`` directly and skip object
resolution entirely.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union, overload

import numpy as np

from repro.switch.fastpath import FifoResult
from repro.switch.packet import FlowKey
from repro.switch.telemetry import DequeueRecord

#: One dequeued packet, as the fused ingest tier carries it.  ``flow`` is
#: an index into the batch's flow table; timestamps are nanoseconds.
#: ``align=True`` pads the itemsize to 8 so the int64 columns stay
#: aligned for vectorised access.
PACKET_RECORD_DTYPE = np.dtype(
    [
        ("enq_ts", "<i8"),
        ("deq_ts", "<i8"),
        ("enq_qdepth", "<i4"),
        ("size", "<i4"),
        ("flow", "<i4"),
        ("priority", "<i4"),
    ],
    align=True,
)


class FlowColumn(Sequence[FlowKey]):
    """Lazy ``table[idx[i]]`` view over a flow-index column.

    Array/slice indexing narrows the view (no objects touched); integer
    indexing resolves the :class:`FlowKey`.  Kernels that work on flow
    *indices* natively (``repro.engine.fused``) read ``idx`` and
    ``table`` directly.
    """

    __slots__ = ("table", "idx", "_table_arr")

    def __init__(
        self,
        table: Sequence[FlowKey],
        idx: np.ndarray,
        _table_arr: Optional[np.ndarray] = None,
    ) -> None:
        self.table = table
        self.idx = idx
        self._table_arr = _table_arr

    def __len__(self) -> int:
        return len(self.idx)

    def gather(self, pos: np.ndarray) -> np.ndarray:
        """``table[idx[pos]]`` as one object-array gather, no construction.

        The table's :class:`FlowKey` objects already exist; a cached
        object ndarray of the table turns survivor materialisation into
        a pointer gather instead of a Python loop.  The cache survives
        view narrowing (the table is shared, not copied).
        """
        table_arr = self._table_arr
        if table_arr is None:
            table_arr = np.empty(len(self.table), dtype=object)
            table_arr[:] = self.table
            self._table_arr = table_arr
        return table_arr[self.idx[pos]]

    @overload
    def __getitem__(self, i: int) -> FlowKey: ...

    @overload
    def __getitem__(self, i: "Union[slice, np.ndarray]") -> "FlowColumn": ...

    def __getitem__(
        self, i: "Union[int, slice, np.ndarray]"
    ) -> "Union[FlowKey, FlowColumn]":
        if isinstance(i, (np.ndarray, slice)):
            return FlowColumn(self.table, self.idx[i], self._table_arr)
        return self.table[int(self.idx[i])]

    def __iter__(self) -> Iterator[FlowKey]:
        table = self.table
        for j in self.idx.tolist():
            yield table[j]


class RecordBatch(Sequence[DequeueRecord]):
    """A dequeue log as one structured array plus a flow table.

    ``data`` has :data:`PACKET_RECORD_DTYPE` and is ordered by dequeue
    time (the order :func:`repro.switch.fastpath.fifo_timestamps`
    produces).  The batch is a ``Sequence[DequeueRecord]``: integer
    indexing materialises the equivalent record object on demand, so the
    object-based consumers (taxonomy, sampling, triggers) need no
    changes; the fused ingest tier reads the columns directly and never
    materialises one.
    """

    __slots__ = ("data", "flows")

    def __init__(self, data: np.ndarray, flows: Sequence[FlowKey]) -> None:
        if data.dtype != PACKET_RECORD_DTYPE:
            raise ValueError(
                f"expected PACKET_RECORD_DTYPE, got {data.dtype}"
            )
        self.data = data
        self.flows = list(flows)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_fifo(
        cls,
        result: FifoResult,
        flow_index: np.ndarray,
        size_bytes: np.ndarray,
        flows: Sequence[FlowKey],
        priority: Optional[np.ndarray] = None,
    ) -> "RecordBatch":
        """Build a batch from the FIFO fast path's arrays, zero objects.

        ``flow_index``/``size_bytes`` must already be narrowed to the
        kept packets (``trace.flow_index[result.kept]``).  ``priority``
        defaults to 0, matching the single-class FIFO path.
        """
        n = len(result.kept)
        data = np.empty(n, dtype=PACKET_RECORD_DTYPE)
        data["enq_ts"] = result.enq_timestamp
        data["deq_ts"] = result.deq_timestamp
        data["enq_qdepth"] = result.enq_qdepth
        data["size"] = size_bytes
        data["flow"] = flow_index
        data["priority"] = 0 if priority is None else priority
        return cls(data, flows)

    @classmethod
    def from_records(cls, records: Sequence[DequeueRecord]) -> "RecordBatch":
        """Intern a record-object log into the structured form."""
        n = len(records)
        data = np.empty(n, dtype=PACKET_RECORD_DTYPE)
        table: List[FlowKey] = []
        index_of: dict = {}
        for i, r in enumerate(records):
            fid = index_of.get(r.flow)
            if fid is None:
                fid = len(table)
                index_of[r.flow] = fid
                table.append(r.flow)
            row = data[i]
            row["enq_ts"] = r.enq_timestamp
            row["deq_ts"] = r.deq_timestamp
            row["enq_qdepth"] = r.enq_qdepth
            row["size"] = r.size_bytes
            row["flow"] = fid
            row["priority"] = r.priority
        return cls(data, table)

    # -- columnar views ----------------------------------------------------

    @property
    def enq_timestamp(self) -> np.ndarray:
        """Enqueue timestamps (ns), int64, dequeue order."""
        return self.data["enq_ts"]

    @property
    def deq_timestamp(self) -> np.ndarray:
        """Dequeue timestamps (ns), int64, nondecreasing."""
        return self.data["deq_ts"]

    @property
    def enq_qdepth(self) -> np.ndarray:
        """Queue depth seen at enqueue, int32."""
        return self.data["enq_qdepth"]

    @property
    def size_bytes(self) -> np.ndarray:
        """On-wire packet sizes, int32."""
        return self.data["size"]

    @property
    def flow_index(self) -> np.ndarray:
        """Per-packet indices into :attr:`flows`, int32."""
        return self.data["flow"]

    def flow_column(self) -> FlowColumn:
        """Lazy per-packet :class:`FlowKey` view (no objects touched)."""
        return FlowColumn(self.flows, self.data["flow"])

    # -- Sequence[DequeueRecord] -------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def _materialise(self, i: int) -> DequeueRecord:
        row = self.data[i]
        return DequeueRecord(
            flow=self.flows[int(row["flow"])],
            size_bytes=int(row["size"]),
            enq_timestamp=int(row["enq_ts"]),
            deq_timestamp=int(row["deq_ts"]),
            enq_qdepth=int(row["enq_qdepth"]),
            priority=int(row["priority"]),
        )

    @overload
    def __getitem__(self, i: int) -> DequeueRecord: ...

    @overload
    def __getitem__(self, i: slice) -> "RecordBatch": ...

    def __getitem__(
        self, i: "Union[int, slice]"
    ) -> "Union[DequeueRecord, RecordBatch]":
        if isinstance(i, slice):
            return RecordBatch(self.data[i], self.flows)
        return self._materialise(int(i))

    def __iter__(self) -> Iterator[DequeueRecord]:
        for i in range(len(self.data)):
            yield self._materialise(i)

    def to_records(self) -> List[DequeueRecord]:
        """Materialise the whole log as record objects (tests, interop)."""
        return list(self)


def as_record_batch(records: Sequence[DequeueRecord]) -> RecordBatch:
    """Coerce any dequeue log to a :class:`RecordBatch` (no-op if one)."""
    if isinstance(records, RecordBatch):
        return records
    return RecordBatch.from_records(records)
