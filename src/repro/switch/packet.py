"""Packet and flow-identity model.

PrintQueue identifies culprit flows by the classic 5-tuple (source and
destination IPv4 addresses, transport ports, protocol).  The data-plane
structures additionally need a compact integer form of the flow ID for
register storage and for XOR-based baselines (FlowRadar), which
:meth:`FlowKey.flow_id` provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

PROTO_TCP = 6
PROTO_UDP = 17

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash; deterministic across runs (unlike ``hash``)."""
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


@dataclass(frozen=True)
class FlowKey:
    """An immutable 5-tuple flow identity.

    Addresses are stored as 32-bit integers; use :meth:`from_strings` for
    the dotted-quad convenience constructor.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_TCP

    def __post_init__(self) -> None:
        for name in ("src_ip", "dst_ip"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"{name} out of IPv4 range: {value}")
        for name in ("src_port", "dst_port"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} out of range: {value}")
        if not 0 <= self.proto <= 0xFF:
            raise ValueError(f"proto out of range: {self.proto}")

    @classmethod
    def from_strings(
        cls,
        src_ip: str,
        dst_ip: str,
        src_port: int,
        dst_port: int,
        proto: int = PROTO_TCP,
    ) -> "FlowKey":
        """Build a key from dotted-quad address strings."""
        return cls(_parse_ipv4(src_ip), _parse_ipv4(dst_ip), src_port, dst_port, proto)

    def sort_key(self) -> Tuple[int, int, int, int, int]:
        """Total order over 5-tuples, for deterministic tie-breaking.

        String-formatting a key gives a lexicographic order that differs
        from the numeric one ("10." < "2."); ranked outputs sort ties on
        this tuple instead so results are stable across runs and paths.
        """
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)

    def to_bytes(self) -> bytes:
        """Canonical 13-byte wire encoding of the 5-tuple."""
        return (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.proto.to_bytes(1, "big")
        )

    def flow_id(self) -> int:
        """A deterministic 64-bit integer flow ID derived from the 5-tuple.

        Used as the register-resident representation of the flow and as the
        XOR-able identity in FlowRadar's encoded flowsets.
        """
        return _fnv1a_64(self.to_bytes())

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)

    def __str__(self) -> str:
        return (
            f"{_format_ipv4(self.src_ip)}:{self.src_port}->"
            f"{_format_ipv4(self.dst_ip)}:{self.dst_port}/{self.proto}"
        )


#: Dotted-quad field geometry — the declared width every IPv4 shift and
#: mask below derives from (PQ002: no inline magic widths).
OCTET_BITS = 8
OCTET_MASK = (1 << OCTET_BITS) - 1


def ipv4_octet(value: int, index: int) -> int:
    """Octet ``index`` (0 = most significant) of a packed IPv4 address."""
    return (value >> ((3 - index) * OCTET_BITS)) & OCTET_MASK


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= OCTET_MASK:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << OCTET_BITS) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str(ipv4_octet(value, i)) for i in range(4))


@dataclass
class Packet:
    """A simulated packet together with its queueing metadata.

    The four metadata fields of the paper's Table 1 are populated by the
    switch simulator as the packet traverses the traffic manager:

    * ``egress_spec`` — output port (set at ingress),
    * ``enq_timestamp`` — enqueue time in ns,
    * ``deq_timedelta`` — time spent in the queue in ns,
    * ``enq_qdepth`` — queue depth observed at enqueue.
    """

    flow: FlowKey
    size_bytes: int
    arrival_ns: int
    priority: int = 0
    seq: int = 0

    # Table-1 metadata, filled in by the simulator.
    egress_spec: Optional[int] = None
    enq_timestamp: Optional[int] = None
    deq_timedelta: Optional[int] = None
    enq_qdepth: Optional[int] = None
    deq_qdepth: Optional[int] = None
    dropped: bool = False

    # Cached flow_id; computed lazily because victim-only paths never need it.
    _flow_id: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"non-positive packet size: {self.size_bytes}")
        if self.arrival_ns < 0:
            raise ValueError(f"negative arrival time: {self.arrival_ns}")

    @property
    def flow_id(self) -> int:
        """64-bit integer flow ID (cached)."""
        if self._flow_id is None:
            self._flow_id = self.flow.flow_id()
        return self._flow_id

    @property
    def deq_timestamp(self) -> int:
        """Dequeue time = ``enq_timestamp + deq_timedelta`` (Section 4.2)."""
        if self.enq_timestamp is None or self.deq_timedelta is None:
            raise ValueError("packet has not been dequeued yet")
        return self.enq_timestamp + self.deq_timedelta

    @property
    def queued(self) -> bool:
        """True once the packet has passed through a queue."""
        return self.deq_timedelta is not None
