"""An egress port: scheduler + line-rate transmitter.

The port drains its scheduler at the configured line rate using exact
picosecond accounting.  Each dequeue stamps the packet's queueing metadata
and hands it to an optional egress-pipeline hook — this hook is where
PrintQueue's time windows and queue monitor live, mirroring the egress
pipeline placement of Figure 3.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.switch.events import EventQueue
from repro.switch.packet import Packet
from repro.switch.queue import EgressQueue
from repro.switch.scheduler import FifoScheduler, Scheduler
from repro.units import PS_PER_NS, tx_delay_ps

EgressHook = Callable[[Packet], None]
EnqueueHook = Callable[[Packet], None]


class EgressPort:
    """A single output port with line-rate drain and pipeline hooks."""

    def __init__(
        self,
        port_id: int,
        rate_bps: int,
        scheduler: Optional[Scheduler] = None,
        queue: Optional[EgressQueue] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"non-positive rate: {rate_bps}")
        if scheduler is not None and queue is not None:
            raise ValueError("pass either a scheduler or a queue, not both")
        self.port_id = port_id
        self.rate_bps = rate_bps
        if scheduler is None:
            # Explicit None checks: an empty EgressQueue is falsy (len 0),
            # so `queue or EgressQueue()` would silently drop it.
            scheduler = FifoScheduler(EgressQueue() if queue is None else queue)
        self.scheduler = scheduler
        self.egress_hooks: List[EgressHook] = []
        self.enqueue_hooks: List[EnqueueHook] = []
        self.tx_packets = 0
        self.tx_bytes = 0
        # Exact transmitter state: next instant (ps) the wire is free.
        self._wire_free_ps = 0
        self._busy = False

    # -- configuration -------------------------------------------------

    def add_egress_hook(self, hook: EgressHook) -> None:
        """Run ``hook(packet)`` on every dequeued packet (egress pipeline)."""
        self.egress_hooks.append(hook)

    def add_enqueue_hook(self, hook: EnqueueHook) -> None:
        """Run ``hook(packet)`` right after every successful enqueue."""
        self.enqueue_hooks.append(hook)

    # -- data path -------------------------------------------------------

    def receive(self, packet: Packet, now_ns: int, events: EventQueue) -> bool:
        """Enqueue a packet arriving from the ingress pipeline.

        Returns False if the packet was tail-dropped.
        """
        packet.egress_spec = self.port_id
        queue = self.scheduler.queue_for(packet)
        if not queue.enqueue(packet, now_ns):
            return False
        for hook in self.enqueue_hooks:
            hook(packet)
        if not self._busy:
            self._busy = True
            self._schedule_next(now_ns, events)
        return True

    def _schedule_next(self, now_ns: int, events: EventQueue) -> None:
        start_ps = max(now_ns * PS_PER_NS, self._wire_free_ps)
        start_ns = -(-start_ps // PS_PER_NS)  # ceil to the ns clock tick
        events.schedule(start_ns, lambda: self._transmit(start_ns, events))

    def _transmit(self, now_ns: int, events: EventQueue) -> None:
        queue = self.scheduler.select()
        if queue is None:
            self._busy = False
            return
        packet = queue.dequeue(now_ns)
        if packet.egress_spec != self.port_id:
            raise SimulationError("packet drained from the wrong port")
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        self._wire_free_ps = now_ns * PS_PER_NS + tx_delay_ps(
            packet.size_bytes, self.rate_bps
        )
        for hook in self.egress_hooks:
            hook(packet)
        if self.scheduler.empty:
            self._busy = False
        else:
            self._schedule_next(now_ns, events)
