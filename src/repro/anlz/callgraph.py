"""Project-wide symbol table and call graph for the PQ1xx rule family.

The file rules (PQ001–PQ005) reason about one module at a time; the
concurrency rules (PQ101–PQ105) need to know *what calls what* across
the whole tree: a blocking call three modules away from an ``async def``
is exactly as wrong as one inside it.  :func:`build_project_index`
parses every module's AST once into a :class:`ProjectIndex` — functions
and classes by qualified name, import aliases, class fields with
best-effort types, and a call graph — which the rules then traverse.

Resolution is deliberately *static and conservative*: a call edge is
added only when the target resolves to a project symbol through one of
the shapes the codebase actually uses —

* plain and aliased imports (``import x as y``, ``from a.b import c``);
* module-level functions and class constructors by name;
* methods through the class: ``self.method()``, ``obj.method()`` where
  ``obj``'s class is known from a parameter annotation, a local
  ``obj = ClassName(...)`` assignment, an annotated ``self.attr``, or a
  project function's return annotation (single-inheritance MRO walk);
* ``functools.partial(f, ...)`` — the edge goes to ``f`` (the sharded
  engine submits partials of module-level workers);
* function *references* passed as call arguments (``pool.submit(f, …)``).

Anything the resolver cannot see (duck-typed ``object`` parameters,
dynamic dispatch, ``getattr``) simply contributes no edge, so the
analysis errs on the quiet side.  pqlint never imports the code it
checks; everything here is a pure function of the ASTs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.anlz.model import SourceModule

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
    "SubmitSite",
    "TypeRef",
    "build_project_index",
    "dotted_name",
    "walk_shallow",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Containers whose subscripted annotation names an element type.
_SEQUENCE_GENERICS = frozenset(
    {"List", "Sequence", "Iterable", "Tuple", "Set", "FrozenSet", "Deque", "list", "tuple", "set", "frozenset"}
)

#: Builtins that preserve the element type of their argument.
_SEQUENCE_BUILTINS = frozenset({"list", "tuple", "sorted", "set", "frozenset", "reversed"})


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Nested ``def``/``async def``/``class`` bodies belong to their own
    :class:`FunctionInfo`; statements inside them must not be attributed
    to the enclosing function.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))


@dataclass(frozen=True)
class TypeRef:
    """A best-effort static type: a class qualname and/or an element type."""

    qualname: Optional[str] = None
    elem: Optional["TypeRef"] = None


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str
    module: SourceModule
    node: _FunctionNode
    class_name: Optional[str] = None
    is_async: bool = False
    is_nested: bool = False
    is_generator: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def short(self) -> str:
        """``path.py::Class.method`` — the human-facing site name."""
        suffix = self.name if self.class_name is None else f"{self.class_name}.{self.name}"
        return f"{self.module.rel_path}::{suffix}"


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, and typed fields."""

    qualname: str
    name: str
    module: SourceModule
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> best-effort type (annotation beats inference).
    field_types: Dict[str, TypeRef] = field(default_factory=dict)
    #: attribute name -> canonical dotted call that produced the value
    #: (``self.x = threading.Lock()`` records ``threading.Lock``).
    field_value_calls: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> the AST node that declared it (finding anchor).
    field_sites: Dict[str, ast.AST] = field(default_factory=dict)
    slots: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call (or function reference) site."""

    callee: str
    node: ast.AST
    #: "call" for invocations, "ref" for references passed as arguments.
    kind: str = "call"


@dataclass
class SubmitSite:
    """One ``<pool>.submit(fn, *args)`` site, for the pool-boundary rules."""

    caller: FunctionInfo
    node: ast.Call
    module: SourceModule


class _ModuleScope:
    """Per-module name resolution: import aliases + top-level symbols."""

    def __init__(self, module: SourceModule, names: List[str]) -> None:
        self.module = module
        #: dotted names this module is importable as (primary last).
        self.names = names
        self.aliases: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    @property
    def primary(self) -> str:
        return self.names[-1]

    def canonical(self, dotted: str) -> str:
        """Map a local dotted name through the import aliases."""
        head, _, rest = dotted.partition(".")
        canonical = self.aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical


def _module_names(module: SourceModule) -> List[str]:
    """Dotted names a module is addressable by, primary (root-prefixed) last.

    ``service/server.py`` under a root directory named ``repro`` yields
    ``["service.server", "repro.service.server"]`` so both fixture-style
    (``from service.server import …``) and installed-package imports
    (``from repro.service.server import …``) resolve.
    """
    parts = list(module.segments)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]  # strip .py
    root_dir = module.path
    for _ in module.segments:
        root_dir = root_dir.parent
    names: List[str] = []
    if parts:
        names.append(".".join(parts))
    root_name = root_dir.name
    if root_name and root_name.isidentifier():
        names.append(".".join([root_name, *parts]) if parts else root_name)
    return names or [module.rel_path]


class ProjectIndex:
    """Everything the cross-file rules need, built once per engine run."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self._scopes: Dict[int, _ModuleScope] = {}
        #: dotted module name (any alias) -> scope.
        self._module_by_name: Dict[str, _ModuleScope] = {}
        #: primary qualname -> info.
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: any alias qualname -> primary qualname, tagged by kind.
        self._fn_alias: Dict[str, str] = {}
        self._cls_alias: Dict[str, str] = {}
        #: caller primary qualname -> resolved edges.
        self.calls: Dict[str, List[CallEdge]] = {}
        self.submit_sites: List[SubmitSite] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for module in self.modules:
            scope = _ModuleScope(module, _module_names(module))
            self._scopes[id(module)] = scope
            for name in scope.names:
                self._module_by_name[name] = scope
            self._collect_symbols(scope)
        for cls in self.classes.values():
            self._resolve_bases(cls)
        for cls in self.classes.values():
            self._collect_fields(cls)
        for info in list(self.functions.values()):
            self._collect_edges(info)

    def _collect_symbols(self, scope: _ModuleScope) -> None:
        module = scope.module

        def register_function(
            node: _FunctionNode,
            qualname: str,
            class_name: Optional[str],
            nested: bool,
        ) -> FunctionInfo:
            info = FunctionInfo(
                qualname=qualname,
                module=module,
                node=node,
                class_name=class_name,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                is_nested=nested,
                is_generator=any(
                    isinstance(n, (ast.Yield, ast.YieldFrom))
                    for n in walk_shallow(node)
                ),
            )
            self.functions[qualname] = info
            for nested_def in walk_shallow(node):
                if isinstance(nested_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    register_function(
                        nested_def,
                        f"{qualname}.<locals>.{nested_def.name}",
                        class_name,
                        True,
                    )
            return info

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = register_function(
                    node, f"{scope.primary}.{node.name}", None, False
                )
                scope.functions[node.name] = info
                for alias_mod in scope.names:
                    self._fn_alias[f"{alias_mod}.{node.name}"] = info.qualname
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{scope.primary}.{node.name}"
                cls = ClassInfo(
                    qualname=cls_qual, name=node.name, module=module, node=node
                )
                for base in node.bases:
                    base_dotted = dotted_name(base)
                    if base_dotted is not None:
                        cls.base_names.append(scope.canonical(base_dotted))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = register_function(
                            item, f"{cls_qual}.{item.name}", node.name, False
                        )
                        cls.methods[item.name] = method
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        cls.field_types[item.target.id] = self._annotation_type(
                            scope, item.annotation
                        )
                        cls.field_sites.setdefault(item.target.id, item)
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if (
                                isinstance(target, ast.Name)
                                and target.id == "__slots__"
                            ):
                                cls.slots = [
                                    c.value
                                    for c in ast.walk(item.value)
                                    if isinstance(c, ast.Constant)
                                    and isinstance(c.value, str)
                                ]
                self.classes[cls_qual] = cls
                scope.classes[node.name] = cls
                for alias_mod in scope.names:
                    self._cls_alias[f"{alias_mod}.{node.name}"] = cls_qual

    def _resolve_bases(self, cls: ClassInfo) -> None:
        resolved: List[str] = []
        for base in cls.base_names:
            target = self._cls_alias.get(base)
            if target is not None:
                resolved.append(target)
        cls.base_names = resolved

    def mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """The class and its project base classes, nearest first."""
        seen: Set[str] = set()
        stack = [cls.qualname]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            yield info
            stack.extend(info.base_names)

    def method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def field_type(self, cls: ClassInfo, name: str) -> Optional[TypeRef]:
        for klass in self.mro(cls):
            if name in klass.field_types:
                return klass.field_types[name]
        return None

    # -- types -------------------------------------------------------------

    def _annotation_type(self, scope: _ModuleScope, node: ast.AST) -> TypeRef:
        """A :class:`TypeRef` for an annotation expression (best effort)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return TypeRef()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            for side in (node.left, node.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    return self._annotation_type(scope, side)
            return TypeRef()
        if isinstance(node, ast.Subscript):
            head = dotted_name(node.value)
            if head is not None:
                base = head.rsplit(".", 1)[-1]
                inner: ast.AST = node.slice
                if base in ("Optional",):
                    return self._annotation_type(scope, inner)
                if base in _SEQUENCE_GENERICS:
                    if isinstance(inner, ast.Tuple) and inner.elts:
                        inner = inner.elts[0]
                    return TypeRef(elem=self._annotation_type(scope, inner))
            return TypeRef()
        dotted = dotted_name(node)
        if dotted is None:
            return TypeRef()
        canonical = scope.canonical(dotted)
        qual = self._cls_alias.get(canonical)
        if qual is None and "." not in dotted:
            qual = self._cls_alias.get(f"{scope.primary}.{dotted}")
        return TypeRef(qualname=qual)

    def class_of(self, ref: Optional[TypeRef]) -> Optional[ClassInfo]:
        if ref is None or ref.qualname is None:
            return None
        return self.classes.get(ref.qualname)

    # -- field inference ---------------------------------------------------

    def _collect_fields(self, cls: ClassInfo) -> None:
        scope = self._scopes[id(cls.module)]
        for method in cls.methods.values():
            env = self._param_env(scope, method)
            for node in walk_shallow(method.node):
                target: Optional[ast.AST] = None
                value: Optional[ast.AST] = None
                annotation: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                cls.field_sites.setdefault(attr, node)
                if annotation is not None:
                    cls.field_types.setdefault(
                        attr, self._annotation_type(scope, annotation)
                    )
                if value is None:
                    continue
                if isinstance(value, ast.Call):
                    dotted = dotted_name(value.func)
                    if dotted is not None:
                        canonical = scope.canonical(dotted)
                        # Prefer the resolved project-function qualname so
                        # consumers can look the factory up directly.
                        fn_qual = self._fn_alias.get(
                            canonical
                        ) or self._fn_alias.get(f"{scope.primary}.{dotted}")
                        cls.field_value_calls.setdefault(
                            attr, fn_qual or canonical
                        )
                inferred = self._infer(scope, env, value, depth=0)
                if inferred is not None and attr not in cls.field_types:
                    cls.field_types[attr] = inferred

    def _param_env(
        self, scope: _ModuleScope, info: FunctionInfo
    ) -> Dict[str, TypeRef]:
        env: Dict[str, TypeRef] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                env[arg.arg] = self._annotation_type(scope, arg.annotation)
        if info.class_name is not None:
            positional = args.posonlyargs + args.args
            if positional and positional[0].arg == "self":
                owner = self._cls_alias.get(f"{scope.primary}.{info.class_name}")
                env["self"] = TypeRef(qualname=owner)
        # local `name = EXPR` assignments and loop-target element types.
        for node in walk_shallow(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    inferred = self._infer(scope, env, node.value, depth=0)
                    if inferred is not None:
                        env[target.id] = inferred
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_loop_target(scope, env, node.target, node.iter)
        return env

    def _bind_loop_target(
        self,
        scope: _ModuleScope,
        env: Dict[str, TypeRef],
        target: ast.AST,
        source: ast.AST,
    ) -> None:
        """Bind ``for target in source`` element types (zip/enumerate-aware)."""
        if isinstance(source, ast.Call):
            head = dotted_name(source.func)
            if head == "enumerate" and source.args:
                if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                    self._bind_loop_target(
                        scope, env, target.elts[1], source.args[0]
                    )
                return
            if head == "zip" and isinstance(target, ast.Tuple):
                for sub_target, sub_source in zip(target.elts, source.args):
                    self._bind_loop_target(scope, env, sub_target, sub_source)
                return
        if isinstance(target, ast.Name):
            ref = self._infer(scope, env, source, depth=0)
            if ref is not None and ref.elem is not None:
                env.setdefault(target.id, ref.elem)

    def _infer(
        self,
        scope: _ModuleScope,
        env: Dict[str, TypeRef],
        node: ast.AST,
        depth: int,
    ) -> Optional[TypeRef]:
        """Best-effort expression type; None when nothing is known."""
        if depth > 6:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._infer(scope, env, node.value, depth + 1)
            cls = self.class_of(base)
            if cls is not None:
                return self.field_type(cls, node.attr)
            return None
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is not None:
                bare = dotted.rsplit(".", 1)[-1]
                if bare in _SEQUENCE_BUILTINS and node.args:
                    inner = self._infer(scope, env, node.args[0], depth + 1)
                    if inner is not None:
                        return TypeRef(elem=inner.elem)
                canonical = scope.canonical(dotted)
                cls_qual = self._cls_alias.get(canonical) or self._cls_alias.get(
                    f"{scope.primary}.{dotted}"
                )
                if cls_qual is not None:
                    return TypeRef(qualname=cls_qual)
                fn_qual = self._fn_alias.get(canonical) or self._fn_alias.get(
                    f"{scope.primary}.{dotted}"
                )
                if fn_qual is not None:
                    fn = self.functions[fn_qual]
                    returns = fn.node.returns
                    if returns is not None:
                        fn_scope = self._scopes[id(fn.module)]
                        return self._annotation_type(fn_scope, returns)
            return None
        if isinstance(node, ast.Subscript):
            base = self._infer(scope, env, node.value, depth + 1)
            if base is not None:
                return base.elem
            return None
        return None

    # -- call edges --------------------------------------------------------

    def _resolve_callable(
        self,
        scope: _ModuleScope,
        env: Dict[str, TypeRef],
        owner: Optional[FunctionInfo],
        func: ast.AST,
    ) -> Optional[FunctionInfo]:
        """Resolve a call/reference expression to a project function."""
        if isinstance(func, ast.Name):
            local = scope.functions.get(func.id)
            if local is not None:
                return local
            cls = scope.classes.get(func.id)
            if cls is not None:
                return self.method(cls, "__init__")
            canonical = scope.canonical(func.id)
            fn_qual = self._fn_alias.get(canonical)
            if fn_qual is not None:
                return self.functions[fn_qual]
            cls_qual = self._cls_alias.get(canonical)
            if cls_qual is not None:
                return self.method(self.classes[cls_qual], "__init__")
            if owner is not None:
                nested = self.functions.get(
                    f"{owner.qualname}.<locals>.{func.id}"
                )
                if nested is not None:
                    return nested
            return None
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            if dotted is not None:
                canonical = scope.canonical(dotted)
                fn_qual = self._fn_alias.get(canonical)
                if fn_qual is not None:
                    return self.functions[fn_qual]
                cls_qual = self._cls_alias.get(canonical)
                if cls_qual is not None:
                    return self.method(self.classes[cls_qual], "__init__")
            base = self._infer(scope, env, func.value, depth=0)
            cls = self.class_of(base)
            if cls is not None:
                return self.method(cls, func.attr)
        return None

    def resolve_call_target(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """Public resolver: the project function a call site invokes."""
        scope = self._scopes[id(caller.module)]
        env = self._param_env(scope, caller)
        return self._resolve_target_with_env(scope, env, caller, call)

    def resolve_reference(
        self, caller: FunctionInfo, expr: ast.AST
    ) -> Optional[FunctionInfo]:
        """Resolve a function *reference* expression inside ``caller``.

        Handles the shapes work crosses boundaries in: a bare name or
        attribute, a ``functools.partial(f, …)`` call, and a local name
        previously bound to such a partial (``guarded = partial(f, …);
        pool.submit(guarded, …)``).
        """
        scope = self._scopes[id(caller.module)]
        env = self._param_env(scope, caller)
        if isinstance(expr, ast.Call):
            return self._resolve_target_with_env(scope, env, caller, expr)
        target = self._resolve_callable(scope, env, caller, expr)
        if target is None and isinstance(expr, ast.Name):
            target = self._local_partial_target(scope, env, caller, expr.id)
        return target

    def _resolve_target_with_env(
        self,
        scope: _ModuleScope,
        env: Dict[str, TypeRef],
        owner: FunctionInfo,
        call: ast.Call,
    ) -> Optional[FunctionInfo]:
        # functools.partial(f, ...) resolves to f (both the direct call
        # form and a local name previously bound to a partial).
        dotted = dotted_name(call.func)
        if dotted is not None and scope.canonical(dotted) in (
            "functools.partial",
            "partial",
        ):
            if call.args:
                return self._resolve_callable(scope, env, owner, call.args[0])
            return None
        if isinstance(call.func, ast.Name):
            bound = self._local_partial_target(scope, env, owner, call.func.id)
            if bound is not None:
                return bound
        return self._resolve_callable(scope, env, owner, call.func)

    def _local_partial_target(
        self,
        scope: _ModuleScope,
        env: Dict[str, TypeRef],
        owner: FunctionInfo,
        name: str,
    ) -> Optional[FunctionInfo]:
        """The partial target bound to ``name`` in ``owner``, if any."""
        for node in walk_shallow(owner.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Name) and target.id == name):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                dotted = dotted_name(value.func)
                if dotted is not None and scope.canonical(dotted) in (
                    "functools.partial",
                    "partial",
                ):
                    if value.args:
                        return self._resolve_callable(
                            scope, env, owner, value.args[0]
                        )
        return None

    def _collect_edges(self, info: FunctionInfo) -> None:
        scope = self._scopes[id(info.module)]
        env = self._param_env(scope, info)
        edges: List[CallEdge] = []
        for node in walk_shallow(info.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
            ):
                self.submit_sites.append(
                    SubmitSite(caller=info, node=node, module=info.module)
                )
            target = self._resolve_target_with_env(scope, env, info, node)
            if target is not None:
                edges.append(CallEdge(callee=target.qualname, node=node))
            # Function references passed as arguments (pool.submit(f, x),
            # partial(f, ...), map(f, xs)) become reachability edges too.
            for arg in node.args:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    ref = self._resolve_callable(scope, env, info, arg)
                    if ref is None and isinstance(arg, ast.Name):
                        ref = self._local_partial_target(
                            scope, env, info, arg.id
                        )
                    if ref is not None:
                        edges.append(
                            CallEdge(callee=ref.qualname, node=node, kind="ref")
                        )
        # Calling a function that defines nested defs may invoke them.
        for qual, nested in self.functions.items():
            if nested.is_nested and qual.startswith(
                f"{info.qualname}.<locals>."
            ) and qual.count(".<locals>.") == info.qualname.count(".<locals>.") + 1:
                edges.append(CallEdge(callee=qual, node=nested.node, kind="ref"))
        if edges:
            self.calls[info.qualname] = edges

    # -- convenience for the rules ----------------------------------------

    def scope_for(self, module: SourceModule) -> "_ModuleScope":
        return self._scopes[id(module)]

    def canonical_call(
        self, module: SourceModule, call: ast.Call
    ) -> Optional[str]:
        """The alias-resolved dotted name of a call's target, if dotted."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        return self._scopes[id(module)].canonical(dotted)

    def infer_in(
        self, caller: FunctionInfo, expr: ast.AST
    ) -> Optional[TypeRef]:
        """Best-effort type of an expression inside ``caller``."""
        scope = self._scopes[id(caller.module)]
        env = self._param_env(scope, caller)
        return self._infer(scope, env, expr, depth=0)


def build_project_index(modules: Sequence[SourceModule]) -> ProjectIndex:
    """Build the cross-file index the PQ1xx rules traverse."""
    return ProjectIndex(modules)
