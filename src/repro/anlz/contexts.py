"""Execution-context propagation over the project call graph.

The PQ1xx rules care about *where* code runs, not just what it does:

* **async context** — functions transitively reachable from an
  ``async def`` in ``repro.service`` run on the event loop, where one
  blocking call stalls every connection (PQ101);
* **worker context** — functions reachable from a process-pool submit
  target run in a forked/spawned worker, so everything they receive
  must have crossed the pickle boundary (PQ103);
* **lock scope** — statements lexically inside ``with <x>._lock:`` hold
  a ``threading.Lock``, which must never span an ``await`` (PQ105) and
  is what makes an obs-instrument mutation legal (PQ102).

:func:`propagate` runs one BFS per root set over the
:class:`~repro.anlz.callgraph.ProjectIndex` edges and records, for each
reached function, the shortest call chain back to its root — the rules
put that chain in the finding message so a violation three modules away
from the ``async def`` is still actionable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.anlz.callgraph import (
    FunctionInfo,
    ProjectIndex,
    dotted_name,
    walk_shallow,
)

__all__ = [
    "ContextMap",
    "Reach",
    "async_roots",
    "lock_scopes",
    "propagate",
    "worker_roots",
]


@dataclass(frozen=True)
class Reach:
    """How a function was reached: its root and the call chain from it."""

    root: FunctionInfo
    chain: Tuple[str, ...]

    def describe(self, site: str) -> str:
        """``root -> a -> b -> site`` for finding messages."""
        hops = [self.root.short, *self.chain, site]
        return " -> ".join(hops)


class ContextMap:
    """Reachability result: function qualname -> shortest :class:`Reach`."""

    def __init__(self, reached: Dict[str, Reach]) -> None:
        self._reached = reached

    def __contains__(self, qualname: str) -> bool:
        return qualname in self._reached

    def reach(self, qualname: str) -> Optional[Reach]:
        return self._reached.get(qualname)

    def items(self) -> Iterable[Tuple[str, Reach]]:
        return self._reached.items()


def propagate(index: ProjectIndex, roots: Iterable[FunctionInfo]) -> ContextMap:
    """BFS the call graph from ``roots``, keeping shortest chains.

    Both "call" and "ref" edges are followed: a function passed as an
    argument (``pool.submit(f, …)``) is treated as invoked in the same
    context as the call site that shipped it.
    """
    reached: Dict[str, Reach] = {}
    queue: List[str] = []
    for root in roots:
        if root.qualname not in reached:
            reached[root.qualname] = Reach(root=root, chain=())
            queue.append(root.qualname)
    while queue:
        qual = queue.pop(0)
        here = reached[qual]
        for edge in index.calls.get(qual, ()):  # already resolved edges
            if edge.callee in reached:
                continue
            callee = index.functions.get(edge.callee)
            if callee is None:
                continue
            reached[edge.callee] = Reach(
                root=here.root, chain=(*here.chain, callee.short)
            )
            queue.append(edge.callee)
    return ContextMap(reached)


def async_roots(
    index: ProjectIndex, package: str = "service"
) -> List[FunctionInfo]:
    """Every ``async def`` defined under the given package segment."""
    roots = [
        info
        for info in index.functions.values()
        if info.is_async and package in info.module.segments[:-1]
    ]
    return sorted(roots, key=lambda info: info.qualname)


def worker_roots(index: ProjectIndex) -> List[FunctionInfo]:
    """Resolved targets of every ``<pool>.submit(fn, …)`` site."""
    roots: Dict[str, FunctionInfo] = {}
    for site in index.submit_sites:
        if not site.node.args:
            continue
        target = index.resolve_reference(site.caller, site.node.args[0])
        if target is not None:
            roots.setdefault(target.qualname, target)
    return sorted(roots.values(), key=lambda info: info.qualname)


def _is_threading_lock_expr(
    index: ProjectIndex, owner: FunctionInfo, expr: ast.AST
) -> bool:
    """Does a ``with`` context expression look like a threading lock?

    Matches the shapes the tree uses: an attribute or name whose final
    segment is ``lock``/``_lock`` (``self._lock``, ``mine._lock``), a
    direct ``threading.Lock()``/``RLock()`` call, or a local name bound
    to one.  ``asyncio.Lock`` never matches — those are acquired with
    ``async with``, which the callers of this helper skip.
    """
    if isinstance(expr, ast.Call):
        dotted = index.canonical_call(owner.module, expr)
        return dotted in ("threading.Lock", "threading.RLock")
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1].lower()
    return tail in ("lock", "_lock") or tail.endswith("_lock")


def lock_scopes(
    index: ProjectIndex, owner: FunctionInfo
) -> Iterator[Tuple[ast.With, ast.AST]]:
    """Yield ``(with_node, lock_expr)`` for sync lock-holding blocks.

    Only synchronous ``with`` statements count: ``async with`` wraps
    asyncio primitives, which are await-safe by construction.
    """
    for node in walk_shallow(owner.node):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            if _is_threading_lock_expr(index, owner, item.context_expr):
                yield node, item.context_expr
                break
