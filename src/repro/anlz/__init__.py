"""``repro.anlz`` — pqlint, the domain-invariant static analyser.

An AST-based engine enforcing the invariants the test suite can only
sample: data-plane determinism (PQ001), Algorithm-1 register-width
discipline (PQ002), scalar==batched counter parity (PQ003), the typed
error taxonomy (PQ004), the keyword-only public API surface (PQ005),
and the cross-file concurrency family (PQ101–PQ105): event-loop
liveness, obs lock discipline, pool picklability, shared-memory
lifecycle, and no-await-under-lock — built on a project-wide call graph
(:mod:`repro.anlz.callgraph`) and context propagation
(:mod:`repro.anlz.contexts`).  Run it via ``repro lint`` or
``python tools/pqlint.py``; suppress a finding with
``# pqlint: disable=RULE`` on the finding's own line (see
``docs/API.md``).
"""

from repro.anlz.callgraph import ProjectIndex, build_project_index
from repro.anlz.contexts import async_roots, propagate, worker_roots
from repro.anlz.engine import (
    LintEngine,
    LintResult,
    git_changed_files,
    lint_paths,
)
from repro.anlz.model import Finding, SourceModule, parse_module
from repro.anlz.reporters import (
    render_json,
    render_sarif,
    render_text,
    to_document,
    to_sarif,
)
from repro.anlz.rules import RULE_REGISTRY, all_rules, rule_codes

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "ProjectIndex",
    "RULE_REGISTRY",
    "SourceModule",
    "all_rules",
    "async_roots",
    "build_project_index",
    "git_changed_files",
    "lint_paths",
    "parse_module",
    "propagate",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_codes",
    "to_document",
    "to_sarif",
    "worker_roots",
]
