"""``repro.anlz`` — pqlint, the domain-invariant static analyser.

An AST-based engine enforcing the invariants the test suite can only
sample: data-plane determinism (PQ001), Algorithm-1 register-width
discipline (PQ002), scalar==batched counter parity (PQ003), the typed
error taxonomy (PQ004) and the keyword-only public API surface (PQ005).
Run it via ``repro lint`` or ``python tools/pqlint.py``; suppress a
finding with ``# pqlint: disable=RULE`` (see ``docs/API.md``).
"""

from repro.anlz.engine import LintEngine, LintResult, lint_paths
from repro.anlz.model import Finding, SourceModule, parse_module
from repro.anlz.reporters import render_json, render_text, to_document
from repro.anlz.rules import RULE_REGISTRY, all_rules, rule_codes

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "RULE_REGISTRY",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "parse_module",
    "render_json",
    "render_text",
    "rule_codes",
    "to_document",
]
