"""Data model for pqlint: findings, parsed modules, suppressions.

A :class:`SourceModule` is one parsed Python file plus everything a rule
needs to reason about it cheaply: its AST, its path *relative to the
scanned root* (rules scope themselves by path segment — ``core/``,
``engine/``, ...), and the suppression directives extracted from its
comments.

Suppression syntax (checked by ``tests/test_pqlint.py``)::

    x = tts & 0xFF  # pqlint: disable=PQ002
    y = 1           # pqlint: disable=PQ002,PQ005
    # pqlint: disable-file=PQ001      (anywhere in the file)

``disable=`` silences the named rules for findings *on that physical
line* (the line carrying the comment — for a multi-line statement, put
the directive on the line the finding points at).  ``disable-file=``
silences the named rules for the whole file.  ``ALL`` is accepted in
either form.  Suppressions are parsed from real COMMENT tokens via
:mod:`tokenize`, so a ``# pqlint:`` inside a string literal is inert.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Set, Tuple

__all__ = ["Finding", "SourceModule", "parse_module", "ParseFailure"]

_DIRECTIVE_RE = re.compile(
    r"#\s*pqlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ParseFailure:
    """A file the engine could not parse (reported as a PQ000 finding)."""

    path: str
    line: int
    message: str


@dataclass
class SourceModule:
    """One parsed source file, ready for rules to visit."""

    path: Path
    #: POSIX-style path relative to the scanned root (what findings show).
    rel_path: str
    text: str
    tree: ast.Module
    #: line number -> rule names disabled on that line ("ALL" included).
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule names disabled for the whole file.
    file_suppressions: Set[str] = field(default_factory=set)

    @property
    def segments(self) -> Tuple[str, ...]:
        """Path parts relative to the root — the rule-scoping key."""
        return tuple(self.rel_path.split("/"))

    def in_packages(self, packages: FrozenSet[str]) -> bool:
        """True when any path segment (bar the filename) names a package."""
        return any(part in packages for part in self.segments[:-1])

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line)
        return on_line is not None and (rule in on_line or "ALL" in on_line)


def _extract_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments: List[Tuple[int, str]] = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        comments = []
    for line, comment in comments:
        match = _DIRECTIVE_RE.search(comment)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        if match.group("kind") == "disable-file":
            whole_file |= rules
        else:
            per_line.setdefault(line, set()).update(rules)
    return per_line, whole_file


def parse_module(path: Path, root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises :class:`SyntaxError` for files Python itself cannot parse —
    the engine converts that into a PQ000 finding rather than dying.
    """
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    per_line, whole_file = _extract_suppressions(text)
    return SourceModule(
        path=path,
        rel_path=path.relative_to(root).as_posix(),
        text=text,
        tree=tree,
        line_suppressions=per_line,
        file_suppressions=whole_file,
    )
