"""Reporters: serialise a :class:`~repro.anlz.engine.LintResult`.

Two formats, mirroring the conventions elsewhere in the repo:

* **text** — one ``path:line:col: RULE message`` line per finding plus a
  one-line summary, the shape editors and CI logs expect;
* **json** — a stable document (``version``, per-finding records,
  ``counts_by_rule``, ``files_checked``) consumed by
  ``tools/lint_report.py`` to fold ``pq_lint_*`` counts into a
  :class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.anlz.engine import LintResult

__all__ = ["render_text", "render_json", "to_document", "JSON_VERSION"]

JSON_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"pqlint: {len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({len(result.suppressed)} suppressed) "
        f"in {result.files_checked} files"
    )
    lines.append(summary)
    return "\n".join(lines)


def to_document(result: LintResult) -> Dict[str, Any]:
    """The JSON-ready document (also what the tests assert against)."""
    return {
        "version": JSON_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "suppressed": len(result.suppressed),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in result.findings
        ],
    }


def render_json(result: LintResult, indent: int = 2) -> str:
    """:func:`to_document` serialised with stable key order."""
    return json.dumps(to_document(result), indent=indent, sort_keys=True)
