"""Reporters: serialise a :class:`~repro.anlz.engine.LintResult`.

Three formats, mirroring the conventions elsewhere in the repo:

* **text** — one ``path:line:col: RULE message`` line per finding plus a
  one-line summary, the shape editors and CI logs expect;
* **json** — a stable document (``version``, per-finding records,
  ``counts_by_rule``, ``suppressed_by_rule``, ``files_checked``)
  consumed by ``tools/lint_report.py`` to fold ``pq_lint_*`` counts into
  a :class:`~repro.obs.report.RunReport`;
* **sarif** — SARIF 2.1.0 for CI code-scanning annotations: every rule
  in the registry is declared on the tool driver, surviving findings
  become ``results``, and suppressed findings are carried with an
  ``inSource`` suppression record so the audit trail survives upload.

JSON document history: version 1 (PR 5) had a scalar ``suppressed``
count; version 2 (this PR) adds ``suppressed_by_rule`` and, when the
``--changed`` filter ran, ``files_selected``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.anlz.engine import LintResult
from repro.anlz.model import Finding
from repro.anlz.rules import RULE_REGISTRY

__all__ = [
    "JSON_VERSION",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
    "to_document",
    "to_sarif",
]

JSON_VERSION = 2
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines = [finding.render() for finding in result.findings]
    scope = (
        ""
        if result.files_selected is None
        else f", {result.files_selected} selected by --changed"
    )
    summary = (
        f"pqlint: {len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"({len(result.suppressed)} suppressed) "
        f"in {result.files_checked} files{scope}"
    )
    lines.append(summary)
    return "\n".join(lines)


def to_document(result: LintResult) -> Dict[str, Any]:
    """The JSON-ready document (also what the tests assert against)."""
    document: Dict[str, Any] = {
        "version": JSON_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "suppressed": len(result.suppressed),
        "suppressed_by_rule": result.suppressed_by_rule(),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    if result.files_selected is not None:
        document["files_selected"] = result.files_selected
    return document


def render_json(result: LintResult, indent: int = 2) -> str:
    """:func:`to_document` serialised with stable key order."""
    return json.dumps(to_document(result), indent=indent, sort_keys=True)


def _sarif_result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; Finding.col is 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        record["suppressions"] = [{"kind": "inSource"}]
    return record


def to_sarif(result: LintResult) -> Dict[str, Any]:
    """The SARIF 2.1.0 document (one run, the full rule catalogue)."""
    rules: List[Dict[str, Any]] = [
        {
            "id": code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, rule in sorted(RULE_REGISTRY.items())
    ]
    results = [_sarif_result(f, suppressed=False) for f in result.findings]
    results.extend(
        _sarif_result(f, suppressed=True) for f in result.suppressed
    )
    return {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pqlint",
                        "informationUri": "docs/API.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult, indent: int = 2) -> str:
    """:func:`to_sarif` serialised with stable key order."""
    return json.dumps(to_sarif(result), indent=indent, sort_keys=True)
