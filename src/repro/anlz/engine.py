"""The pqlint engine: discovery, parsing, rule dispatch, suppression.

One :class:`LintEngine` run is a pure function of the files under its
roots: discover ``*.py`` files, parse each into a
:class:`~repro.anlz.model.SourceModule`, run every
:class:`~repro.anlz.rules.FileRule` per module and every
:class:`~repro.anlz.rules.ProjectRule` once over the whole set, then
drop findings the source suppressed (``# pqlint: disable=...``).  The
result is a :class:`LintResult` the reporters serialise.

Files that fail to parse surface as ``PQ000`` findings rather than a
crash — a tree that does not parse is certainly not invariant-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.anlz.model import Finding, SourceModule, parse_module
from repro.anlz.rules import FileRule, ProjectRule, all_rules

__all__ = ["LintEngine", "LintResult", "lint_paths"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Everything one engine run produced."""

    #: Findings that survived suppression, sorted by (path, line, rule).
    findings: List[Finding]
    #: Findings silenced by a ``# pqlint: disable`` directive.
    suppressed: List[Finding]
    #: How many files were parsed (suppression-independent denominator).
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """``{rule code: surviving finding count}`` — the report metric."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


@dataclass
class LintEngine:
    """Run the rule catalogue over one or more source roots."""

    rules: List[FileRule] = field(default_factory=all_rules)

    def discover(self, root: Path) -> List[Path]:
        if root.is_file():
            return [root]
        return sorted(
            p
            for p in root.rglob("*.py")
            if not any(part in _SKIP_DIRS for part in p.parts)
        )

    def run(self, roots: Sequence[Path]) -> LintResult:
        modules: List[SourceModule] = []
        raw: List[Finding] = []
        for root in roots:
            base = root if root.is_dir() else root.parent
            for path in self.discover(root):
                try:
                    modules.append(parse_module(path, base))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    line = getattr(exc, "lineno", 1) or 1
                    raw.append(
                        Finding(
                            path=path.relative_to(base).as_posix(),
                            line=int(line),
                            col=0,
                            rule="PQ000",
                            message=f"file does not parse: {exc}",
                        )
                    )

        by_rel: Dict[str, SourceModule] = {m.rel_path: m for m in modules}
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(modules))
            else:
                for module in modules:
                    raw.extend(rule.check(module))

        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in sorted(raw):
            module = by_rel.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
        return LintResult(
            findings=kept, suppressed=suppressed, files_checked=len(modules)
        )


def lint_paths(
    paths: Iterable[Path],
    only: Optional[Iterable[str]] = None,
) -> LintResult:
    """Convenience front door used by the CLI and the tests."""
    return LintEngine(rules=all_rules(only)).run([Path(p) for p in paths])
