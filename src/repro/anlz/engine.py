"""The pqlint engine: discovery, parsing, rule dispatch, suppression.

One :class:`LintEngine` run is a pure function of the files under its
roots: discover ``*.py`` files, parse each into a
:class:`~repro.anlz.model.SourceModule`, build one
:class:`~repro.anlz.callgraph.ProjectIndex` (the symbol table + call
graph the PQ1xx rules traverse), run every
:class:`~repro.anlz.rules.FileRule` per module and every
:class:`~repro.anlz.rules.ProjectRule` once over the whole set, then
drop findings the source suppressed (``# pqlint: disable=...``).  The
result is a :class:`LintResult` the reporters serialise.

Suppression is decided at the *finding site*: a cross-file rule may be
anchored conceptually to one module (an async root, a submit site) but
each finding it emits carries the path/line where the violation lives,
and the directive on *that* line is what silences it.

``--changed`` mode narrows the *reported* findings to files touched
versus a git ref while the call graph stays project-wide — a blocking
call added to a helper still trips PQ101 even though the async root
didn't change, as long as the helper itself is in the changed set.

Files that fail to parse surface as ``PQ000`` findings rather than a
crash — a tree that does not parse is certainly not invariant-clean.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.anlz.callgraph import build_project_index
from repro.anlz.model import Finding, SourceModule, parse_module
from repro.anlz.rules import FileRule, ProjectRule, all_rules

__all__ = ["LintEngine", "LintResult", "git_changed_files", "lint_paths"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Everything one engine run produced."""

    #: Findings that survived suppression, sorted by (path, line, rule).
    findings: List[Finding]
    #: Findings silenced by a ``# pqlint: disable`` directive.
    suppressed: List[Finding]
    #: How many files were parsed (suppression-independent denominator).
    files_checked: int = 0
    #: How many files the ``--changed`` filter selected (None = no filter).
    files_selected: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """``{rule code: surviving finding count}`` — the report metric."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def suppressed_by_rule(self) -> Dict[str, int]:
        """``{rule code: suppressed finding count}`` — audit visibility."""
        counts: Dict[str, int] = {}
        for finding in self.suppressed:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


@dataclass
class LintEngine:
    """Run the rule catalogue over one or more source roots."""

    rules: List[FileRule] = field(default_factory=all_rules)

    def discover(self, root: Path) -> List[Path]:
        if root.is_file():
            return [root]
        return sorted(
            p
            for p in root.rglob("*.py")
            if not any(part in _SKIP_DIRS for part in p.parts)
        )

    def run(
        self,
        roots: Sequence[Path],
        changed: Optional[Set[Path]] = None,
    ) -> LintResult:
        """Lint everything under ``roots``.

        ``changed``, when given, is a set of resolved absolute paths:
        every file is still parsed and indexed (the call graph must stay
        project-wide), but only findings *located in* a changed file are
        reported or counted as suppressed.
        """
        modules: List[SourceModule] = []
        raw: List[Finding] = []
        for root in roots:
            base = root if root.is_dir() else root.parent
            for path in self.discover(root):
                try:
                    modules.append(parse_module(path, base))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    line = getattr(exc, "lineno", 1) or 1
                    raw.append(
                        Finding(
                            path=path.relative_to(base).as_posix(),
                            line=int(line),
                            col=0,
                            rule="PQ000",
                            message=f"file does not parse: {exc}",
                        )
                    )

        by_rel: Dict[str, SourceModule] = {m.rel_path: m for m in modules}
        index = build_project_index(modules)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(modules, index))
            else:
                for module in modules:
                    raw.extend(rule.check(module))

        selected: Optional[Set[str]] = None
        if changed is not None:
            selected = {
                m.rel_path for m in modules if m.path.resolve() in changed
            }

        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in sorted(raw):
            if selected is not None and finding.path not in selected:
                continue
            module = by_rel.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.rule, finding.line
            ):
                suppressed.append(finding)
            else:
                kept.append(finding)
        return LintResult(
            findings=kept,
            suppressed=suppressed,
            files_checked=len(modules),
            files_selected=None if selected is None else len(selected),
        )


def git_changed_files(ref: str, cwd: Optional[Path] = None) -> Set[Path]:
    """Absolute paths of ``*.py`` files changed vs ``ref`` (plus untracked).

    Raises :class:`ValueError` (with git's stderr) when the ref does not
    resolve or the directory is not a git work tree — the CLI maps that
    to its usage exit code rather than a traceback.
    """
    where = cwd or Path.cwd()

    def run_git(*args: str) -> str:
        proc = subprocess.run(
            ["git", "-C", str(where), *args],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or proc.stdout.strip()
            raise ValueError(f"git {' '.join(args)} failed: {detail}")
        return proc.stdout

    toplevel = Path(run_git("rev-parse", "--show-toplevel").strip())
    names: Set[str] = set()
    diff = run_git("diff", "--name-only", "-z", ref, "--", "*.py")
    names.update(n for n in diff.split("\0") if n)
    untracked = run_git(
        "ls-files", "--others", "--exclude-standard", "-z", "--", "*.py"
    )
    names.update(n for n in untracked.split("\0") if n)
    return {(toplevel / name).resolve() for name in names}


def lint_paths(
    paths: Iterable[Path],
    only: Optional[Iterable[str]] = None,
    changed: Optional[Set[Path]] = None,
) -> LintResult:
    """Convenience front door used by the CLI and the tests."""
    return LintEngine(rules=all_rules(only)).run(
        [Path(p) for p in paths], changed=changed
    )
