"""The pqlint rule catalogue: domain invariants PQ001–PQ005.

Each rule protects a property the test suite can only sample:

========  =====================  ==================================================
Rule      Name                   Invariant (paper / design anchor)
========  =====================  ==================================================
PQ001     determinism            data-plane packages draw no wall clock and no
                                 unseeded RNG (fault-equivalence, DESIGN §11)
PQ002     register-width         shifts/masks derive from declared width
                                 constants, never bare magic numbers (Alg. 1,
                                 §4.1 cycle-ID arithmetic)
PQ003     engine-parity          scalar and batched paths increment the same
                                 counter vocabulary (DESIGN §9 equivalence)
PQ004     error-taxonomy         ``faults/``/``engine/``/``store/`` raise the
                                 typed errors in ``errors.py``, not builtin
                                 Exception types
PQ005     api-surface            public ``PrintQueuePort``/``AnalysisProgram``
                                 options are keyword-only; no new
                                 ``DeprecationWarning`` shims — retired names
                                 raise typed errors instead (DESIGN §7)
========  =====================  ==================================================

Two rule shapes exist.  A :class:`FileRule` sees one module at a time; a
:class:`ProjectRule` runs after every module is parsed and may correlate
across files (PQ003 compares ``core/`` against ``engine/``).  Rules are
pure functions of the ASTs — pqlint never imports the code it checks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.anlz.model import Finding, SourceModule

__all__ = [
    "FileRule",
    "ProjectRule",
    "RULE_REGISTRY",
    "all_rules",
    "rule_codes",
]

#: Packages that constitute the simulated data plane: everything here
#: must be a deterministic function of the event stream and config.
DATA_PLANE_PACKAGES = frozenset({"core", "engine", "switch"})

#: Packages whose raise sites must use the typed hierarchy in errors.py.
TYPED_ERROR_PACKAGES = frozenset({"faults", "engine", "store"})

#: Classes whose public surface PQ005 polices.
API_CLASSES = frozenset({"PrintQueuePort", "AnalysisProgram"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_int(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is int


class FileRule:
    """Base class: one module in, findings out."""

    code: str = "PQ000"
    name: str = "abstract"
    summary: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProjectRule(FileRule):
    """Base class: the whole module set in, findings out."""

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())


# ---------------------------------------------------------------------------
# PQ001 — determinism
# ---------------------------------------------------------------------------

#: Fully-resolved call targets that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are fine *when seeded* (>= 1 argument).
_SEEDABLE_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
)


class _AliasTracker(ast.NodeVisitor):
    """Resolve local names back to canonical module paths.

    Handles the import forms the codebase actually uses (``import x``,
    ``import x as y``, ``from x import a [as b]``); anything more exotic
    simply goes unresolved, which errs on the quiet side.
    """

    def __init__(self) -> None:
        #: local alias -> canonical dotted module/function path
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        canonical = self.aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical


class DeterminismRule(FileRule):
    """PQ001: no wall clock, no unseeded RNG, in the data-plane packages.

    The scalar/batched and faults-on/off equivalence guarantees (DESIGN
    §9/§11) hold only if ``core/``, ``engine/`` and ``switch/`` are
    deterministic functions of the event stream: time comes from packet
    timestamps or an injected clock, randomness from a seeded generator
    threaded in by the caller.  ``time.perf_counter[_ns]`` stays legal —
    it feeds latency histograms, which are outside the deterministic
    view by construction.
    """

    code = "PQ001"
    name = "determinism"
    summary = "no wall clock / unseeded RNG in core, engine, switch"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(DATA_PLANE_PACKAGES):
            return
        tracker = _AliasTracker()
        tracker.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            resolved = tracker.resolve(dotted)
            message = self._diagnose(resolved, node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _diagnose(resolved: str, call: ast.Call) -> Optional[str]:
        if resolved in _WALL_CLOCK_CALLS:
            return (
                f"wall-clock read `{resolved}` in data-plane code; take "
                "time from the event stream or an injected clock"
            )
        seeded = bool(call.args or call.keywords)
        if resolved == "random.Random":
            if seeded:
                return None
            return (
                "unseeded `random.Random()`; pass an explicit seed so "
                "runs replay bit-identically"
            )
        if resolved == "random.SystemRandom" or resolved.startswith(
            "random.SystemRandom."
        ):
            return "`random.SystemRandom` is never deterministic"
        if resolved.startswith("random."):
            return (
                f"module-level `{resolved}` uses the shared unseeded RNG; "
                "thread a seeded `random.Random` through instead"
            )
        if resolved.startswith("numpy.random."):
            attr = resolved.rsplit(".", 1)[1]
            if attr in _SEEDABLE_NP_RANDOM:
                if seeded:
                    return None
                return (
                    f"unseeded `numpy.random.{attr}()`; pass an explicit "
                    "seed so runs replay bit-identically"
                )
            return (
                f"legacy global-state `{resolved}`; use a seeded "
                "`numpy.random.default_rng(seed)` generator"
            )
        return None


# ---------------------------------------------------------------------------
# PQ002 — register widths
# ---------------------------------------------------------------------------


class RegisterWidthRule(FileRule):
    """PQ002: shift amounts and masks must derive from declared widths.

    Algorithm 1 packs ``[cycle-ID | k-bit index]`` into each register
    cell; every shift and mask in that arithmetic must be expressed in
    terms of the declared constants (``k``, ``alpha``, ``cfg.shift(i)``,
    ``timestamp_bits``...) so a config change cannot silently shear the
    cell layout.  Concretely, in the data-plane packages:

    * ``x << N`` / ``x >> N`` with a literal ``N >= 2`` is a violation
      unless ``x`` is the literal ``1`` (the canonical ``1 << WIDTH``
      power-of-two constructor, where the literal *is* the declared
      width);
    * ``x & N`` / ``x | N`` with a literal ``N >= 2`` is a violation —
      masks are built as ``(1 << width) - 1``, never written out.

    Single-bit idioms (``& 1``, ``<< 1``, ``| 1``) stay legal: they
    select a flag bit, not a configurable field.
    """

    code = "PQ002"
    name = "register-width"
    summary = "shifts/masks derive from declared width constants"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(DATA_PLANE_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, (ast.LShift, ast.RShift)):
                if (
                    _is_int(node.right)
                    and node.right.value >= 2
                    and not (_is_int(node.left) and node.left.value == 1)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"shift by magic literal {node.right.value}; use a "
                        "declared width constant (k/alpha/shift(i))",
                    )
            elif isinstance(node.op, (ast.BitAnd, ast.BitOr)):
                for operand in (node.left, node.right):
                    if _is_int(operand) and operand.value >= 2:
                        yield self.finding(
                            module,
                            node,
                            f"magic bitmask {operand.value:#x}; derive it "
                            "from a declared width: (1 << w) - 1",
                        )


# ---------------------------------------------------------------------------
# PQ003 — engine parity
# ---------------------------------------------------------------------------

#: Counter namespaces owned by the shared data-plane structures.  The
#: obs collector (repro/obs/report.py) derives these from structure
#: attributes; direct increments in core/ or engine/ would double-count
#: on one path only and break scalar==batched observability.
STRUCTURE_COUNTER_PREFIXES = (
    "pq_tw_",
    "pq_qm_",
    "pq_bank_",
    "pq_filter_",
    "pq_packets_",
)

#: The hot-path namespace both ingest engines share.
INGEST_PREFIX = "pq_ingest_"

#: Module (relative to the scanned root) declaring PARITY_EXEMPT_METRICS.
PARITY_DECLARATION_MODULE = "obs/metrics.py"


class _CounterIncrements(ast.NodeVisitor):
    """Counter names whose ``.inc()`` fires somewhere in one module.

    Two shapes count as an increment of name ``N``:

    * ``<expr>.counter("N", ...).inc(...)`` — direct chain;
    * ``target = <expr>.counter("N", ...)`` followed anywhere by
      ``target.inc(...)`` where ``target`` is a plain name or a
      ``self.attr`` (the cached-instrument idiom the hot paths use).
    """

    def __init__(self) -> None:
        #: counter name -> first increment site
        self.increments: Dict[str, ast.AST] = {}
        #: "x" or "self.x" -> (counter name, assignment node)
        self._bound: Dict[str, Tuple[str, ast.AST]] = {}
        self._inc_targets: List[Tuple[str, ast.AST]] = []

    @staticmethod
    def _counter_name(call: ast.AST) -> Optional[str]:
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "counter"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return call.args[0].value
        return None

    @staticmethod
    def _target_key(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        name = self._counter_name(node.value)
        if name is not None:
            for target in node.targets:
                key = self._target_key(target)
                if key is not None:
                    self._bound[key] = (name, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "inc":
            name = self._counter_name(node.func.value)
            if name is not None:
                self.increments.setdefault(name, node)
            else:
                key = self._target_key(node.func.value)
                if key is not None:
                    self._inc_targets.append((key, node))
        self.generic_visit(node)

    def finish(self) -> Dict[str, ast.AST]:
        for key, site in self._inc_targets:
            bound = self._bound.get(key)
            if bound is not None:
                self.increments.setdefault(bound[0], site)
        return self.increments


def _parity_exemptions(modules: Sequence[SourceModule]) -> Set[str]:
    """Parse PARITY_EXEMPT_METRICS out of the obs/metrics module's AST."""
    for module in modules:
        if not module.rel_path.endswith(PARITY_DECLARATION_MODULE):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "PARITY_EXEMPT_METRICS"
                for t in node.targets
            ):
                continue
            names: Set[str] = set()
            for constant in ast.walk(node.value):
                if isinstance(constant, ast.Constant) and isinstance(
                    constant.value, str
                ):
                    names.add(constant.value)
            return names
    return set()


class EngineParityRule(ProjectRule):
    """PQ003: scalar and batched paths share one counter vocabulary.

    The equivalence suites assert ``RunReport.deterministic_view()`` is
    identical between ingest engines; this rule makes the property hold
    *by construction* at the increment sites:

    * structure-counter namespaces (``pq_tw_*``, ``pq_qm_*``,
      ``pq_bank_*``, ``pq_filter_*``, ``pq_packets_*``) are derived from
      the shared structures by the obs collector — a direct ``.inc()``
      under ``core/`` or ``engine/`` would tick on one path only;
    * a ``pq_ingest_*`` counter incremented under ``engine/`` must also
      be incremented under ``core/`` (and vice versa), unless the name
      is declared engine-specific in ``PARITY_EXEMPT_METRICS``
      (``repro/obs/metrics.py``) — the audited list of counters that are
      definitionally one-path-only, e.g. a batch count on a path that
      has no batches.

    Histograms and gauges are exempt: timing is engine-specific by
    design and excluded from the deterministic view.
    """

    code = "PQ003"
    name = "engine-parity"
    summary = "scalar==batched counter vocabulary holds by construction"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        per_package: Dict[str, Dict[str, Tuple[SourceModule, ast.AST]]] = {
            "core": {},
            "engine": {},
        }
        for module in modules:
            for package in per_package:
                if package in module.segments[:-1]:
                    visitor = _CounterIncrements()
                    visitor.visit(module.tree)
                    for name, site in visitor.finish().items():
                        per_package[package].setdefault(name, (module, site))
        exempt = _parity_exemptions(modules)

        for package, increments in per_package.items():
            other = "engine" if package == "core" else "core"
            for name, (module, site) in sorted(increments.items()):
                if name.startswith(STRUCTURE_COUNTER_PREFIXES):
                    yield self.finding(
                        module,
                        site,
                        f"structure counter {name!r} incremented directly "
                        f"under {package}/; these are derived from the "
                        "shared structures by the obs collector",
                    )
                elif (
                    name.startswith(INGEST_PREFIX)
                    and name not in exempt
                    and name not in per_package[other]
                ):
                    yield self.finding(
                        module,
                        site,
                        f"ingest counter {name!r} incremented under "
                        f"{package}/ but never under {other}/; increment "
                        "both paths or declare it in "
                        "PARITY_EXEMPT_METRICS (repro/obs/metrics.py)",
                    )


# ---------------------------------------------------------------------------
# PQ004 — error taxonomy
# ---------------------------------------------------------------------------

#: Builtin exception types banned at raise sites in faults/ and engine/.
#: TypeError stays legal (API-misuse signalling), as do assertions.
_BANNED_RAISES = frozenset({"Exception", "ValueError", "RuntimeError"})


class ErrorTaxonomyRule(FileRule):
    """PQ004: ``faults/``, ``engine/`` and ``store/`` raise typed errors.

    The resilient read path promises callers a closed error vocabulary
    (``FaultInjected``, ``DataPlaneReadError``, ``RetryExhausted``, ...)
    so degradation handling can be exhaustive; a stray ``ValueError``
    escapes every ``except ReproError`` fence.  Raise the matching type
    from ``repro/errors.py`` instead.
    """

    code = "PQ004"
    name = "error-taxonomy"
    summary = "faults/, engine/ and store/ raise typed errors from errors.py"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(TYPED_ERROR_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BANNED_RAISES:
                yield self.finding(
                    module,
                    node,
                    f"bare `raise {name}` in a typed-error package; use "
                    "the matching ReproError subclass from repro/errors.py",
                )


# ---------------------------------------------------------------------------
# PQ005 — API surface
# ---------------------------------------------------------------------------


class ApiSurfaceRule(FileRule):
    """PQ005: options keyword-only on the public API; no deprecation shims.

    On ``PrintQueuePort`` and ``AnalysisProgram``, any public-method
    parameter *with a default* must sit after ``*``: required inputs may
    stay positional, but options named at the call site cannot silently
    swap meaning when a parameter is inserted (the PR-1 convention that
    made ``query()`` keyword-only).  Additionally, *no*
    ``warnings.warn(..., DeprecationWarning)`` shim may exist: retired
    names spend one release as warning shims at most, then graduate to
    raising a typed error that names the replacement (the shims removed
    alongside the snapshot store set the precedent).  A new shim would
    silently re-open the two-API era this rule closed.
    """

    code = "PQ005"
    name = "api-surface"
    summary = "public API options keyword-only; no DeprecationWarning shims"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in API_CLASSES:
                yield from self._check_class(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_warn(module, node)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue
            args = item.args
            positional = args.posonlyargs + args.args
            defaulted = positional[len(positional) - len(args.defaults):]
            for param in defaulted:
                yield self.finding(
                    module,
                    param,
                    f"{cls.name}.{item.name}: defaulted parameter "
                    f"{param.arg!r} must be keyword-only (move it after "
                    "`*`)",
                )

    def _check_warn(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted_name(call.func)
        if dotted not in ("warnings.warn", "warn"):
            return
        category: Optional[ast.AST] = None
        if len(call.args) >= 2:
            category = call.args[1]
        for kw in call.keywords:
            if kw.arg == "category":
                category = kw.value
        if not (
            isinstance(category, ast.Name)
            and category.id == "DeprecationWarning"
        ):
            return
        yield self.finding(
            module,
            call,
            "DeprecationWarning shim; retired names must raise a typed "
            "error naming the query()-style replacement instead of "
            "warning (no new shims)",
        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULE_REGISTRY: Dict[str, Type[FileRule]] = {
    rule.code: rule
    for rule in (
        DeterminismRule,
        RegisterWidthRule,
        EngineParityRule,
        ErrorTaxonomyRule,
        ApiSurfaceRule,
    )
}


def rule_codes() -> List[str]:
    """Every registered rule code, sorted (``PQ001`` … ``PQ005``)."""
    return sorted(RULE_REGISTRY)


def all_rules(
    only: Optional[Iterable[str]] = None,
) -> List[FileRule]:
    """Instantiate the catalogue (optionally restricted to ``only``)."""
    if only is None:
        selected = rule_codes()
    else:
        selected = []
        for code in only:
            if code not in RULE_REGISTRY:
                raise KeyError(f"unknown pqlint rule: {code}")
            selected.append(code)
    return [RULE_REGISTRY[code]() for code in selected]
