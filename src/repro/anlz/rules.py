"""The pqlint rule catalogue: domain invariants PQ001–PQ005.

Each rule protects a property the test suite can only sample:

========  =====================  ==================================================
Rule      Name                   Invariant (paper / design anchor)
========  =====================  ==================================================
PQ001     determinism            data-plane packages draw no wall clock and no
                                 unseeded RNG (fault-equivalence, DESIGN §11)
PQ002     register-width         shifts/masks derive from declared width
                                 constants, never bare magic numbers (Alg. 1,
                                 §4.1 cycle-ID arithmetic)
PQ003     engine-parity          scalar and batched paths increment the same
                                 counter vocabulary (DESIGN §9 equivalence)
PQ004     error-taxonomy         ``faults/``/``engine/``/``store/`` raise the
                                 typed errors in ``errors.py``, not builtin
                                 Exception types
PQ005     api-surface            public ``PrintQueuePort``/``AnalysisProgram``
                                 options are keyword-only; no new
                                 ``DeprecationWarning`` shims — retired names
                                 raise typed errors instead (DESIGN §7)
PQ101     async-blocking         no blocking call transitively reachable from
                                 an ``async def`` in ``repro.service``
                                 (DESIGN §16/§17 event-loop liveness)
PQ102     obs-lock-discipline    every mutation of an obs instrument's state
                                 happens under that instrument's ``_lock``
                                 (audited exempt list, DESIGN §17)
PQ103     pool-picklability      objects crossing a process-pool ``submit``
                                 boundary are statically picklable — no
                                 lambdas, closures, or lock/socket/generator
                                 fields (DESIGN §15/§17)
PQ104     shm-lifecycle          ``multiprocessing.shared_memory`` blocks
                                 close (and unlink, when created) on all
                                 paths — try/finally or context manager
PQ105     await-under-lock       no ``await`` while holding a
                                 ``threading.Lock`` (lock-scope tracking)
========  =====================  ==================================================

Two rule shapes exist.  A :class:`FileRule` sees one module at a time; a
:class:`ProjectRule` runs after every module is parsed and may correlate
across files: PQ003 compares ``core/`` against ``engine/``, and the
PQ1xx concurrency family traverses the shared
:class:`~repro.anlz.callgraph.ProjectIndex` the engine builds once per
run.  Rules are pure functions of the ASTs — pqlint never imports the
code it checks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.anlz.callgraph import (
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    SubmitSite,
    dotted_name as _cg_dotted_name,
    walk_shallow,
)
from repro.anlz.contexts import async_roots, lock_scopes, propagate
from repro.anlz.model import Finding, SourceModule

__all__ = [
    "FileRule",
    "ProjectRule",
    "RULE_REGISTRY",
    "all_rules",
    "rule_codes",
]

#: Packages that constitute the simulated data plane: everything here
#: must be a deterministic function of the event stream and config.
DATA_PLANE_PACKAGES = frozenset({"core", "engine", "switch"})

#: Packages whose raise sites must use the typed hierarchy in errors.py.
TYPED_ERROR_PACKAGES = frozenset({"faults", "engine", "store"})

#: Classes whose public surface PQ005 polices.
API_CLASSES = frozenset({"PrintQueuePort", "AnalysisProgram"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_int(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is int


class FileRule:
    """Base class: one module in, findings out."""

    code: str = "PQ000"
    name: str = "abstract"
    summary: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


class ProjectRule(FileRule):
    """Base class: the whole module set (plus the call graph) in, findings out.

    The engine builds one :class:`~repro.anlz.callgraph.ProjectIndex`
    per run and hands it to every project rule; rules that only need the
    raw module list (PQ003) simply ignore it.
    """

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())


# ---------------------------------------------------------------------------
# PQ001 — determinism
# ---------------------------------------------------------------------------

#: Fully-resolved call targets that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are fine *when seeded* (>= 1 argument).
_SEEDABLE_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}
)


class _AliasTracker(ast.NodeVisitor):
    """Resolve local names back to canonical module paths.

    Handles the import forms the codebase actually uses (``import x``,
    ``import x as y``, ``from x import a [as b]``); anything more exotic
    simply goes unresolved, which errs on the quiet side.
    """

    def __init__(self) -> None:
        #: local alias -> canonical dotted module/function path
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        canonical = self.aliases.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical


class DeterminismRule(FileRule):
    """PQ001: no wall clock, no unseeded RNG, in the data-plane packages.

    The scalar/batched and faults-on/off equivalence guarantees (DESIGN
    §9/§11) hold only if ``core/``, ``engine/`` and ``switch/`` are
    deterministic functions of the event stream: time comes from packet
    timestamps or an injected clock, randomness from a seeded generator
    threaded in by the caller.  ``time.perf_counter[_ns]`` stays legal —
    it feeds latency histograms, which are outside the deterministic
    view by construction.
    """

    code = "PQ001"
    name = "determinism"
    summary = "no wall clock / unseeded RNG in core, engine, switch"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(DATA_PLANE_PACKAGES):
            return
        tracker = _AliasTracker()
        tracker.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            resolved = tracker.resolve(dotted)
            message = self._diagnose(resolved, node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _diagnose(resolved: str, call: ast.Call) -> Optional[str]:
        if resolved in _WALL_CLOCK_CALLS:
            return (
                f"wall-clock read `{resolved}` in data-plane code; take "
                "time from the event stream or an injected clock"
            )
        seeded = bool(call.args or call.keywords)
        if resolved == "random.Random":
            if seeded:
                return None
            return (
                "unseeded `random.Random()`; pass an explicit seed so "
                "runs replay bit-identically"
            )
        if resolved == "random.SystemRandom" or resolved.startswith(
            "random.SystemRandom."
        ):
            return "`random.SystemRandom` is never deterministic"
        if resolved.startswith("random."):
            return (
                f"module-level `{resolved}` uses the shared unseeded RNG; "
                "thread a seeded `random.Random` through instead"
            )
        if resolved.startswith("numpy.random."):
            attr = resolved.rsplit(".", 1)[1]
            if attr in _SEEDABLE_NP_RANDOM:
                if seeded:
                    return None
                return (
                    f"unseeded `numpy.random.{attr}()`; pass an explicit "
                    "seed so runs replay bit-identically"
                )
            return (
                f"legacy global-state `{resolved}`; use a seeded "
                "`numpy.random.default_rng(seed)` generator"
            )
        return None


# ---------------------------------------------------------------------------
# PQ002 — register widths
# ---------------------------------------------------------------------------


class RegisterWidthRule(FileRule):
    """PQ002: shift amounts and masks must derive from declared widths.

    Algorithm 1 packs ``[cycle-ID | k-bit index]`` into each register
    cell; every shift and mask in that arithmetic must be expressed in
    terms of the declared constants (``k``, ``alpha``, ``cfg.shift(i)``,
    ``timestamp_bits``...) so a config change cannot silently shear the
    cell layout.  Concretely, in the data-plane packages:

    * ``x << N`` / ``x >> N`` with a literal ``N >= 2`` is a violation
      unless ``x`` is the literal ``1`` (the canonical ``1 << WIDTH``
      power-of-two constructor, where the literal *is* the declared
      width);
    * ``x & N`` / ``x | N`` with a literal ``N >= 2`` is a violation —
      masks are built as ``(1 << width) - 1``, never written out.

    Single-bit idioms (``& 1``, ``<< 1``, ``| 1``) stay legal: they
    select a flag bit, not a configurable field.
    """

    code = "PQ002"
    name = "register-width"
    summary = "shifts/masks derive from declared width constants"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(DATA_PLANE_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, (ast.LShift, ast.RShift)):
                if (
                    _is_int(node.right)
                    and node.right.value >= 2
                    and not (_is_int(node.left) and node.left.value == 1)
                ):
                    yield self.finding(
                        module,
                        node,
                        f"shift by magic literal {node.right.value}; use a "
                        "declared width constant (k/alpha/shift(i))",
                    )
            elif isinstance(node.op, (ast.BitAnd, ast.BitOr)):
                for operand in (node.left, node.right):
                    if _is_int(operand) and operand.value >= 2:
                        yield self.finding(
                            module,
                            node,
                            f"magic bitmask {operand.value:#x}; derive it "
                            "from a declared width: (1 << w) - 1",
                        )


# ---------------------------------------------------------------------------
# PQ003 — engine parity
# ---------------------------------------------------------------------------

#: Counter namespaces owned by the shared data-plane structures.  The
#: obs collector (repro/obs/report.py) derives these from structure
#: attributes; direct increments in core/ or engine/ would double-count
#: on one path only and break scalar==batched observability.
STRUCTURE_COUNTER_PREFIXES = (
    "pq_tw_",
    "pq_qm_",
    "pq_bank_",
    "pq_filter_",
    "pq_packets_",
)

#: The hot-path namespace both ingest engines share.
INGEST_PREFIX = "pq_ingest_"

#: Module (relative to the scanned root) declaring PARITY_EXEMPT_METRICS.
PARITY_DECLARATION_MODULE = "obs/metrics.py"


class _CounterIncrements(ast.NodeVisitor):
    """Counter names whose ``.inc()`` fires somewhere in one module.

    Two shapes count as an increment of name ``N``:

    * ``<expr>.counter("N", ...).inc(...)`` — direct chain;
    * ``target = <expr>.counter("N", ...)`` followed anywhere by
      ``target.inc(...)`` where ``target`` is a plain name or a
      ``self.attr`` (the cached-instrument idiom the hot paths use).
    """

    def __init__(self) -> None:
        #: counter name -> first increment site
        self.increments: Dict[str, ast.AST] = {}
        #: "x" or "self.x" -> (counter name, assignment node)
        self._bound: Dict[str, Tuple[str, ast.AST]] = {}
        self._inc_targets: List[Tuple[str, ast.AST]] = []

    @staticmethod
    def _counter_name(call: ast.AST) -> Optional[str]:
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "counter"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            return call.args[0].value
        return None

    @staticmethod
    def _target_key(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        name = self._counter_name(node.value)
        if name is not None:
            for target in node.targets:
                key = self._target_key(target)
                if key is not None:
                    self._bound[key] = (name, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "inc":
            name = self._counter_name(node.func.value)
            if name is not None:
                self.increments.setdefault(name, node)
            else:
                key = self._target_key(node.func.value)
                if key is not None:
                    self._inc_targets.append((key, node))
        self.generic_visit(node)

    def finish(self) -> Dict[str, ast.AST]:
        for key, site in self._inc_targets:
            bound = self._bound.get(key)
            if bound is not None:
                self.increments.setdefault(bound[0], site)
        return self.increments


def _parity_exemptions(modules: Sequence[SourceModule]) -> Set[str]:
    """Parse PARITY_EXEMPT_METRICS out of the obs/metrics module's AST."""
    for module in modules:
        if not module.rel_path.endswith(PARITY_DECLARATION_MODULE):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "PARITY_EXEMPT_METRICS"
                for t in node.targets
            ):
                continue
            names: Set[str] = set()
            for constant in ast.walk(node.value):
                if isinstance(constant, ast.Constant) and isinstance(
                    constant.value, str
                ):
                    names.add(constant.value)
            return names
    return set()


class EngineParityRule(ProjectRule):
    """PQ003: scalar and batched paths share one counter vocabulary.

    The equivalence suites assert ``RunReport.deterministic_view()`` is
    identical between ingest engines; this rule makes the property hold
    *by construction* at the increment sites:

    * structure-counter namespaces (``pq_tw_*``, ``pq_qm_*``,
      ``pq_bank_*``, ``pq_filter_*``, ``pq_packets_*``) are derived from
      the shared structures by the obs collector — a direct ``.inc()``
      under ``core/`` or ``engine/`` would tick on one path only;
    * a ``pq_ingest_*`` counter incremented under ``engine/`` must also
      be incremented under ``core/`` (and vice versa), unless the name
      is declared engine-specific in ``PARITY_EXEMPT_METRICS``
      (``repro/obs/metrics.py``) — the audited list of counters that are
      definitionally one-path-only, e.g. a batch count on a path that
      has no batches.

    Histograms and gauges are exempt: timing is engine-specific by
    design and excluded from the deterministic view.
    """

    code = "PQ003"
    name = "engine-parity"
    summary = "scalar==batched counter vocabulary holds by construction"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        per_package: Dict[str, Dict[str, Tuple[SourceModule, ast.AST]]] = {
            "core": {},
            "engine": {},
        }
        for module in modules:
            for package in per_package:
                if package in module.segments[:-1]:
                    visitor = _CounterIncrements()
                    visitor.visit(module.tree)
                    for name, site in visitor.finish().items():
                        per_package[package].setdefault(name, (module, site))
        exempt = _parity_exemptions(modules)

        for package, increments in per_package.items():
            other = "engine" if package == "core" else "core"
            for name, (module, site) in sorted(increments.items()):
                if name.startswith(STRUCTURE_COUNTER_PREFIXES):
                    yield self.finding(
                        module,
                        site,
                        f"structure counter {name!r} incremented directly "
                        f"under {package}/; these are derived from the "
                        "shared structures by the obs collector",
                    )
                elif (
                    name.startswith(INGEST_PREFIX)
                    and name not in exempt
                    and name not in per_package[other]
                ):
                    yield self.finding(
                        module,
                        site,
                        f"ingest counter {name!r} incremented under "
                        f"{package}/ but never under {other}/; increment "
                        "both paths or declare it in "
                        "PARITY_EXEMPT_METRICS (repro/obs/metrics.py)",
                    )


# ---------------------------------------------------------------------------
# PQ004 — error taxonomy
# ---------------------------------------------------------------------------

#: Builtin exception types banned at raise sites in faults/ and engine/.
#: TypeError stays legal (API-misuse signalling), as do assertions.
_BANNED_RAISES = frozenset({"Exception", "ValueError", "RuntimeError"})


class ErrorTaxonomyRule(FileRule):
    """PQ004: ``faults/``, ``engine/`` and ``store/`` raise typed errors.

    The resilient read path promises callers a closed error vocabulary
    (``FaultInjected``, ``DataPlaneReadError``, ``RetryExhausted``, ...)
    so degradation handling can be exhaustive; a stray ``ValueError``
    escapes every ``except ReproError`` fence.  Raise the matching type
    from ``repro/errors.py`` instead.
    """

    code = "PQ004"
    name = "error-taxonomy"
    summary = "faults/, engine/ and store/ raise typed errors from errors.py"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.in_packages(TYPED_ERROR_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BANNED_RAISES:
                yield self.finding(
                    module,
                    node,
                    f"bare `raise {name}` in a typed-error package; use "
                    "the matching ReproError subclass from repro/errors.py",
                )


# ---------------------------------------------------------------------------
# PQ005 — API surface
# ---------------------------------------------------------------------------


class ApiSurfaceRule(FileRule):
    """PQ005: options keyword-only on the public API; no deprecation shims.

    On ``PrintQueuePort`` and ``AnalysisProgram``, any public-method
    parameter *with a default* must sit after ``*``: required inputs may
    stay positional, but options named at the call site cannot silently
    swap meaning when a parameter is inserted (the PR-1 convention that
    made ``query()`` keyword-only).  Additionally, *no*
    ``warnings.warn(..., DeprecationWarning)`` shim may exist: retired
    names spend one release as warning shims at most, then graduate to
    raising a typed error that names the replacement (the shims removed
    alongside the snapshot store set the precedent).  A new shim would
    silently re-open the two-API era this rule closed.
    """

    code = "PQ005"
    name = "api-surface"
    summary = "public API options keyword-only; no DeprecationWarning shims"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in API_CLASSES:
                yield from self._check_class(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_warn(module, node)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("_"):
                continue
            args = item.args
            positional = args.posonlyargs + args.args
            defaulted = positional[len(positional) - len(args.defaults):]
            for param in defaulted:
                yield self.finding(
                    module,
                    param,
                    f"{cls.name}.{item.name}: defaulted parameter "
                    f"{param.arg!r} must be keyword-only (move it after "
                    "`*`)",
                )

    def _check_warn(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted_name(call.func)
        if dotted not in ("warnings.warn", "warn"):
            return
        category: Optional[ast.AST] = None
        if len(call.args) >= 2:
            category = call.args[1]
        for kw in call.keywords:
            if kw.arg == "category":
                category = kw.value
        if not (
            isinstance(category, ast.Name)
            and category.id == "DeprecationWarning"
        ):
            return
        yield self.finding(
            module,
            call,
            "DeprecationWarning shim; retired names must raise a typed "
            "error naming the query()-style replacement instead of "
            "warning (no new shims)",
        )


# ---------------------------------------------------------------------------
# PQ1xx — cross-file concurrency rules (shared helpers)
# ---------------------------------------------------------------------------


def _ancestors(scope_node: ast.AST) -> Dict[int, ast.AST]:
    """``id(child) -> parent`` within one scope (not crossing nested defs)."""
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [scope_node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)
    return parents


def _enclosing_with_item(
    parents: Dict[int, ast.AST], node: ast.AST
) -> Optional[ast.With]:
    """The sync ``with`` whose *context expression* contains ``node``."""
    current = node
    while id(current) in parents:
        parent = parents[id(current)]
        if isinstance(parent, ast.withitem) and parent.context_expr is current:
            grand = parents.get(id(parent))
            if isinstance(grand, ast.With):
                return grand
        current = parent
    return None


def _functions_by_module(
    index: ProjectIndex,
) -> Dict[int, List[FunctionInfo]]:
    grouped: Dict[int, List[FunctionInfo]] = {}
    for info in index.functions.values():
        grouped.setdefault(id(info.module), []).append(info)
    return grouped


# ---------------------------------------------------------------------------
# PQ101 — no blocking calls reachable from the async service
# ---------------------------------------------------------------------------

#: Fully-resolved call targets that block the calling thread outright.
_BLOCKING_EXACT = frozenset({"time.sleep", "open", "io.open", "os.open"})

#: Sync pathlib I/O attribute calls (blocking regardless of receiver).
_BLOCKING_PATH_IO = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: ``(qualname, blocking name) -> justification`` — audited exemptions.
#: Empty today: the PR that introduced this rule fixed every violation
#: instead of exempting it.  Add entries only with a one-line reason.
ASYNC_BLOCKING_EXEMPT: Dict[Tuple[str, str], str] = {}


class AsyncBlockingRule(ProjectRule):
    """PQ101: nothing reachable from a service ``async def`` may block.

    The diagnosis service (DESIGN §16) runs ingest supervision, the
    query front door, and admission control on one event loop; a single
    synchronous sleep, socket call, file read, unbounded ``Queue.get``
    or bare ``future.result()`` anywhere down the call graph stalls
    every connection at once.  The rule BFSes the project call graph
    from every ``async def`` under ``repro.service`` and flags blocking
    sites wherever they live, printing the call chain back to the event
    loop.  Calls lexically inside an ``await``-ed expression are exempt
    (awaiting ``asyncio.Queue.get()`` is the point of the API), as are
    ``.result(timeout=...)``/``.get(timeout=...)`` bounded waits —
    PR 9's bounded-wait convention, now enforced by construction.
    """

    code = "PQ101"
    name = "async-blocking"
    summary = "no blocking calls reachable from async defs in repro.service"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        reached = propagate(index, async_roots(index))
        for qualname, reach in sorted(reached.items()):
            info = index.functions.get(qualname)
            if info is None:
                continue
            awaited = self._awaited_calls(info)
            for node in walk_shallow(info.node):
                if not isinstance(node, ast.Call) or id(node) in awaited:
                    continue
                label = self._blocking_label(index, info, node)
                if label is None:
                    continue
                if (qualname, label) in ASYNC_BLOCKING_EXEMPT:
                    continue
                site = f"{info.module.rel_path}:{node.lineno}"
                yield self.finding(
                    info.module,
                    node,
                    f"blocking `{label}` on an event-loop path: "
                    f"{reach.describe(site)}; move it off-loop "
                    "(executor/thread) or use the async equivalent",
                )

    @staticmethod
    def _awaited_calls(info: FunctionInfo) -> Set[int]:
        """Call nodes inside an awaited expression (never loop-blocking)."""
        awaited: Set[int] = set()
        if not info.is_async:
            return awaited
        for node in walk_shallow(info.node):
            if isinstance(node, ast.Await):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        awaited.add(id(sub))
        return awaited

    def _blocking_label(
        self, index: ProjectIndex, info: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        canonical = index.canonical_call(info.module, call)
        if canonical is not None:
            if canonical in _BLOCKING_EXACT:
                return canonical
            head = canonical.split(".", 1)[0]
            if head == "socket":
                return canonical
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        keywords = {kw.arg for kw in call.keywords}
        if attr == "result" and not call.args and "timeout" not in keywords:
            return ".result() without timeout"
        if attr in _BLOCKING_PATH_IO:
            return f".{attr}() sync file I/O"
        if (
            attr == "get"
            and not call.args
            and not keywords & {"timeout", "block"}
        ):
            base = _cg_dotted_name(call.func.value)
            if base is not None and "queue" in base.lower():
                return f"{base}.get() without timeout"
        return None


# ---------------------------------------------------------------------------
# PQ102 — obs instrument mutations happen under the instrument's _lock
# ---------------------------------------------------------------------------

#: Method calls that mutate a container in place.
_CONTAINER_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "clear",
        "update",
        "setdefault",
    }
)

#: ``(class name, method name) -> justification`` — audited exemptions.
#: Every entry names a method whose unlocked mutation is part of the
#: documented threading contract in ``repro/obs/metrics.py``.
OBS_LOCK_EXEMPT: Dict[Tuple[str, str], str] = {
    ("Gauge", "set"): (
        "single attribute store, atomic under the GIL (documented lock-free)"
    ),
}


class ObsLockDisciplineRule(ProjectRule):
    """PQ102: obs instrument state mutates only under the owning ``_lock``.

    PR 9 made ``repro.obs`` instruments thread-safe: the ingest thread,
    asyncio workers and the poller all tick the same ``Counter``/
    ``Histogram`` objects.  That safety is one unlocked ``+=`` away from
    silent lost updates, which no test reliably catches.  The rule finds
    every instrument class (a class in ``obs/`` that owns a ``_lock``),
    collects the attribute names those classes store state in, and flags
    any write to such an attribute — assignment, augmented assignment,
    subscript store, or in-place container mutator — that is not
    lexically inside ``with <same base>._lock:``.  Methods that *create*
    the lock (``__init__``, ``__setstate__``) are structurally exempt;
    everything else must either lock or carry an entry in
    :data:`OBS_LOCK_EXEMPT` with its one-line justification.
    """

    code = "PQ102"
    name = "obs-lock-discipline"
    summary = "obs instrument state mutates only under the owning _lock"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        instrument_classes = [
            cls
            for cls in index.classes.values()
            if "obs" in cls.module.segments[:-1] and self._owns_lock(cls)
        ]
        if not instrument_classes:
            return
        instrument_quals = {cls.qualname for cls in instrument_classes}
        tracked: Set[str] = set()
        for cls in instrument_classes:
            tracked.update(cls.slots)
            tracked.update(cls.field_sites)
        tracked = {name for name in tracked if "lock" not in name.lower()}

        by_module = _functions_by_module(index)
        for cls in sorted(instrument_classes, key=lambda c: c.qualname):
            for method in cls.methods.values():
                yield from self._check_function(
                    index, method, cls, instrument_quals, tracked
                )
        # Functions outside instrument classes (other obs code, or any
        # module) may still hold a typed reference to an instrument.
        for module_functions in by_module.values():
            for info in module_functions:
                if (
                    info.class_name is not None
                    and any(
                        info.qualname.startswith(f"{q}.")
                        for q in instrument_quals
                    )
                ):
                    continue  # already checked as a method above
                yield from self._check_function(
                    index, info, None, instrument_quals, tracked
                )

    @staticmethod
    def _owns_lock(cls: ClassInfo) -> bool:
        return "_lock" in cls.slots or "_lock" in cls.field_sites

    def _check_function(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        owner: Optional[ClassInfo],
        instrument_quals: Set[str],
        tracked: Set[str],
    ) -> Iterator[Finding]:
        if owner is not None:
            exemption = OBS_LOCK_EXEMPT.get((owner.name, info.name))
            if exemption is not None:
                return
        parents = _ancestors(info.node)
        constructed = self._lock_assigning_bases(info)
        for node in walk_shallow(info.node):
            for base, attr, site in self._mutations(node):
                if attr not in tracked:
                    continue
                base_dump = ast.dump(base)
                if base_dump in constructed:
                    continue
                if not self._is_instrument_base(
                    index, info, owner, base, instrument_quals
                ):
                    continue
                if self._under_lock(parents, site, base_dump):
                    continue
                yield self.finding(
                    info.module,
                    site,
                    f"instrument state `{_cg_dotted_name(base) or '<expr>'}"
                    f".{attr}` mutated outside `with ..._lock:`; wrap the "
                    "write or add an audited OBS_LOCK_EXEMPT entry",
                )

    @staticmethod
    def _lock_assigning_bases(info: FunctionInfo) -> Set[str]:
        """AST dumps of bases whose ``_lock`` this function assigns."""
        bases: Set[str] = set()
        for node in walk_shallow(info.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "_lock"
                ):
                    bases.add(ast.dump(target.value))
        return bases

    @staticmethod
    def _mutations(
        node: ast.AST,
    ) -> Iterator[Tuple[ast.AST, str, ast.AST]]:
        """Yield ``(base expr, attribute, site)`` for each mutation shape."""

        def attr_of(target: ast.AST) -> Optional[ast.Attribute]:
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute):
                return target
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attribute = attr_of(target)
                if attribute is not None:
                    yield attribute.value, attribute.attr, node
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _CONTAINER_MUTATORS:
                attribute = attr_of(node.func.value)
                if attribute is not None:
                    yield attribute.value, attribute.attr, node

    @staticmethod
    def _is_instrument_base(
        index: ProjectIndex,
        info: FunctionInfo,
        owner: Optional[ClassInfo],
        base: ast.AST,
        instrument_quals: Set[str],
    ) -> bool:
        if (
            owner is not None
            and isinstance(base, ast.Name)
            and base.id == "self"
        ):
            return True
        ref = index.infer_in(info, base)
        return ref is not None and ref.qualname in instrument_quals

    @staticmethod
    def _under_lock(
        parents: Dict[int, ast.AST], site: ast.AST, base_dump: str
    ) -> bool:
        """Is ``site`` lexically inside ``with <base>._lock:``?"""
        current = site
        while id(current) in parents:
            current = parents[id(current)]
            if not isinstance(current, ast.With):
                continue
            for item in current.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr == "_lock"
                    and ast.dump(expr.value) == base_dump
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# PQ103 — everything crossing a process-pool submit() must pickle
# ---------------------------------------------------------------------------

#: Constructor calls whose product cannot cross a pickle boundary.
_UNPICKLABLE_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "socket.socket",
        "socket.create_connection",
    }
)


class PoolPicklabilityRule(ProjectRule):
    """PQ103: submit-site arguments must be statically picklable.

    ``ParallelSweep`` and ``ShardRunner`` ship work to a
    ``ProcessPoolExecutor``; everything at a ``.submit(fn, *args)`` site
    crosses a pickle boundary at runtime, where a lambda or a
    lock-holding object dies with an opaque ``PicklingError`` inside the
    pool (or worse, only under the spawn start method CI doesn't run).
    The rule checks each submit site statically: the callable must be a
    module-level function (directly, or through a ``functools.partial``
    — the sharded engine's idiom), never a lambda or a local closure;
    and each argument whose project class is known from the index is
    scanned transitively for fields built from lock/socket factories or
    project generator functions.  A class that defines ``__getstate__``
    or ``__reduce__`` opts out of the scan — it declared its own wire
    format (``Metrics`` drops its locks there, which is exactly the
    pattern this rule wants to encourage).
    """

    code = "PQ103"
    name = "pool-picklability"
    summary = "process-pool submit() arguments are statically picklable"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        for site in index.submit_sites:
            if not site.node.args:
                continue
            target_expr = site.node.args[0]
            yield from self._check_callable(index, site, target_expr)
            for arg in site.node.args[1:]:
                yield from self._check_argument(index, site, arg)
            for keyword in site.node.keywords:
                yield from self._check_argument(index, site, keyword.value)

    def _check_callable(
        self, index: ProjectIndex, site: SubmitSite, expr: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(expr, ast.Lambda):
            yield self.finding(
                site.module,
                expr,
                "lambda submitted to a process pool; lambdas do not "
                "pickle — use a module-level function",
            )
            return
        # partial(f, captured...) — check f and the captured arguments.
        if isinstance(expr, ast.Call):
            target = index.resolve_reference(site.caller, expr)
            if target is not None:
                yield from self._check_resolved_callable(index, site, target)
            for arg in expr.args[1:]:
                yield from self._check_argument(index, site, arg)
            return
        if isinstance(expr, (ast.Name, ast.Attribute)):
            target = index.resolve_reference(site.caller, expr)
            if target is not None:
                yield from self._check_resolved_callable(index, site, target)

    def _check_resolved_callable(
        self, index: ProjectIndex, site: SubmitSite, target: FunctionInfo
    ) -> Iterator[Finding]:
        if target.is_nested:
            yield self.finding(
                site.module,
                site.node,
                f"local closure `{target.name}` submitted to a process "
                "pool; closures do not pickle — hoist it to module level",
            )

    def _check_argument(
        self, index: ProjectIndex, site: SubmitSite, expr: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(expr, ast.Lambda):
            yield self.finding(
                site.module,
                expr,
                "lambda passed across a process-pool boundary; lambdas "
                "do not pickle",
            )
            return
        if isinstance(expr, (ast.Name, ast.Attribute)):
            fn = index.resolve_reference(site.caller, expr)
            if fn is not None and fn.is_nested:
                yield self.finding(
                    site.module,
                    site.node,
                    f"local closure `{fn.name}` passed across a "
                    "process-pool boundary; closures do not pickle",
                )
                return
        ref = index.infer_in(site.caller, expr)
        cls = index.class_of(ref)
        if cls is None:
            return
        reason = self._unpicklable_reason(index, cls, visited=set())
        if reason is not None:
            yield self.finding(
                site.module,
                site.node,
                f"`{cls.name}` crosses the process-pool boundary but "
                f"{reason}; drop the field in __getstate__ or ship a "
                "plain payload instead",
            )

    def _unpicklable_reason(
        self, index: ProjectIndex, cls: ClassInfo, visited: Set[str]
    ) -> Optional[str]:
        """Why ``cls`` cannot pickle, tracing through annotated fields."""
        if cls.qualname in visited:
            return None
        visited.add(cls.qualname)
        for klass in index.mro(cls):
            if klass.methods.keys() & {
                "__getstate__",
                "__reduce__",
                "__reduce_ex__",
            }:
                return None
        for attr, factory in sorted(cls.field_value_calls.items()):
            if factory in _UNPICKLABLE_FACTORIES:
                return f"field `{cls.name}.{attr}` holds `{factory}`"
            producer = index.functions.get(factory)
            if producer is not None and producer.is_generator:
                return (
                    f"field `{cls.name}.{attr}` holds a generator from "
                    f"`{factory}`"
                )
        for attr, ref in sorted(cls.field_types.items()):
            inner = index.class_of(ref)
            if inner is None and ref.elem is not None:
                inner = index.class_of(ref.elem)
            if inner is None:
                continue
            reason = self._unpicklable_reason(index, inner, visited)
            if reason is not None:
                return f"field `{cls.name}.{attr}`: {reason}"
        return None


# ---------------------------------------------------------------------------
# PQ104 — shared-memory segments close (and unlink) on all paths
# ---------------------------------------------------------------------------


class SharedMemoryLifecycleRule(ProjectRule):
    """PQ104: every ``SharedMemory`` has ``close()`` (and ``unlink()``) on all paths.

    A leaked ``/dev/shm`` segment outlives the process — the sharded
    engine's record transport would bleed host memory run over run, and
    a created-but-never-unlinked segment collides on name reuse.  The
    rule finds each ``shared_memory.SharedMemory(...)`` call and
    requires one of the shapes the tree uses: the call is a ``with``
    context expression, or its result is bound to a name that a
    ``try``/``finally`` in the same scope closes (``name.close()`` in
    the ``finally``), plus ``name.unlink()`` when the call passes
    ``create=True`` — the creator owns the segment's lifetime, an
    attacher only its mapping.  An unbound call (``SharedMemory(...)``
    as a bare expression or argument) can never be cleaned up and is
    always flagged.
    """

    code = "PQ104"
    name = "shm-lifecycle"
    summary = "SharedMemory close()/unlink() on all paths (try/finally or with)"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        by_module = _functions_by_module(index)
        for module in modules:
            scopes: List[ast.AST] = [module.tree]
            scopes.extend(
                info.node for info in by_module.get(id(module), ())
            )
            for scope_node in scopes:
                yield from self._check_scope(index, module, scope_node)

    def _check_scope(
        self, index: ProjectIndex, module: SourceModule, scope_node: ast.AST
    ) -> Iterator[Finding]:
        parents = _ancestors(scope_node)
        for node in walk_shallow(scope_node):
            if not isinstance(node, ast.Call):
                continue
            canonical = index.canonical_call(module, node)
            if canonical != "multiprocessing.shared_memory.SharedMemory":
                continue
            created = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if _enclosing_with_item(parents, node) is not None:
                continue
            bound = self._bound_name(parents, node)
            if bound is None:
                yield self.finding(
                    module,
                    node,
                    "SharedMemory(...) is never bound to a name; its "
                    "close()/unlink() cannot run — use `with` or bind "
                    "and try/finally",
                )
                continue
            missing = self._missing_cleanup(scope_node, bound, created)
            if missing:
                wanted = " and ".join(missing)
                yield self.finding(
                    module,
                    node,
                    f"SharedMemory bound to `{bound}` has no {wanted} in "
                    "a `finally:` on this path; a leaked segment "
                    "outlives the process",
                )

    @staticmethod
    def _bound_name(
        parents: Dict[int, ast.AST], call: ast.Call
    ) -> Optional[str]:
        parent = parents.get(id(call))
        if (
            isinstance(parent, ast.Assign)
            and parent.value is call
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            return parent.targets[0].id
        if (
            isinstance(parent, ast.AnnAssign)
            and parent.value is call
            and isinstance(parent.target, ast.Name)
        ):
            return parent.target.id
        return None

    @staticmethod
    def _missing_cleanup(
        scope_node: ast.AST, name: str, created: bool
    ) -> List[str]:
        """Which of close()/unlink() no ``finally:`` in this scope calls."""
        wanted = {"close"} | ({"unlink"} if created else set())
        found: Set[str] = set()
        for node in walk_shallow(scope_node):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for sub in ast.walk(final_stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in wanted
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == name
                    ):
                        found.add(sub.func.attr)
        return sorted(f"{attr}()" for attr in wanted - found)


# ---------------------------------------------------------------------------
# PQ105 — no await while holding a threading.Lock
# ---------------------------------------------------------------------------


class AwaitUnderLockRule(ProjectRule):
    """PQ105: an ``await`` must never sit inside ``with <threading lock>:``.

    A coroutine that awaits while holding a ``threading.Lock`` parks the
    lock across an arbitrary suspension: the ingest thread then blocks
    on a lock whose owner is waiting for the event loop, which is
    serving the connection that blocked — the classic loop/thread
    deadlock.  The rule walks every ``async def`` in the project, finds
    synchronous ``with`` blocks whose context expression looks like a
    threading lock (``self._lock``, ``threading.Lock()``, or any
    ``*_lock`` name — ``async with`` asyncio locks are exempt by
    shape), and flags any ``await`` lexically inside.  Hold the lock
    only around the synchronous critical section, or switch the shared
    state to an ``asyncio.Lock``.
    """

    code = "PQ105"
    name = "await-under-lock"
    summary = "no await while holding a threading.Lock"

    def check_project(
        self, modules: Sequence[SourceModule], index: ProjectIndex
    ) -> Iterator[Finding]:
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            if not info.is_async:
                continue
            for with_node, lock_expr in lock_scopes(index, info):
                for stmt in with_node.body:
                    for sub in walk_shallow(stmt):
                        if isinstance(sub, ast.Await):
                            label = _cg_dotted_name(lock_expr) or "<lock>"
                            yield self.finding(
                                info.module,
                                sub,
                                f"await while holding threading lock "
                                f"`{label}` in {info.short}; release the "
                                "lock before suspending or use "
                                "asyncio.Lock",
                            )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULE_REGISTRY: Dict[str, Type[FileRule]] = {
    rule.code: rule
    for rule in (
        DeterminismRule,
        RegisterWidthRule,
        EngineParityRule,
        ErrorTaxonomyRule,
        ApiSurfaceRule,
        AsyncBlockingRule,
        ObsLockDisciplineRule,
        PoolPicklabilityRule,
        SharedMemoryLifecycleRule,
        AwaitUnderLockRule,
    )
}


def rule_codes() -> List[str]:
    """Every registered rule code, sorted (``PQ001`` … ``PQ005``)."""
    return sorted(RULE_REGISTRY)


def all_rules(
    only: Optional[Iterable[str]] = None,
) -> List[FileRule]:
    """Instantiate the catalogue (optionally restricted to ``only``)."""
    if only is None:
        selected = rule_codes()
    else:
        selected = []
        for code in only:
            if code not in RULE_REGISTRY:
                raise KeyError(f"unknown pqlint rule: {code}")
            selected.append(code)
    return [RULE_REGISTRY[code]() for code in selected]
