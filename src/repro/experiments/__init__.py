"""Shared experiment harness used by the benchmarks and examples.

* :mod:`~repro.experiments.runner` — generate a workload, push it through
  the FIFO fast path, drive PrintQueue (and optionally the baselines)
  over the dequeue-event stream, and keep the lossless ground truth.
* :mod:`~repro.experiments.sampling` — victim selection per queue-depth
  band (the 1k-2k ... >20k buckets of Figure 9).
* :mod:`~repro.experiments.evaluation` — score AQ/DQ/baseline queries
  against the taxonomy oracle.
"""

from repro.experiments.runner import (
    ExperimentRun,
    drive_printqueue,
    run_trace_through_fifo,
    simulate_workload,
)
from repro.experiments.sampling import DEPTH_BANDS, band_label, sample_victims_by_band
from repro.experiments.evaluation import (
    evaluate_async_queries,
    evaluate_baseline,
    evaluate_dataplane_queries,
)

__all__ = [
    "ExperimentRun",
    "simulate_workload",
    "run_trace_through_fifo",
    "drive_printqueue",
    "DEPTH_BANDS",
    "band_label",
    "sample_victims_by_band",
    "evaluate_async_queries",
    "evaluate_dataplane_queries",
    "evaluate_baseline",
]
