"""Structured experiment results: collect, persist, and render.

Benches print human-readable tables, but EXPERIMENTS.md and regression
tracking want machine-readable artifacts too.  :class:`ResultStore`
accumulates named tables (rows of plain values) and writes them to a
single JSON file; :func:`render_markdown` turns a store back into the
paper-vs-measured tables used in the documentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union


@dataclass
class ResultTable:
    """One named table of results (an experiment artifact)."""

    name: str
    header: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.header):
            raise ValueError(
                f"row width {len(values)} != header width {len(self.header)}"
            )
        self.rows.append(list(values))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "header": self.header,
            "rows": self.rows,
            "notes": self.notes,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ResultTable":
        table = ResultTable(
            name=data["name"], header=list(data["header"]), notes=data.get("notes", "")
        )
        table.rows = [list(r) for r in data["rows"]]
        return table


class ResultStore:
    """A collection of result tables, persisted as one JSON document."""

    def __init__(self) -> None:
        self._tables: Dict[str, ResultTable] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str, header: Sequence[str], notes: str = "") -> ResultTable:
        """Get-or-create a table; header must match on reuse."""
        existing = self._tables.get(name)
        if existing is not None:
            if existing.header != list(header):
                raise ValueError(f"table {name!r} exists with a different header")
            return existing
        table = ResultTable(name=name, header=list(header), notes=notes)
        self._tables[name] = table
        return table

    def get(self, name: str) -> Optional[ResultTable]:
        return self._tables.get(name)

    def tables(self) -> List[ResultTable]:
        return [self._tables[k] for k in sorted(self._tables)]

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        payload = {"version": 1, "tables": [t.to_dict() for t in self.tables()]}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path]) -> "ResultStore":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise ValueError(f"unsupported results version: {payload.get('version')}")
        store = ResultStore()
        for data in payload["tables"]:
            table = ResultTable.from_dict(data)
            store._tables[table.name] = table
        return store

    def merge(self, other: "ResultStore") -> None:
        """Absorb another store's tables (other wins on name clashes)."""
        for table in other.tables():
            self._tables[table.name] = table


def render_markdown(store: ResultStore) -> str:
    """Render every table as GitHub-flavoured markdown."""
    chunks: List[str] = []
    for table in store.tables():
        chunks.append(f"### {table.name}\n")
        if table.notes:
            chunks.append(table.notes + "\n")
        chunks.append("| " + " | ".join(str(h) for h in table.header) + " |")
        chunks.append("|" + "---|" * len(table.header))
        for row in table.rows:
            chunks.append("| " + " | ".join(str(c) for c in row) + " |")
        chunks.append("")
    return "\n".join(chunks)
