"""Terminal renderers for the paper's figure shapes.

Pure-text plotting used by the examples and benches: a time-series
renderer for the Figure-16a queue-depth timeline and a CDF renderer for
Figure 10.  Kept dependency-free so benches stay runnable anywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def timeline(
    times: Sequence[int],
    values: Sequence[int],
    buckets: int = 60,
    height: int = 12,
    unit_divisor: float = 1e6,
    unit_label: str = "ms",
) -> str:
    """Render max-per-bucket values of a time series as an ASCII area plot."""
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    if not times:
        return "(no data)"
    if buckets < 1 or height < 1:
        raise ValueError("buckets and height must be positive")
    t0, t1 = times[0], times[-1]
    span = max(1, t1 - t0)
    maxima = [0] * buckets
    for t, v in zip(times, values):
        bucket = min(buckets - 1, (t - t0) * buckets // span)
        if v > maxima[bucket]:
            maxima[bucket] = v
    peak = max(max(maxima), 1)
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        rows.append(
            f"{threshold:>8.0f} |"
            + "".join("#" if m >= threshold else " " for m in maxima)
        )
    rows.append(" " * 9 + "+" + "-" * buckets)
    left = f"{t0 / unit_divisor:.1f} {unit_label}"
    right = f"{t1 / unit_divisor:.1f} {unit_label}"
    rows.append(" " * 10 + left + " " * max(1, buckets - len(left) - len(right)) + right)
    return "\n".join(rows)


def cdf(
    series: Sequence[Tuple[str, Iterable[float]]],
    width: int = 50,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render one CDF line per (label, values) pair over [lo, hi]."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    lines = []
    for label, values in series:
        data = sorted(values)
        if not data:
            lines.append(f"{label:>12}: (empty)")
            continue
        cells = []
        for i in range(width):
            x = lo + (hi - lo) * (i + 1) / width
            frac = sum(1 for v in data if v <= x) / len(data)
            cells.append(" .:-=+*#%@"[min(9, int(frac * 9.999))])
        lines.append(f"{label:>12}: |{''.join(cells)}|")
    lines.append(
        f"{'':>12}   {lo:<8g}{'':^{max(0, width - 16)}}{hi:>8g}"
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (eight-level blocks) of a series."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo = min(values)
    hi = max(values)
    span = hi - lo or 1.0
    return "".join(blocks[min(7, int((v - lo) / span * 7.999))] for v in values)
