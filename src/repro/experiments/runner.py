"""Workload → FIFO → PrintQueue/baselines experiment runner.

The main harness path is offline and fast: a trace's arrivals go through
the vectorised FIFO fast path; the resulting dequeue records (sorted by
time) are replayed as a merged enqueue/dequeue event stream into
PrintQueue's per-port pipeline, with periodic polls at every set-period
boundary and optional data-plane triggers at chosen victims' dequeues.

Replay defaults to the batched ingest engine
(:class:`~repro.engine.IngestPipeline`), which is bit-identical to the
scalar reference loop kept here as
:func:`drive_printqueue_scalar` (the equivalence suite asserts it).  The
event-driven :class:`~repro.switch.switchsim.Switch` path stays
available for non-FIFO schedulers and is validated against this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


from repro.baselines.interval import FixedIntervalEstimator
from repro.core.config import PrintQueueConfig
from repro.core.printqueue import DataPlaneQueryResult, PrintQueuePort
from repro.core.queries import QueryInterval
from repro.core.taxonomy import CulpritTaxonomy
from repro.obs.metrics import Metrics
from repro.obs.report import RunReport
from repro.store import SnapshotStore
from repro.switch.fastpath import fifo_record_batch, fifo_timestamps
from repro.switch.records import RecordBatch
from repro.switch.telemetry import DequeueRecord
from repro.traffic.distributions import distribution_by_name
from repro.traffic.generator import PoissonWorkload, WorkloadConfig
from repro.traffic.trace import Trace
from repro.units import DEFAULT_LINK_RATE_BPS


@dataclass
class ExperimentRun:
    """Everything one experiment needs: records, oracle, and PrintQueue."""

    trace: Trace
    records: Sequence[DequeueRecord]
    pq: PrintQueuePort
    taxonomy: CulpritTaxonomy
    drops: int = 0
    dp_results: Dict[int, DataPlaneQueryResult] = field(default_factory=dict)
    metrics: Optional[Metrics] = None

    @property
    def mean_packet_interval_ns(self) -> float:
        """Mean inter-departure time during the run (for coefficient z)."""
        if len(self.records) < 2:
            return float("inf")
        span = self.records[-1].deq_timestamp - self.records[0].deq_timestamp
        return span / (len(self.records) - 1)

    def report(self) -> RunReport:
        """Build a :class:`~repro.obs.report.RunReport` for this run."""
        return RunReport.from_port(
            self.pq,
            metrics=self.metrics,
            num_records=len(self.records),
            drops=self.drops,
        )


def run_trace_through_fifo(
    trace: Trace,
    rate_bps: int = DEFAULT_LINK_RATE_BPS,
    capacity_pkts: Optional[int] = None,
) -> Tuple[List[DequeueRecord], int]:
    """Vectorised FIFO pass; returns dequeue records in dequeue order."""
    result = fifo_timestamps(trace.arrival_ns, trace.size_bytes, rate_bps, capacity_pkts)
    flows = trace.flows
    flow_index = trace.flow_index[result.kept]
    sizes = trace.size_bytes[result.kept]
    records = [
        DequeueRecord(
            flow=flows[int(flow_index[i])],
            size_bytes=int(sizes[i]),
            enq_timestamp=int(result.enq_timestamp[i]),
            deq_timestamp=int(result.deq_timestamp[i]),
            enq_qdepth=int(result.enq_qdepth[i]),
        )
        for i in range(len(result.kept))
    ]
    return records, result.drops


def run_trace_through_fifo_batch(
    trace: Trace,
    rate_bps: int = DEFAULT_LINK_RATE_BPS,
    capacity_pkts: Optional[int] = None,
) -> Tuple[RecordBatch, int]:
    """FIFO pass returning a :class:`~repro.switch.records.RecordBatch`.

    Same simulation as :func:`run_trace_through_fifo`, but the dequeue
    log stays columnar (one structured record array) instead of a list
    of per-packet objects — the input the fused ingest tier consumes.
    """
    return fifo_record_batch(trace, rate_bps, capacity_pkts)


def drive_printqueue(
    records: Sequence[DequeueRecord],
    pq: PrintQueuePort,
    dp_trigger_indices: Optional[Set[int]] = None,
    baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
    engine: str = "batched",
) -> Dict[int, DataPlaneQueryResult]:
    """Replay a dequeue log as a merged enqueue/dequeue event stream.

    ``dp_trigger_indices`` marks record positions (in dequeue order) at
    whose dequeue instant an on-demand read+query fires, emulating a
    data-plane trigger for exactly those victims.  Baseline estimators,
    if given, are fed every dequeue too.

    ``engine`` selects ``"batched"`` (the default: poll-boundary-aligned
    array batches via :class:`repro.engine.IngestPipeline`),
    ``"fused"`` (the record-array single-pass kernel,
    :class:`repro.engine.FusedIngestPipeline` — ``records`` may be a
    :class:`~repro.switch.records.RecordBatch` to skip re-packing),
    ``"sharded"`` (the fused kernel behind the subprocess shard driver,
    :class:`repro.engine.sharded.ShardedIngestPipeline`), or
    ``"scalar"`` (the per-event reference loop).  All four produce
    identical snapshots, query results, and structure counters.
    """
    if engine == "batched":
        from repro.engine.ingest import IngestPipeline

        return IngestPipeline(
            pq, records, dp_trigger_indices=dp_trigger_indices, baselines=baselines
        ).run()
    if engine == "fused":
        from repro.engine.fused import FusedIngestPipeline

        return FusedIngestPipeline(
            pq, records, dp_trigger_indices=dp_trigger_indices, baselines=baselines
        ).run()
    if engine == "sharded":
        from repro.engine.sharded import ShardedIngestPipeline

        return ShardedIngestPipeline(
            pq, records, dp_trigger_indices=dp_trigger_indices, baselines=baselines
        ).run()
    if engine != "scalar":
        raise ValueError(f"unknown ingest engine {engine!r}")
    return drive_printqueue_scalar(records, pq, dp_trigger_indices, baselines)


def drive_printqueue_scalar(
    records: Sequence[DequeueRecord],
    pq: PrintQueuePort,
    dp_trigger_indices: Optional[Set[int]] = None,
    baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
) -> Dict[int, DataPlaneQueryResult]:
    """The per-event reference implementation of :func:`drive_printqueue`.

    Kept scalar on purpose: the batched engine's equivalence suite replays
    the same log through both paths and asserts record-for-record equal
    snapshots and estimates.
    """
    triggers = dp_trigger_indices or set()
    dp_results: Dict[int, DataPlaneQueryResult] = {}
    baseline_list = list(baselines or [])

    # Merged event iteration: enqueues ordered by enq_timestamp (arrival
    # order for a FIFO) and dequeues by deq_timestamp; enqueue wins ties.
    n = len(records)
    enq_order = sorted(range(n), key=lambda i: records[i].enq_timestamp)
    deq_order = range(n)  # records are already in dequeue order
    e = 0
    d = 0
    depth = 0
    while e < n or d < n:
        take_enq = False
        if e < n and d < n:
            take_enq = (
                records[enq_order[e]].enq_timestamp <= records[d].deq_timestamp
            )
        elif e < n:
            take_enq = True
        if take_enq:
            record = records[enq_order[e]]
            depth += 1
            pq.process_enqueue(record.flow, record.enq_timestamp, depth)
            e += 1
        else:
            record = records[d]
            depth -= 1
            pq.process_dequeue(record.flow, record.deq_timestamp, depth)
            for baseline in baseline_list:
                baseline.update(record.flow, record.deq_timestamp)
            if d in triggers:
                interval = QueryInterval.for_victim(
                    record.enq_timestamp, record.deq_timestamp
                )
                result = pq._dp_query_interval(record.deq_timestamp, interval)
                if result is not None:
                    dp_results[d] = result
            d += 1
    if records:
        end_ns = records[-1].deq_timestamp + 1
        pq.finish(end_ns)
        for baseline in baseline_list:
            baseline.finish()
    return dp_results


def simulate_workload(
    workload: str,
    duration_ns: int,
    load: float = 1.1,
    config: Optional[PrintQueueConfig] = None,
    seed: int = 1,
    rate_bps: int = DEFAULT_LINK_RATE_BPS,
    dp_trigger_indices: Optional[Set[int]] = None,
    baselines: Optional[Iterable[FixedIntervalEstimator]] = None,
    trace: Optional[Trace] = None,
    engine: str = "batched",
    metrics: Optional[Metrics] = None,
    faults: Optional[object] = None,
    retry_policy: Optional[object] = None,
    store: Optional[SnapshotStore] = None,
) -> ExperimentRun:
    """End-to-end run: generate (or take) a trace, queue it, measure it.

    ``workload`` is one of ``ws`` / ``dm`` / ``uw`` (ignored when a
    ``trace`` is passed).  The PrintQueue coefficient ``z`` is derived
    from the measured mean packet interval, matching the paper's
    line-rate-forwarding assumption during congestion.  ``engine``
    selects the ingest path (see :func:`drive_printqueue`).  Passing a
    ``metrics`` registry attaches timing/tally instrumentation to the
    port; structure-level counters are collected either way via
    :meth:`ExperimentRun.report`.  ``faults`` (a profile name,
    :class:`~repro.faults.FaultPlan`, or injector) runs the control
    plane under seeded fault injection with the resilient read path;
    the default ``None`` keeps the perfect channel and bit-identical
    outputs.  ``store`` selects the snapshot-store backend the port's
    analysis program writes to (default: in-memory); passing a
    write-mode :class:`~repro.store.MmapStore` makes the run's poll
    stream a replayable on-disk recording.
    """
    if trace is None:
        distribution = distribution_by_name(workload)
        wl_config = WorkloadConfig(
            load=load, link_rate_bps=rate_bps, duration_ns=duration_ns
        )
        generator = PoissonWorkload(distribution, wl_config, seed=seed)
        if metrics is None:
            trace = generator.generate()
        else:
            t0 = perf_counter_ns()
            trace = generator.generate()
            metrics.histogram("pq_ingest_stage_generate_ns").observe(
                perf_counter_ns() - t0
            )
    records: Sequence[DequeueRecord]
    t0 = perf_counter_ns() if metrics is not None else 0
    if engine in ("fused", "sharded"):
        # Stay columnar end-to-end: the batch is a Sequence of lazily
        # materialised DequeueRecords, so the taxonomy oracle and report
        # still read it like the object list.
        records, drops = run_trace_through_fifo_batch(trace, rate_bps)
    else:
        records, drops = run_trace_through_fifo(trace, rate_bps)
    if metrics is not None:
        metrics.histogram("pq_ingest_stage_fifo_ns").observe(
            perf_counter_ns() - t0
        )

    cfg = config or PrintQueueConfig()
    # Use the measured inter-departure time as d for the coefficients.
    if len(records) >= 2:
        span = records[-1].deq_timestamp - records[0].deq_timestamp
        d_ns = span / (len(records) - 1)
    else:
        d_ns = float(cfg.min_pkt_tx_delay_ns)
    # Instant on-demand reads: every sampled victim gets a DQ result.  The
    # realistic read-cost model (trigger rejection under PCIe pressure) is
    # exercised by the query-throughput micro-benchmark instead.
    pq = PrintQueuePort(
        cfg,
        d_ns=d_ns,
        model_dp_read_cost=False,
        metrics=metrics,
        faults=faults,
        retry_policy=retry_policy,
        store=store,
    )
    dp_results = drive_printqueue(
        records, pq, dp_trigger_indices, baselines, engine=engine
    )
    taxonomy = CulpritTaxonomy(records)
    return ExperimentRun(
        trace=trace,
        records=records,
        pq=pq,
        taxonomy=taxonomy,
        drops=drops,
        dp_results=dp_results,
        metrics=metrics,
    )
