"""Scoring of PrintQueue and baseline queries against the oracle.

For each sampled victim, the direct-culprit ground truth is the per-flow
count of packets dequeued during the victim's queuing interval
(Section 7.1's methodology: "queries for indirect culprits are
identical", so direct queries are what all the accuracy figures score).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.interval import FixedIntervalEstimator
from repro.core.printqueue import DataPlaneQueryResult, PrintQueuePort
from repro.core.queries import FlowEstimate, QueryInterval
from repro.core.taxonomy import CulpritTaxonomy
from repro.metrics.accuracy import AccuracyScore, precision_recall
from repro.switch.telemetry import DequeueRecord


def victim_interval(record: DequeueRecord) -> QueryInterval:
    """The direct-culprit query interval of a victim record."""
    return QueryInterval.for_victim(record.enq_timestamp, record.deq_timestamp)


def ground_truth_direct(
    taxonomy: CulpritTaxonomy, record: DequeueRecord
) -> FlowEstimate:
    """Oracle per-flow counts of the victim's direct culprits."""
    return taxonomy.direct(record)


def evaluate_async_queries(
    pq: PrintQueuePort,
    taxonomy: CulpritTaxonomy,
    records: Sequence[DequeueRecord],
    victim_indices: Sequence[int],
    batch: bool = True,
) -> List[AccuracyScore]:
    """Score asynchronous (periodic-snapshot) queries for the victims.

    ``batch=True`` (the default) answers all victims in one
    ``pq.query(intervals=...)`` call over the compiled columnar plan;
    ``batch=False`` keeps the original one-query-per-victim scalar loop.
    The two paths return identical estimates, so scores are unchanged —
    only the snapshot sort/compile/coefficient work is amortised.
    """
    indices = list(victim_indices)
    if not indices:
        return []
    if batch:
        intervals = [victim_interval(records[i]) for i in indices]
        estimates = [r.estimate for r in pq.query(intervals=intervals)]
    else:
        estimates = [
            pq.query(interval=victim_interval(records[i])).estimate for i in indices
        ]
    scores = []
    for index, estimate in zip(indices, estimates):
        truth = ground_truth_direct(taxonomy, records[index])
        scores.append(precision_recall(estimate, truth))
    return scores


def evaluate_dataplane_queries(
    dp_results: Dict[int, DataPlaneQueryResult],
    taxonomy: CulpritTaxonomy,
    records: Sequence[DequeueRecord],
    victim_indices: Optional[Sequence[int]] = None,
) -> List[AccuracyScore]:
    """Score the completed on-demand queries for the chosen victims."""
    indices = victim_indices if victim_indices is not None else sorted(dp_results)
    scores = []
    for index in indices:
        result = dp_results.get(index)
        if result is None:
            continue  # trigger was rejected (read lock); skip, as on HW
        truth = ground_truth_direct(taxonomy, records[index])
        scores.append(precision_recall(result.estimate, truth))
    return scores


def evaluate_baseline(
    estimator: FixedIntervalEstimator,
    taxonomy: CulpritTaxonomy,
    records: Sequence[DequeueRecord],
    victim_indices: Sequence[int],
) -> List[AccuracyScore]:
    """Score a fixed-interval baseline's prorated estimates."""
    scores = []
    for index in victim_indices:
        record = records[index]
        estimate = estimator.query(victim_interval(record))
        truth = ground_truth_direct(taxonomy, record)
        scores.append(precision_recall(estimate, truth))
    return scores
