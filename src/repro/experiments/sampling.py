"""Victim sampling by queue depth band.

Figure 9 classifies queries into six groups by the queuing the victim
encountered: 1k-2k, 2k-5k, 5k-10k, 10k-15k, 15k-20k, and above 20k.  This
module reproduces that bucketing and samples victims uniformly at random
from each band (the paper samples 100 per band).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.switch.telemetry import DequeueRecord

#: Figure-9 queue-depth bands as (lower inclusive, upper exclusive).
DEPTH_BANDS: Tuple[Tuple[int, Optional[int]], ...] = (
    (1_000, 2_000),
    (2_000, 5_000),
    (5_000, 10_000),
    (10_000, 15_000),
    (15_000, 20_000),
    (20_000, None),
)


def band_label(band: Tuple[int, Optional[int]]) -> str:
    """Human-readable label of a depth band, e.g. "1-2k" or ">20k"."""
    lo, hi = band
    if hi is None:
        return f">{lo // 1000}k"
    return f"{lo // 1000}-{hi // 1000}k"


def sample_victims_by_band(
    records: Sequence[DequeueRecord],
    per_band: int = 100,
    bands: Sequence[Tuple[int, Optional[int]]] = DEPTH_BANDS,
    seed: int = 42,
) -> Dict[Tuple[int, Optional[int]], List[int]]:
    """Sample up to ``per_band`` victim indices per depth band.

    Returns record *indices* (positions in dequeue order), which is what
    both the taxonomy oracle and the data-plane trigger replay need.
    """
    rng = random.Random(seed)
    buckets: Dict[Tuple[int, Optional[int]], List[int]] = {b: [] for b in bands}
    for index, record in enumerate(records):
        depth = record.enq_qdepth
        for band in bands:
            lo, hi = band
            if depth >= lo and (hi is None or depth < hi):
                buckets[band].append(index)
                break
    return {
        band: sorted(rng.sample(indices, min(per_band, len(indices))))
        for band, indices in buckets.items()
    }
