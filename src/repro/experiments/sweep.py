"""Generic parameter-sweep harness over PrintQueue configurations.

The evaluation repeatedly measures accuracy across a grid of
``(alpha, k, T, ...)`` configurations on a fixed workload (Figures 11,
13, 15).  :class:`ConfigSweep` factors that pattern out: define the
grid, get one :class:`SweepPoint` per configuration with the accuracy
summary, overhead numbers, and advisor verdict attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.advisor import Advice, advise
from repro.core.config import PrintQueueConfig
from repro.experiments.evaluation import evaluate_async_queries
from repro.experiments.runner import ExperimentRun, simulate_workload
from repro.experiments.sampling import sample_victims_by_band
from repro.metrics.accuracy import summarize_scores
from repro.metrics.overhead import printqueue_storage_mbps, sram_utilization


@dataclass
class SweepPoint:
    """One configuration's measured results."""

    label: str
    config: PrintQueueConfig
    accuracy: Dict[str, float]
    storage_mbps: float
    sram_fraction: float
    advice: List[Advice] = field(default_factory=list)

    @property
    def mean_precision(self) -> float:
        return self.accuracy["mean_precision"]

    @property
    def mean_recall(self) -> float:
        return self.accuracy["mean_recall"]


class ConfigSweep:
    """Run one workload once per configuration and score sampled victims.

    Parameters
    ----------
    workload:
        ``ws`` / ``dm`` / ``uw``.
    base_config:
        The configuration each grid entry is derived from via
        ``dataclasses.replace``.
    duration_ns / load / seed:
        Trace parameters (identical across the grid so accuracy
        differences are attributable to the configuration).
    victims_per_band:
        Victim sample size per Figure-9 depth band.
    """

    def __init__(
        self,
        workload: str,
        base_config: PrintQueueConfig,
        duration_ns: int,
        load: float = 1.15,
        seed: int = 42,
        victims_per_band: int = 20,
    ) -> None:
        self.workload = workload
        self.base_config = base_config
        self.duration_ns = duration_ns
        self.load = load
        self.seed = seed
        self.victims_per_band = victims_per_band
        self._runs: Dict[PrintQueueConfig, ExperimentRun] = {}

    def _run_for(self, config: PrintQueueConfig) -> ExperimentRun:
        if config not in self._runs:
            self._runs[config] = simulate_workload(
                self.workload,
                duration_ns=self.duration_ns,
                load=self.load,
                config=config,
                seed=self.seed,
            )
        return self._runs[config]

    def point(self, label: str, **overrides) -> SweepPoint:
        """Measure one grid entry (config = base + overrides)."""
        config = replace(self.base_config, **overrides) if overrides else self.base_config
        run = self._run_for(config)
        victims = sample_victims_by_band(
            run.records, per_band=self.victims_per_band
        )
        indices = sorted({i for idxs in victims.values() for i in idxs})
        scores = evaluate_async_queries(run.pq, run.taxonomy, run.records, indices)
        return SweepPoint(
            label=label,
            config=config,
            accuracy=summarize_scores(scores),
            storage_mbps=printqueue_storage_mbps(config),
            sram_fraction=sram_utilization(config),
            advice=advise(config, packet_interval_ns=run.mean_packet_interval_ns),
        )

    def grid(self, entries: Sequence[Tuple[str, Dict]]) -> List[SweepPoint]:
        """Measure a list of ``(label, overrides)`` entries."""
        return [self.point(label, **overrides) for label, overrides in entries]


def pareto_front(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Configurations not dominated on (storage ASC, recall DESC).

    A point dominates another if it needs no more storage *and* achieves
    at least the recall (strictly better in one).  Returns the front
    sorted by storage.
    """
    pts = sorted(points, key=lambda p: (p.storage_mbps, -p.mean_recall))
    front: List[SweepPoint] = []
    best_recall = -1.0
    for p in pts:
        if p.mean_recall > best_recall:
            front.append(p)
            best_recall = p.mean_recall
    return front
