"""Stale-cell filtering (Algorithm 3).

Registers are never cleared in hardware, so a freshly read window mixes
live cells with leftovers from older cycles.  The filter locates the
latest cell of window 0 and then, per window, retains only the cells that
lie within one window period of that window's own reference point:

* cells at index ``<= Idx`` must carry the reference cycle ID,
* cells at index ``> Idx`` must carry the reference cycle ID minus one
  (written during the previous cycle but still within one window period).

The reference TTS of window ``i+1`` is derived from window ``i``'s as
``(TTS - 2^k) >> alpha`` — the most recently *passed* cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PrintQueueConfig
from repro.core.timewindow import EMPTY, TimeWindow
from repro.switch.packet import FlowKey


@dataclass
class FilterStats:
    """Running totals over Algorithm-3 filter passes (repro.obs).

    One instance accumulates across every poll of a run: ``cells_scanned``
    counts occupied cells in the frozen reads (registers are never
    cleared, so this includes stale leftovers), ``cells_retained`` counts
    the cells that survive the filter.
    """

    cells_scanned: int = 0
    cells_retained: int = 0

    @property
    def cells_discarded(self) -> int:
        """Stale cells the filter removed."""
        return self.cells_scanned - self.cells_retained


class FilteredWindow:
    """The live contents of one window after Algorithm 3.

    The retained cells exist in up to three interchangeable
    representations, materialised lazily on first access so each
    consumer pays only for the view it reads:

    * ``cells`` — ``(tts, flow)`` tuples sorted by TTS (the scalar query
      walk bisects these).  A cell's absolute time coverage is
      ``[tts << shift, (tts + 1) << shift)``.
    * ``tts_array`` / ``cell_flows`` — the same cells columnar: a sorted
      ``int64`` TTS array and the aligned flow-object list (the compiled
      query plan and the store encoder consume these).
    * ``flow_idx`` / ``flow_table`` — fully index-based: an ``int``
      column into a shared flow table.  This is what the fused ingest
      tier (:mod:`repro.engine.fused`) and zero-copy PQSTORE1 decodes
      produce; the compiled plan interns it vectorised without touching
      per-cell objects.

    Construction accepts any of the three (``cells`` alone, columnar
    ``tts_array`` + ``cell_flows``, or ``tts_array`` + ``flow_idx`` +
    ``flow_table``); every other view derives on demand.  Equality and
    repr match the historical dataclass: ``(window_index, shift, cells,
    reference_tts)``, regardless of which representation was supplied.

    ``window_index`` is which of the T windows this is; ``shift`` the
    right-shift from nanoseconds to its TTS domain
    (``m0 + alpha * window_index``); ``reference_tts`` the TTS anchoring
    it (latest cell for window 0, derived for deeper windows; None when
    the whole set was empty).
    """

    __slots__ = (
        "window_index",
        "shift",
        "reference_tts",
        "_cells",
        "_tts_array",
        "_cell_flows",
        "_flow_idx",
        "_flow_table",
    )

    def __init__(
        self,
        window_index: int,
        shift: int,
        cells: Optional[List[Tuple[int, FlowKey]]] = None,
        reference_tts: Optional[int] = None,
        tts_array: Optional[np.ndarray] = None,
        cell_flows: Optional[List[FlowKey]] = None,
        *,
        flow_idx: Optional[np.ndarray] = None,
        flow_table: Optional[Sequence[FlowKey]] = None,
    ) -> None:
        if cells is None and tts_array is None:
            raise ValueError("FilteredWindow needs cells or tts_array")
        if cells is None and cell_flows is None and flow_idx is None:
            raise ValueError(
                "FilteredWindow needs cells, cell_flows, or flow_idx"
            )
        if flow_idx is not None and flow_table is None:
            raise ValueError("flow_idx requires flow_table")
        self.window_index = window_index
        self.shift = shift
        self.reference_tts = reference_tts
        self._cells = cells
        self._tts_array = tts_array
        self._cell_flows = cell_flows
        self._flow_idx = flow_idx
        self._flow_table = flow_table

    # -- lazy views --------------------------------------------------------

    @property
    def cells(self) -> List[Tuple[int, FlowKey]]:
        """``(tts, flow)`` tuples, sorted by TTS (derived on demand)."""
        if self._cells is None:
            self._cells = list(zip(self.tts_array.tolist(), self.cell_flows))
        return self._cells

    @property
    def tts_array(self) -> np.ndarray:
        """Sorted int64 TTS column (derived from ``cells`` on demand)."""
        if self._tts_array is None:
            cells = self._cells
            assert cells is not None
            self._tts_array = np.fromiter(
                (c[0] for c in cells), dtype=np.int64, count=len(cells)
            )
        return self._tts_array

    @property
    def cell_flows(self) -> List[FlowKey]:
        """Aligned flow objects (resolved through the table on demand)."""
        if self._cell_flows is None:
            if self._flow_idx is not None:
                table = self._flow_table
                assert table is not None
                self._cell_flows = [table[j] for j in self._flow_idx.tolist()]
            else:
                cells = self._cells
                assert cells is not None
                self._cell_flows = [c[1] for c in cells]
        return self._cell_flows

    @property
    def flow_idx(self) -> Optional[np.ndarray]:
        """Int flow-index column (None unless built index-based)."""
        return self._flow_idx

    @property
    def flow_table(self) -> Optional[Sequence[FlowKey]]:
        """The shared flow table ``flow_idx`` points into."""
        return self._flow_table

    @property
    def cell_count(self) -> int:
        """Number of retained cells, without materialising any view."""
        if self._tts_array is not None:
            return len(self._tts_array)
        cells = self._cells
        assert cells is not None
        return len(cells)

    # -- dataclass-compatible surface --------------------------------------

    def __repr__(self) -> str:
        return (
            f"FilteredWindow(window_index={self.window_index!r}, "
            f"shift={self.shift!r}, cells={self.cells!r}, "
            f"reference_tts={self.reference_tts!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        assert isinstance(other, FilteredWindow)
        return (
            self.window_index == other.window_index
            and self.shift == other.shift
            and self.cells == other.cells
            and self.reference_tts == other.reference_tts
        )

    #: mirror the eq-without-frozen dataclass this class replaced
    __hash__ = None  # type: ignore[assignment]

    def coverage_ns(self, k: int) -> Optional[Tuple[int, int]]:
        """Absolute [start, end) time range this window can speak for."""
        if self.reference_tts is None:
            return None
        end = (self.reference_tts + 1) << self.shift
        start = end - ((1 << k) << self.shift)
        return max(0, start), end


def filter_windows(
    windows: Sequence[TimeWindow],
    config: PrintQueueConfig,
    stats: Optional[FilterStats] = None,
) -> List[FilteredWindow]:
    """Apply Algorithm 3 to a snapshot of all T windows.

    ``stats``, when given, accumulates scanned/retained cell counts for
    this pass (the per-poll stale-filter observability counters).
    """
    if len(windows) != config.T:
        raise ValueError(f"expected {config.T} windows, got {len(windows)}")
    k = config.k
    mask = (1 << k) - 1

    latest = windows[0].latest_cell()
    if latest is None:
        # Entire structure is empty; nothing survives.
        return [
            FilteredWindow(
                i,
                config.shift(i),
                [],
                None,
                tts_array=np.empty(0, dtype=np.int64),
                cell_flows=[],
            )
            for i in range(config.T)
        ]

    tts = latest.tts(k)
    out: List[FilteredWindow] = []
    for i in range(config.T):
        window = windows[i]
        ref_index = tts & mask
        ref_cycle = tts >> k
        cycle_ids = window.cycle_ids
        # Collect the previous cycle's tail first so the survivors come
        # out sorted by TTS (older entries have strictly smaller TTS).
        # The per-cell scans are vectorised; only survivors touch Python
        # — and none at all for array-backed (fused) windows, whose flow
        # identity travels onward as an index column.
        cyc = np.asarray(cycle_ids, dtype=np.int64)
        if stats is not None:
            stats.cells_scanned += int(np.count_nonzero(cyc != EMPTY))
        prev_cycle = ref_cycle - 1
        prev_base = prev_cycle << k
        ref_base = ref_cycle << k
        if prev_cycle >= 0:
            tail = np.flatnonzero(cyc[ref_index + 1 :] == prev_cycle)
            tail += ref_index + 1
        else:
            tail = np.empty(0, dtype=np.intp)
        head = np.flatnonzero(cyc[: ref_index + 1] == ref_cycle)
        tts_array = np.concatenate(
            (
                tail.astype(np.int64) + np.int64(prev_base),
                head.astype(np.int64) + np.int64(ref_base),
            )
        )
        if stats is not None:
            stats.cells_retained += len(tts_array)
        window_fidx = getattr(window, "flow_idx", None)
        if window_fidx is not None:
            # Fused windows: gather the surviving flow indices in two
            # fancy-indexed reads; objects are never touched here.  The
            # tuple/object views derive lazily if something asks.
            survivors = np.concatenate((tail, head))
            fw = FilteredWindow(
                i,
                config.shift(i),
                None,
                tts,
                tts_array=tts_array,
                flow_idx=window_fidx[survivors].astype(np.int64),
                flow_table=getattr(window, "table"),
            )
        else:
            # Object-backed windows: gather the survivors' flow objects
            # through one object-array fancy index (pointer copies) in
            # place of a per-survivor Python lookup loop.
            flows = window.flows
            flows_arr = np.empty(len(flows), dtype=object)
            flows_arr[:] = flows
            survivors = np.concatenate((tail, head))
            cell_flows: List[FlowKey] = flows_arr[survivors].tolist()
            fw = FilteredWindow(
                i,
                config.shift(i),
                None,
                tts,
                tts_array=tts_array,
                cell_flows=cell_flows,
            )
        out.append(fw)
        # Reference for the next (older, more compressed) window: the most
        # recently passed cell is one full window period back.
        tts = (tts - (1 << k)) >> config.alpha
        if tts < 0:
            tts = 0
    return out
