"""Stale-cell filtering (Algorithm 3).

Registers are never cleared in hardware, so a freshly read window mixes
live cells with leftovers from older cycles.  The filter locates the
latest cell of window 0 and then, per window, retains only the cells that
lie within one window period of that window's own reference point:

* cells at index ``<= Idx`` must carry the reference cycle ID,
* cells at index ``> Idx`` must carry the reference cycle ID minus one
  (written during the previous cycle but still within one window period).

The reference TTS of window ``i+1`` is derived from window ``i``'s as
``(TTS - 2^k) >> alpha`` — the most recently *passed* cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PrintQueueConfig
from repro.core.timewindow import EMPTY, TimeWindow
from repro.switch.packet import FlowKey


@dataclass
class FilterStats:
    """Running totals over Algorithm-3 filter passes (repro.obs).

    One instance accumulates across every poll of a run: ``cells_scanned``
    counts occupied cells in the frozen reads (registers are never
    cleared, so this includes stale leftovers), ``cells_retained`` counts
    the cells that survive the filter.
    """

    cells_scanned: int = 0
    cells_retained: int = 0

    @property
    def cells_discarded(self) -> int:
        """Stale cells the filter removed."""
        return self.cells_scanned - self.cells_retained


@dataclass
class FilteredWindow:
    """The live contents of one window after Algorithm 3.

    Attributes
    ----------
    window_index:
        Which of the T windows this is.
    shift:
        Right-shift from nanoseconds to this window's TTS domain
        (``m0 + alpha * window_index``).
    cells:
        ``(tts, flow)`` for every retained cell.  A cell's absolute time
        coverage is ``[tts << shift, (tts + 1) << shift)``.
    reference_tts:
        The TTS anchoring this window (latest cell for window 0, derived
        for deeper windows).  None when the whole set was empty.
    tts_array / cell_flows:
        The same retained cells in columnar form — a sorted ``int64``
        TTS array and the aligned flow sequence — consumed by the
        compiled query plan (:mod:`repro.engine.queryplan`) without
        re-walking the tuple list.  Windows constructed by hand may
        leave them ``None``; the compiler then derives them from
        ``cells``.
    """

    window_index: int
    shift: int
    #: retained cells sorted by TTS (so interval queries can bisect)
    cells: List[Tuple[int, FlowKey]]
    reference_tts: Optional[int]
    tts_array: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    cell_flows: Optional[List[FlowKey]] = field(default=None, repr=False, compare=False)

    def coverage_ns(self, k: int) -> Optional[Tuple[int, int]]:
        """Absolute [start, end) time range this window can speak for."""
        if self.reference_tts is None:
            return None
        end = (self.reference_tts + 1) << self.shift
        start = end - ((1 << k) << self.shift)
        return max(0, start), end


def filter_windows(
    windows: Sequence[TimeWindow],
    config: PrintQueueConfig,
    stats: Optional[FilterStats] = None,
) -> List[FilteredWindow]:
    """Apply Algorithm 3 to a snapshot of all T windows.

    ``stats``, when given, accumulates scanned/retained cell counts for
    this pass (the per-poll stale-filter observability counters).
    """
    if len(windows) != config.T:
        raise ValueError(f"expected {config.T} windows, got {len(windows)}")
    k = config.k
    mask = (1 << k) - 1

    latest = windows[0].latest_cell()
    if latest is None:
        # Entire structure is empty; nothing survives.
        return [
            FilteredWindow(
                i,
                config.shift(i),
                [],
                None,
                tts_array=np.empty(0, dtype=np.int64),
                cell_flows=[],
            )
            for i in range(config.T)
        ]

    tts = latest.tts(k)
    out: List[FilteredWindow] = []
    for i in range(config.T):
        window = windows[i]
        ref_index = tts & mask
        ref_cycle = tts >> k
        cycle_ids = window.cycle_ids
        flows = window.flows
        # Collect the previous cycle's tail first so `cells` comes out
        # sorted by TTS (older entries have strictly smaller TTS).  The
        # per-cell scans are vectorised; only survivors touch Python.
        cyc = np.array(cycle_ids, dtype=np.int64)
        if stats is not None:
            stats.cells_scanned += int(np.count_nonzero(cyc != EMPTY))
        prev_cycle = ref_cycle - 1
        prev_base = prev_cycle << k
        ref_base = ref_cycle << k
        # Survivors come out columnar (sorted TTS array + aligned flow
        # list) for the compiled query plan; the tuple list view is
        # derived from the same arrays, so both stay consistent.
        if prev_cycle >= 0:
            tail = np.flatnonzero(cyc[ref_index + 1 :] == prev_cycle)
            tail += ref_index + 1
        else:
            tail = np.empty(0, dtype=np.intp)
        head = np.flatnonzero(cyc[: ref_index + 1] == ref_cycle)
        tts_array = np.concatenate(
            (
                tail.astype(np.int64) + np.int64(prev_base),
                head.astype(np.int64) + np.int64(ref_base),
            )
        )
        cell_flows: List[FlowKey] = [flows[j] for j in tail.tolist()]
        cell_flows.extend(flows[j] for j in head.tolist())
        cells: List[Tuple[int, FlowKey]] = list(
            zip(tts_array.tolist(), cell_flows)
        )
        if stats is not None:
            stats.cells_retained += len(cells)
        out.append(
            FilteredWindow(
                i,
                config.shift(i),
                cells,
                tts,
                tts_array=tts_array,
                cell_flows=cell_flows,
            )
        )
        # Reference for the next (older, more compressed) window: the most
        # recently passed cell is one full window period back.
        tts = (tts - (1 << k)) >> config.alpha
        if tts < 0:
            tts = 0
    return out
