"""A single time window: a ring-buffer register array of 2^k cells.

Each cell stores at most one packet record — its cycle ID and flow
identity (the paper's cells hold the flow ID; we carry the
:class:`~repro.switch.packet.FlowKey` object, which is the simulation
equivalent of the 5-tuple bits, and account its width in the SRAM model).

The mapping rule (Section 4.2): the ``k`` least-significant bits of the
window's trimmed timestamp (TTS) select the cell; the remaining high bits
are the cycle ID that disambiguates ring-buffer wrap-arounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.switch.packet import FlowKey

#: Sentinel cycle ID for a never-written cell.
EMPTY = -1


@dataclass(frozen=True)
class CellRecord:
    """An occupied cell, as read out of a window."""

    index: int
    cycle_id: int
    flow: FlowKey

    def tts(self, k: int) -> int:
        """Reconstruct the trimmed timestamp this cell was written with."""
        return (self.cycle_id << k) | self.index


class TimeWindow:
    """One register array of ``2^k`` single-packet cells."""

    __slots__ = ("k", "mask", "cycle_ids", "flows")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.mask = (1 << k) - 1
        self.cycle_ids: List[int] = [EMPTY] * (1 << k)
        self.flows: List[Optional[FlowKey]] = [None] * (1 << k)

    def __len__(self) -> int:
        return 1 << self.k

    def reset(self) -> None:
        """Clear all cells (used by tests; hardware relies on filtering)."""
        n = len(self)
        self.cycle_ids = [EMPTY] * n
        self.flows = [None] * n

    def occupancy(self) -> int:
        """Number of occupied cells.

        Vectorised: the observability layer reads this per window per
        report, and a Python-level scan of all ``2^k`` cells is the kind
        of fixed cost that would make metrics expensive to leave on.
        """
        return int(
            np.count_nonzero(np.asarray(self.cycle_ids, dtype=np.int64) != EMPTY)
        )

    def insert(self, tts: int, flow: FlowKey) -> "tuple[int, int, Optional[FlowKey]]":
        """Write a record; return ``(index, evicted_cycle_id, evicted_flow)``.

        The caller (the window set) applies the passing rule to the evicted
        record.  ``evicted_cycle_id`` is :data:`EMPTY` for a fresh cell.
        """
        index = tts & self.mask
        cycle_id = tts >> self.k
        old_cycle = self.cycle_ids[index]
        old_flow = self.flows[index]
        self.cycle_ids[index] = cycle_id
        self.flows[index] = flow
        return index, old_cycle, old_flow

    def cell(self, index: int) -> Optional[CellRecord]:
        """Read one cell, or None if it has never been written."""
        cycle_id = self.cycle_ids[index]
        if cycle_id == EMPTY:
            return None
        flow = self.flows[index]
        assert flow is not None
        return CellRecord(index, cycle_id, flow)

    def records(self) -> List[CellRecord]:
        """All occupied cells in index order."""
        out = []
        for index, cycle_id in enumerate(self.cycle_ids):
            if cycle_id != EMPTY:
                flow = self.flows[index]
                assert flow is not None
                out.append(CellRecord(index, cycle_id, flow))
        return out

    def latest_cell(self) -> Optional[CellRecord]:
        """The most recently written cell — max (cycle_id, index).

        This is the ``LatestCell()`` of Algorithm 3: since cycle IDs grow
        monotonically with time and, within a cycle, higher indices are
        written later, the lexicographic maximum identifies the newest
        record.
        """
        cyc = np.asarray(self.cycle_ids, dtype=np.int64)
        best_cycle = int(cyc.max(initial=EMPTY))
        if best_cycle == EMPTY:
            return None
        # Within the max cycle, the highest index was written last.
        best_index = int(np.flatnonzero(cyc == best_cycle)[-1])
        return self.cell(best_index)

    def snapshot(self) -> "TimeWindow":
        """An independent copy (what a frozen register read returns)."""
        copy = TimeWindow.__new__(TimeWindow)
        copy.k = self.k
        copy.mask = self.mask
        copy.cycle_ids = list(self.cycle_ids)
        copy.flows = list(self.flows)
        return copy
