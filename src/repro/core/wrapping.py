"""Wrap-safe time windows for finite-width hardware clocks.

Tofino exposes a 32-bit nanosecond timestamp (the Figure-5 example works
on exactly those 32 bits), which wraps every ~4.29 seconds.  The
simulator's integer clock never wraps, but a faithful data plane must
compute the mapping and passing rules on the *truncated* timestamp:

* cell index / cycle ID come from the masked TTS,
* the passing-rule comparison ``new_cycle - old_cycle == 1`` becomes a
  comparison modulo the cycle-ID width.

The control plane, which owns a full-width clock, *unwraps* the stored
cycle IDs at read time: a cell's absolute TTS is the largest value not
exceeding the poll instant whose low bits match the stored value —
unambiguous as long as the set period is shorter than the wrap period
(enforced at construction).  :meth:`WrappedTimeWindowSet.to_absolute`
produces standard :class:`~repro.core.timewindow.TimeWindow` objects in
absolute TTS space, so Algorithm 3 and the query machinery apply
unchanged.
"""

from __future__ import annotations

from typing import List

from repro.core.config import PrintQueueConfig
from repro.core.timewindow import EMPTY, TimeWindow
from repro.errors import ConfigError
from repro.switch.packet import FlowKey


def unwrap(wrapped: int, bits: int, reference: int) -> int:
    """Largest value <= ``reference`` whose low ``bits`` equal ``wrapped``.

    Returns a negative number when no non-negative candidate exists
    (callers treat that as "before time zero").
    """
    if bits <= 0:
        raise ValueError(f"non-positive width: {bits}")
    mask = (1 << bits) - 1
    if not 0 <= wrapped <= mask:
        raise ValueError(f"wrapped value {wrapped} exceeds {bits} bits")
    if reference < 0:
        raise ValueError(f"negative reference: {reference}")
    candidate = (reference & ~mask) | wrapped
    if candidate > reference:
        candidate -= 1 << bits
    return candidate


class WrappedTimeWindowSet:
    """Algorithm 1 on a finite-width (wrapping) timestamp.

    Mirrors :class:`~repro.core.windowset.TimeWindowSet` but stores only
    the truncated cycle IDs a real register would hold, and applies the
    passing rule modulo the per-window cycle width.
    """

    __slots__ = ("config", "timestamp_bits", "windows", "updates", "passes", "drops")

    def __init__(self, config: PrintQueueConfig, timestamp_bits: int = 32) -> None:
        if timestamp_bits < config.m0 + config.k + 1:
            raise ConfigError(
                f"{timestamp_bits}-bit timestamps leave no cycle bits for "
                f"m0={config.m0}, k={config.k}"
            )
        if config.set_period_ns >= (1 << timestamp_bits):
            raise ConfigError(
                "set period exceeds the clock wrap period; cycle IDs would "
                "be ambiguous at control-plane read time"
            )
        self.config = config
        self.timestamp_bits = timestamp_bits
        self.windows: List[TimeWindow] = [
            TimeWindow(config.k) for _ in range(config.T)
        ]
        self.updates = 0
        self.passes = 0
        self.drops = 0

    def _tts_bits(self, window: int) -> int:
        """Width of the (wrapped) TTS entering ``window``."""
        return self.timestamp_bits - self.config.shift(window)

    def _cycle_bits(self, window: int) -> int:
        return self._tts_bits(window) - self.config.k

    def update(self, flow: FlowKey, deq_timestamp_ns: int) -> int:
        """Insert one packet, seeing only the truncated timestamp."""
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        self.updates += 1
        wrapped_ts = deq_timestamp_ns & ((1 << self.timestamp_bits) - 1)
        tts = wrapped_ts >> cfg.m0
        depth = 0
        for i in range(cfg.T):
            window = self.windows[i]
            index = tts & window.mask
            new_cycle = tts >> k
            old_cycle = window.cycle_ids[index]
            old_flow = window.flows[index]
            window.cycle_ids[index] = new_cycle
            window.flows[index] = flow
            depth += 1
            cycle_mod = 1 << self._cycle_bits(i)
            if old_cycle != EMPTY and (new_cycle - old_cycle) % cycle_mod == 1:
                assert old_flow is not None
                flow = old_flow
                # Reconstruct the evicted wrapped TTS; compress by alpha.
                tts = ((old_cycle << k) | index) >> alpha
                self.passes += 1
            else:
                if old_cycle != EMPTY:
                    self.drops += 1
                break
        return depth

    # -- control-plane unwrapping -------------------------------------------

    def to_absolute(self, poll_time_ns: int) -> List[TimeWindow]:
        """Rebuild absolute-TTS windows from the wrapped register state.

        ``poll_time_ns`` is the control plane's full-width clock at the
        (frozen) read.  Cells whose unwrapped time falls before zero are
        left empty.
        """
        if poll_time_ns < 0:
            raise ValueError(f"negative poll time: {poll_time_ns}")
        cfg = self.config
        out: List[TimeWindow] = []
        for i, window in enumerate(self.windows):
            absolute = TimeWindow(cfg.k)
            tts_bits = self._tts_bits(i)
            reference_tts = poll_time_ns >> cfg.shift(i)
            for index, cycle in enumerate(window.cycle_ids):
                if cycle == EMPTY:
                    continue
                wrapped_tts = (cycle << cfg.k) | index
                abs_tts = unwrap(wrapped_tts, tts_bits, reference_tts)
                if abs_tts < 0:
                    continue
                absolute.cycle_ids[index] = abs_tts >> cfg.k
                absolute.flows[index] = window.flows[index]
            out.append(absolute)
        return out

    def occupancy(self) -> List[int]:
        return [w.occupancy() for w in self.windows]
