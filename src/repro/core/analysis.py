"""The control-plane analysis program (Section 6).

Responsibilities:

1. **Checkpointing** — every set period, flip the time-window banks and
   read the frozen copy (after Algorithm-3 filtering) into a snapshot
   store; snapshot the queue monitor alongside.
2. **Query execution** — time-window queries split an arbitrary interval
   across the stored snapshots (and across windows within a snapshot, each
   point in time attributed to exactly one window), divide per-window flow
   counts by ``coefficient[i]``, and aggregate; queue-monitor queries
   return the filtered walk of the snapshot closest to the query point.
3. **On-demand reads** — a data-plane trigger freezes the current bank
   immediately; the resulting query runs on data at its freshest (the
   recency-bias advantage measured in Figure 9).

The modelled read cost (register entries / PCIe read rate) gates how long
an on-demand read locks the special bank, reproducing the "operators
should be judicious about initiating data-plane queries" behaviour.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import partial
from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.coefficient import coefficients
from repro.core.config import PrintQueueConfig
from repro.core.filtering import FilteredWindow, FilterStats, filter_windows
from repro.core.queries import FlowEstimate, QueryInterval
from repro.core.queuemonitor import QueueMonitor, QueueMonitorSnapshot
from repro.core.registers import BankedStructure
from repro.core.windowset import TimeWindowSet
from repro.errors import ConfigError, QueryError
from repro.store import (
    MemoryStore,
    RetentionPolicy,
    SnapshotStore,
    SnapshotView,
    build_meta,
)
from repro.switch.packet import FlowKey
from repro.units import PCIE_REGISTER_READS_PER_SEC, NS_PER_SEC

if TYPE_CHECKING:
    import numpy as np

    from repro.engine.queryplan import CompiledQueryPlan


@dataclass
class TimeWindowSnapshot:
    """Filtered contents of one frozen time-window bank.

    ``valid_from_ns`` is the instant the frozen bank last became active:
    packets dequeued before it were recorded in a *different* bank, so
    this snapshot cannot speak for them even where a window's nominal
    (TTS-derived) coverage extends further back.
    """

    read_time_ns: int
    windows: List[FilteredWindow]
    source: str = "periodic"  # or "data-plane"
    valid_from_ns: int = 0

    def coverage_ns(self, k: int) -> Optional[Tuple[int, int]]:
        """[oldest, newest) time range any window of this snapshot covers."""
        start = None
        end = None
        for fw in self.windows:
            cov = fw.coverage_ns(k)
            if cov is None:
                continue
            start = cov[0] if start is None else min(start, cov[0])
            end = cov[1] if end is None else max(end, cov[1])
        if start is None or end is None:
            return None
        return start, end


def newest_first(
    snapshots: Sequence[TimeWindowSnapshot], presorted: bool = False
) -> Iterator[TimeWindowSnapshot]:
    """Yield snapshots newest read time first, oldest last.

    Snapshots sharing a read time are yielded in their *original* order —
    the tie behaviour of the historical ``sorted(..., reverse=True)``
    (stable sort) walk, which both the scalar query path and the compiled
    plan must reproduce identically.  With ``presorted`` the input is
    already ascending by read time (the snapshot store's invariant) and
    the walk is O(n) with no comparison sort.
    """
    if not presorted:
        yield from sorted(
            snapshots, key=lambda s: s.read_time_ns, reverse=True
        )
        return
    i = len(snapshots)
    while i > 0:
        j = i - 1
        t = snapshots[j].read_time_ns
        while j > 0 and snapshots[j - 1].read_time_ns == t:
            j -= 1
        yield from snapshots[j:i]
        i = j


class AnalysisProgram:
    """Per-port control-plane logic: polling, snapshot store, queries."""

    def __init__(
        self,
        config: PrintQueueConfig,
        d_ns: Optional[float] = None,
        max_snapshots: int = 4096,
        fractional_cells: bool = False,
        apply_coefficients: bool = True,
        model_dp_read_cost: bool = True,
        store: Optional[SnapshotStore] = None,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        self.config = config
        self.coefficients = coefficients(config, d_ns)
        # partial() rather than a lambda so whole experiment runs stay
        # picklable (the engine's process-pool sweep ships them between
        # workers).
        self.tw_banks: BankedStructure[TimeWindowSet] = BankedStructure(
            partial(TimeWindowSet, config)
        )
        self.queue_monitor = QueueMonitor(config.qm_levels, config.qm_granularity)
        if store is None:
            if retention is None:
                retention = RetentionPolicy(max_snapshots=max_snapshots)
            store = MemoryStore(retention=retention)
        elif retention is not None:
            raise ConfigError(
                "pass the retention policy to the store, not alongside it"
            )
        #: the snapshot store: owns every stored snapshot and the version
        #: counter the compiled-plan cache keys on.
        self.store = store
        self.max_snapshots = store.retention.max_snapshots
        store.bind(
            build_meta(
                config,
                d_ns,
                store.retention,
                fractional_cells=fractional_cells,
                apply_coefficients=apply_coefficients,
                model_dp_read_cost=model_dp_read_cost,
            )
        )
        #: weight cells by fractional overlap with the query interval
        #: instead of whole-cell inclusion (an ablation; default off, as
        #: the paper includes whole cells).
        self.fractional_cells = fractional_cells
        #: divide deep-window counts by coefficient[i] (ablation hook).
        self.apply_coefficients = apply_coefficients
        #: model the PCIe read duration of on-demand reads (rejecting
        #: triggers that arrive while the special registers are being
        #: drained).  Accuracy harnesses disable this to score every
        #: sampled victim; the rejection behaviour has its own micro-bench.
        self.model_dp_read_cost = model_dp_read_cost
        self._dp_lock_until_ns = 0
        self._active_since_ns = 0
        self.queries_executed = 0
        #: Algorithm-3 scan/retain totals across every poll (repro.obs).
        self.filter_stats = FilterStats()
        self._plan = None
        self._plan_key: Optional[Tuple] = None
        #: compiled-plan cache accounting (always-on repro.obs counters).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.snapshot_compile_hits = 0
        self.snapshot_compile_misses = 0
        self.batch_queries = 0
        #: stage-timing hooks (repro.obs): ``observe(ns)`` callables for
        #: the Algorithm-3 filter and snapshot-encode stages, attached by
        #: the owning port when a metrics registry is present.  ``None``
        #: keeps the poll path branch-cheap and state-identical.
        self._stage_filter_observe: Optional[Callable[[int], None]] = None
        self._stage_encode_observe: Optional[Callable[[int], None]] = None

    def attach_stage_observers(self, metrics: object) -> None:
        """Wire the filter/encode ``pq_ingest_stage_*`` histograms."""
        self._stage_filter_observe = metrics.histogram(  # type: ignore[attr-defined]
            "pq_ingest_stage_filter_ns"
        ).observe
        self._stage_encode_observe = metrics.histogram(  # type: ignore[attr-defined]
            "pq_ingest_stage_encode_ns"
        ).observe

    # -- snapshot access (read-only store views) ---------------------------

    @property
    def tw_snapshots(self) -> SnapshotView:
        """Read-only view of the stored time-window snapshots (ascending).

        All writes go through the store (``self.store``) so the version
        counter — the compiled-plan cache key — can never be bypassed.
        """
        return self.store.tw_view()

    @property
    def qm_snapshots(self) -> SnapshotView:
        """Read-only view of the stored queue-monitor snapshots."""
        return self.store.qm_view()

    @property
    def _snapshots_version(self) -> int:
        """The store's version counter (the compiled-plan cache key)."""
        return self.store.version

    # -- data-plane side -------------------------------------------------

    def on_dequeue(self, flow: FlowKey, deq_timestamp_ns: int) -> None:
        """Per-packet egress update of the active time-window bank."""
        self.tw_banks.active.update(flow, deq_timestamp_ns)

    def on_dequeue_batch(
        self, flows: Sequence[FlowKey], deq_timestamps_ns: "np.ndarray"
    ) -> None:
        """Array-at-a-time egress update (the batched ingest engine).

        The caller guarantees no poll boundary falls inside the batch, so
        all packets land in the same active bank.
        """
        self.tw_banks.active.absorb_batch(flows, deq_timestamps_ns)

    # -- checkpointing (Section 6.2) --------------------------------------

    def periodic_poll(self, now_ns: int) -> TimeWindowSnapshot:
        """Flip banks and read the frozen copy; also snapshot the monitor."""
        frozen = self.tw_banks.periodic_flip()
        observe = self._stage_filter_observe
        if observe is None:
            windows = filter_windows(
                frozen.snapshot(), self.config, stats=self.filter_stats
            )
        else:
            t0 = perf_counter_ns()
            windows = filter_windows(
                frozen.snapshot(), self.config, stats=self.filter_stats
            )
            observe(perf_counter_ns() - t0)
        return self.store_periodic_snapshot(now_ns, windows)

    def store_periodic_snapshot(
        self, now_ns: int, windows: List[FilteredWindow]
    ) -> TimeWindowSnapshot:
        """Store an already-filtered periodic read (+ monitor snapshot).

        The tail half of :meth:`periodic_poll`, split out so the
        resilient read path (:mod:`repro.faults`) can validate or
        quarantine the filtered windows between the bank flip and the
        store while keeping byte-identical store semantics.
        """
        snapshot = TimeWindowSnapshot(
            read_time_ns=now_ns,
            windows=windows,
            source="periodic",
            valid_from_ns=self._active_since_ns,
        )
        self._active_since_ns = now_ns
        observe = self._stage_encode_observe
        if observe is None:
            self.store.add_tw(snapshot)
            self.store.add_qm(self.queue_monitor.snapshot(now_ns))
        else:
            t0 = perf_counter_ns()
            self.store.add_tw(snapshot)
            self.store.add_qm(self.queue_monitor.snapshot(now_ns))
            observe(perf_counter_ns() - t0)
        return snapshot

    def quarantine_snapshot_windows(
        self, snapshot: TimeWindowSnapshot, windows: List[FilteredWindow]
    ) -> None:
        """Replace a snapshot's windows after validation quarantined cells.

        Used by the resilient on-demand read path when a stored snapshot
        turns out to hold torn/corrupt cells: the replacement drops the
        snapshot's per-snapshot columnar memo and bumps the store
        version, so the compiled-plan cache (keyed on that version)
        rebuilds without the quarantined cells instead of serving stale
        compiled state.
        """
        self.store.replace_windows(snapshot, windows)

    def qm_poll(self, now_ns: int) -> QueueMonitorSnapshot:
        """Snapshot only the queue monitor (its own, finer cadence).

        The queue-monitor query returns the snapshot closest to the query
        point, so its useful resolution equals its polling cadence; the
        stack is far smaller than a full time-window set, so the control
        plane can afford to read it more often.
        """
        snapshot = self.queue_monitor.snapshot(now_ns)
        self.store.add_qm(snapshot)
        return snapshot

    def dp_read(self, now_ns: int) -> Optional[TimeWindowSnapshot]:
        """Handle a data-plane-triggered read at ``now_ns``.

        With the read-cost model enabled (hardware-faithful mode) this
        freezes the active bank, diverts updates to the special bank, and
        rejects triggers that arrive while a previous read is still
        draining over PCIe.  With it disabled (the accuracy harness) the
        read is an atomic, non-destructive copy of the active bank — the
        content an isolated freeze would have captured at this instant,
        without the bank churn that would otherwise couple closely spaced
        evaluation victims to each other.
        """
        if not self.model_dp_read_cost:
            snapshot = TimeWindowSnapshot(
                read_time_ns=now_ns,
                windows=filter_windows(
                    self.tw_banks.active.snapshot(),
                    self.config,
                    stats=self.filter_stats,
                ),
                source="data-plane",
                valid_from_ns=self._active_since_ns,
            )
            self.tw_banks.dp_freezes += 1
            return snapshot
        if now_ns < self._dp_lock_until_ns:
            self.tw_banks.dp_rejections += 1
            return None
        frozen = self.tw_banks.dp_freeze()
        if frozen is None:
            return None
        snapshot = TimeWindowSnapshot(
            read_time_ns=now_ns,
            windows=filter_windows(
                frozen.snapshot(), self.config, stats=self.filter_stats
            ),
            source="data-plane",
            valid_from_ns=self._active_since_ns,
        )
        self._active_since_ns = now_ns
        self.store.add_tw(snapshot)
        # On-demand reads append the monitor snapshot unbounded: they sit
        # outside the periodic retention cadence (historic behaviour).
        self.store.add_qm(self.queue_monitor.snapshot(now_ns), bounded=False)
        read_ns = int(
            self.config.T
            * self.config.num_cells
            / PCIE_REGISTER_READS_PER_SEC
            * NS_PER_SEC
        )
        self._dp_lock_until_ns = now_ns + read_ns
        self.tw_banks.dp_release()
        return snapshot

    # -- time-window queries (Section 6.3) ---------------------------------

    def query_time_windows(
        self,
        interval: QueryInterval,
        *,
        snapshots: Optional[Sequence[TimeWindowSnapshot]] = None,
    ) -> FlowEstimate:
        """Estimate per-flow packet counts dequeued during ``interval``.

        The interval is split into disjoint pieces, each attributed to the
        snapshot (and, within it, the single window) covering that piece.
        """
        self.queries_executed += 1
        presorted = snapshots is None
        if snapshots is None:
            snapshots = self.tw_snapshots
        if not snapshots:
            raise QueryError("no snapshots available; did the poller run?")
        estimate = FlowEstimate()
        remaining = [(interval.start_ns, interval.end_ns)]
        # Newest snapshots first: recency bias means the newest covering
        # snapshot has the least-compressed view of any time point.  The
        # internal store is kept ascending at insert, so this walk is
        # sort-free; caller-provided sequences are sorted as before.
        for snapshot in newest_first(snapshots, presorted=presorted):
            if not remaining:
                break
            remaining = self._accumulate_snapshot(
                snapshot, remaining, estimate
            )
        return estimate

    def query_snapshot(
        self, snapshot: TimeWindowSnapshot, interval: QueryInterval
    ) -> FlowEstimate:
        """Query a single snapshot (used for data-plane-triggered queries)."""
        self.queries_executed += 1
        estimate = FlowEstimate()
        self._accumulate_snapshot(
            snapshot, [(interval.start_ns, interval.end_ns)], estimate
        )
        return estimate

    # -- compiled (columnar) query path ------------------------------------

    def compiled_plan(self, *, source: Optional[str] = None) -> "CompiledQueryPlan":
        """The columnar query plan over the stored snapshots (cached).

        The cache key is the snapshot-store version plus everything the
        compilation depends on, so the plan is rebuilt exactly when a
        poll, an on-demand read, or an eviction changes the store — and
        rebuilds recompile only snapshots not seen before (per-snapshot
        compilations are memoised on the snapshots themselves).

        ``source`` restricts the plan to snapshots of one origin
        (``"periodic"`` for the asynchronous query path).
        """
        from repro.engine.queryplan import CompiledQueryPlan, PlanBuildStats

        key = (
            self._snapshots_version,
            source,
            self.apply_coefficients,
            tuple(self.coefficients),
        )
        if self._plan is not None and self._plan_key == key:
            self.plan_cache_hits += 1
            return self._plan
        snaps = (
            self.tw_snapshots
            if source is None
            else [s for s in self.tw_snapshots if s.source == source]
        )
        if not snaps:
            raise QueryError("no snapshots available; did the poller run?")
        stats = PlanBuildStats()
        # A filtered subset of the ascending store is still ascending.
        plan = CompiledQueryPlan.build(
            list(newest_first(snaps, presorted=True)),
            self.config.k,
            self.coefficients,
            self.apply_coefficients,
            stats=stats,
        )
        self.plan_cache_misses += 1
        self.snapshot_compile_hits += stats.snapshot_hits
        self.snapshot_compile_misses += stats.snapshot_misses
        self._plan = plan
        self._plan_key = key
        return plan

    def query_time_windows_batch(
        self,
        intervals: Sequence[QueryInterval],
        *,
        snapshots: Optional[Sequence[TimeWindowSnapshot]] = None,
        source: Optional[str] = None,
        latency_observer: Optional[Callable[[int], None]] = None,
    ) -> List[FlowEstimate]:
        """Batched, columnar equivalent of :meth:`query_time_windows`.

        Answers every interval against one compiled snapshot plan,
        amortising snapshot ordering, compilation, and coefficient lookup
        across the whole batch.  Results are numerically identical to
        calling :meth:`query_time_windows` once per interval — the same
        ``FlowEstimate`` contents and the same piece attribution (the
        equivalence suite asserts exact equality).

        ``snapshots`` queries an explicit snapshot set (compiled ad hoc,
        bypassing the plan cache); otherwise the cached plan over the
        store is used, restricted to ``source`` when given.
        ``latency_observer`` receives each victim's wall-clock
        nanoseconds (the per-victim latency histogram hook).
        """
        from repro.engine.queryplan import CompiledQueryPlan

        intervals = list(intervals)
        self.batch_queries += 1
        self.queries_executed += len(intervals)
        if not intervals:
            return []
        if snapshots is not None:
            if not snapshots:
                raise QueryError("no snapshots available; did the poller run?")
            plan = CompiledQueryPlan.build(
                list(newest_first(snapshots)),
                self.config.k,
                self.coefficients,
                self.apply_coefficients,
            )
        else:
            plan = self.compiled_plan(source=source)
        return plan.query_batch(
            intervals, self.fractional_cells, latency_observer
        )

    def _accumulate_snapshot(
        self,
        snapshot: TimeWindowSnapshot,
        pieces: List[Tuple[int, int]],
        estimate: FlowEstimate,
    ) -> List[Tuple[int, int]]:
        """Add this snapshot's contribution; return the uncovered pieces."""
        k = self.config.k
        # Window 0 is newest; clamp each deeper window's coverage below the
        # previous one so every time point belongs to exactly one window.
        newer_start: Optional[int] = None
        leftovers = list(pieces)
        for fw in snapshot.windows:
            cov = fw.coverage_ns(k)
            if cov is None:
                continue
            cov_start, cov_end = cov
            # The frozen bank only recorded packets while it was active.
            cov_start = max(cov_start, snapshot.valid_from_ns)
            if newer_start is not None:
                cov_end = min(cov_end, newer_start)
            newer_start = cov_start
            if cov_end <= cov_start:
                continue
            coefficient = (
                self.coefficients[fw.window_index]
                if self.apply_coefficients
                else 1.0
            )
            if coefficient <= 0:
                continue
            new_leftovers: List[Tuple[int, int]] = []
            for piece_start, piece_end in leftovers:
                lo = max(piece_start, cov_start)
                hi = min(piece_end, cov_end)
                if hi <= lo:
                    new_leftovers.append((piece_start, piece_end))
                    continue
                self._accumulate_window(fw, lo, hi, coefficient, estimate)
                if piece_start < lo:
                    new_leftovers.append((piece_start, lo))
                if hi < piece_end:
                    new_leftovers.append((hi, piece_end))
            leftovers = new_leftovers
            if not leftovers:
                break
        return leftovers

    def _accumulate_window(
        self,
        fw: FilteredWindow,
        start_ns: int,
        end_ns: int,
        coefficient: float,
        estimate: FlowEstimate,
    ) -> None:
        shift = fw.shift
        span = 1 << shift
        # Cells are sorted by TTS: bisect to the overlapping range instead
        # of scanning all 2^k entries per query.  The cell holding
        # ``start_ns`` is the first whose end exceeds the interval start.
        lo_tts = start_ns >> shift  # first cell whose end > start
        hi_tts = (end_ns - 1) >> shift  # last cell whose start < end
        cells = fw.cells
        lo = bisect.bisect_left(cells, lo_tts, key=lambda c: c[0]) if cells else 0
        for tts, flow in cells[lo:]:
            if tts > hi_tts:
                break
            if self.fractional_cells:
                cell_start = tts << shift
                overlap = min(cell_start + span, end_ns) - max(cell_start, start_ns)
                weight = overlap / span
            else:
                weight = 1.0
            estimate.add(flow, weight / coefficient)

    # -- queue-monitor queries ----------------------------------------------

    def query_queue_monitor(self, time_ns: int) -> QueueMonitorSnapshot:
        """The snapshot closest in time to the query point."""
        if not self.qm_snapshots:
            raise QueryError("no queue-monitor snapshots available")
        return min(self.qm_snapshots, key=lambda s: abs(s.time_ns - time_ns))

    def original_culprits(self, time_ns: int) -> FlowEstimate:
        """Per-flow original-culprit contributions at ``time_ns``."""
        self.queries_executed += 1
        snapshot = self.query_queue_monitor(time_ns)
        estimate = FlowEstimate()
        for flow, count in snapshot.flow_counts().items():
            estimate.add(flow, count)
        return estimate
