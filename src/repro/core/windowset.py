"""The set of T time windows and the per-packet procedure (Algorithm 1).

Every dequeued packet enters window 0 at the cell selected by its trimmed
dequeue timestamp.  On a collision the newer record always wins; the
evicted record is *passed* to the next window only if the incoming cycle
ID exceeds the evicted one by exactly one (the passing rule), otherwise it
is dropped.  Passing recurses through all T windows, shifting the TTS by
``alpha`` bits per hop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import PrintQueueConfig
from repro.core.timewindow import EMPTY, TimeWindow
from repro.switch.packet import FlowKey


class TimeWindowSet:
    """T time windows plus the Algorithm-1 update procedure."""

    __slots__ = ("config", "windows", "updates", "passes", "drops")

    def __init__(self, config: PrintQueueConfig) -> None:
        self.config = config
        self.windows: List[TimeWindow] = [TimeWindow(config.k) for _ in range(config.T)]
        # Instrumentation counters (used by tests and ablation benches).
        self.updates = 0
        self.passes = 0
        self.drops = 0

    def update(self, flow: FlowKey, deq_timestamp_ns: int) -> int:
        """Algorithm 1: insert one dequeued packet.

        Returns the number of windows written (1 = stored in window 0 with
        no onward pass).
        """
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        self.updates += 1
        tts = deq_timestamp_ns >> cfg.m0
        depth = 0
        for i in range(cfg.T):
            window = self.windows[i]
            index = tts & window.mask
            new_cycle = tts >> k
            old_cycle = window.cycle_ids[index]
            old_flow = window.flows[index]
            window.cycle_ids[index] = new_cycle
            window.flows[index] = flow
            depth += 1
            if old_cycle != EMPTY and new_cycle - old_cycle == 1:
                # Pass the evicted record onward: reconstruct its TTS at
                # this window's granularity and compress by alpha bits.
                assert old_flow is not None
                flow = old_flow
                tts = ((old_cycle << k) | index) >> alpha
                self.passes += 1
            else:
                if old_cycle != EMPTY:
                    self.drops += 1
                break
        return depth

    def snapshot(self) -> List[TimeWindow]:
        """Frozen copies of all windows (a full register read)."""
        return [w.snapshot() for w in self.windows]

    def reset(self) -> None:
        """Clear every window (tests only; hardware relies on filtering)."""
        for window in self.windows:
            window.reset()

    def occupancy(self) -> List[int]:
        """Occupied-cell count per window (diagnostics)."""
        return [w.occupancy() for w in self.windows]
