"""The set of T time windows and the per-packet procedure (Algorithm 1).

Every dequeued packet enters window 0 at the cell selected by its trimmed
dequeue timestamp.  On a collision the newer record always wins; the
evicted record is *passed* to the next window only if the incoming cycle
ID exceeds the evicted one by exactly one (the passing rule), otherwise it
is dropped.  Passing recurses through all T windows, shifting the TTS by
``alpha`` bits per hop.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.config import PrintQueueConfig
from repro.core.timewindow import EMPTY, TimeWindow
from repro.switch.packet import FlowKey


class TimeWindowSet:
    """T time windows plus the Algorithm-1 update procedure."""

    __slots__ = (
        "config",
        "windows",
        "updates",
        "passes",
        "drops",
        "level_inserts",
        "level_passes",
        "level_drops",
    )

    def __init__(self, config: PrintQueueConfig) -> None:
        self.config = config
        self.windows: List[TimeWindow] = [TimeWindow(config.k) for _ in range(config.T)]
        # Instrumentation counters (used by tests and ablation benches).
        self.updates = 0
        self.passes = 0
        self.drops = 0
        # Per-window-level observability (repro.obs): writes landing on
        # window i, records evicted from window i that passed onward, and
        # records evicted from window i that were dropped.  Collisions at
        # level i = level_passes[i] + level_drops[i].  Maintained with
        # identical semantics by update() and absorb_batch().
        self.level_inserts = [0] * config.T
        self.level_passes = [0] * config.T
        self.level_drops = [0] * config.T

    def update(self, flow: FlowKey, deq_timestamp_ns: int) -> int:
        """Algorithm 1: insert one dequeued packet.

        Returns the number of windows written (1 = stored in window 0 with
        no onward pass).
        """
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        self.updates += 1
        tts = deq_timestamp_ns >> cfg.m0
        depth = 0
        for i in range(cfg.T):
            window = self.windows[i]
            index = tts & window.mask
            new_cycle = tts >> k
            old_cycle = window.cycle_ids[index]
            old_flow = window.flows[index]
            window.cycle_ids[index] = new_cycle
            window.flows[index] = flow
            depth += 1
            self.level_inserts[i] += 1
            if old_cycle != EMPTY and new_cycle - old_cycle == 1:
                # Pass the evicted record onward: reconstruct its TTS at
                # this window's granularity and compress by alpha bits.
                assert old_flow is not None
                flow = old_flow
                tts = ((old_cycle << k) | index) >> alpha
                self.passes += 1
                self.level_passes[i] += 1
            else:
                if old_cycle != EMPTY:
                    self.drops += 1
                    self.level_drops[i] += 1
                break
        return depth

    def absorb_batch(
        self,
        flows: Sequence[FlowKey],
        deq_timestamps_ns: "np.ndarray",
    ) -> int:
        """Vectorised Algorithm 1 over a batch of dequeued packets.

        Exactly equivalent — cell for cell and counter for counter — to
        calling :meth:`update` once per packet in batch order.  The key
        observation making array-at-a-time replay possible: direct inserts
        only ever hit window 0, and window ``i+1`` only receives records
        *passed* from window ``i``, so the windows can be processed level
        by level.  Within one window, writes are grouped per cell index (a
        stable sort preserves batch order inside each group) and the
        collision/pass rule is evaluated on adjacent pairs of each group
        plus the group head against the pre-batch cell contents.

        A pass always evicts a record whose cycle ID is exactly one less
        than the evictor's, so the passed TTS is a monotone function of
        the evicting TTS; re-sorting pass events by the evictor's batch
        position therefore reproduces the order in which the scalar loop
        would have inserted them into the next window.

        Returns the number of packets absorbed.
        """
        cfg = self.config
        k = cfg.k
        alpha = cfg.alpha
        tts = np.asarray(deq_timestamps_ns, dtype=np.int64) >> cfg.m0
        n = len(tts)
        if n == 0:
            return 0
        if len(flows) != n:
            raise ValueError("flows and deq_timestamps_ns must have equal length")
        self.updates += n

        # Flow identity travels through the levels as an int64 source id:
        # id < n is a batch position, id >= n indexes `evicted` (a record
        # displaced from some window along the way).  Objects are touched
        # only at the per-cell writes, never in the array math.
        src = np.arange(n, dtype=np.int64)
        evicted: List[FlowKey] = []

        passes = 0
        drops = 0
        for level in range(cfg.T):
            if len(tts) == 0:
                break
            window = self.windows[level]
            self.level_inserts[level] += len(tts)
            index = tts & window.mask
            cycle = tts >> k
            # Group writes per cell; stable sort keeps batch order inside
            # each group.
            perm = np.argsort(index, kind="stable")
            s_index = index[perm]
            s_cycle = cycle[perm]
            m = len(perm)
            diff = np.flatnonzero(s_index[1:] != s_index[:-1])
            starts = np.empty(len(diff) + 1, dtype=np.int64)
            starts[0] = 0
            starts[1:] = diff + 1
            ends = np.empty_like(starts)
            ends[:-1] = diff
            ends[-1] = m - 1

            # Group heads collide with the pre-batch cell contents.
            head_index = s_index[starts]
            cycle_ids = window.cycle_ids
            wflows = window.flows
            old_cycles = np.fromiter(
                (cycle_ids[i] for i in head_index.tolist()),
                dtype=np.int64,
                count=len(head_index),
            )
            occupied = old_cycles != EMPTY
            head_pass = occupied & (s_cycle[starts] - old_cycles == 1)
            head_drop = occupied & ~head_pass
            # Adjacent writes to the same cell collide with each other.
            same = s_index[1:] == s_index[:-1]
            mid_pass = same & (s_cycle[1:] - s_cycle[:-1] == 1)
            mid_drop = same & ~mid_pass
            level_pass = int(np.count_nonzero(head_pass)) + int(
                np.count_nonzero(mid_pass)
            )
            level_drop = int(np.count_nonzero(head_drop)) + int(
                np.count_nonzero(mid_drop)
            )
            passes += level_pass
            drops += level_drop
            self.level_passes[level] += level_pass
            self.level_drops[level] += level_drop

            if level + 1 < cfg.T:
                # Assemble the pass stream for the next window, ordered by
                # the evicting write's batch position (= scalar insert
                # order).  Evicted flows must be read before this window's
                # final state is written below; they join the source-id
                # space past the batch ids.
                hp = np.flatnonzero(head_pass)
                head_ev_pos = perm[starts[hp]]
                head_ev_tts = (old_cycles[hp] << k) | head_index[hp]
                head_ev_src = n + len(evicted) + np.arange(len(hp), dtype=np.int64)
                evicted.extend(wflows[i] for i in head_index[hp].tolist())
                mp = np.flatnonzero(mid_pass)
                mid_ev_pos = perm[mp + 1]
                mid_ev_tts = (s_cycle[mp] << k) | s_index[mp]
                mid_ev_src = src[perm[mp]]
                ev_pos = np.concatenate([head_ev_pos, mid_ev_pos])
                ev_tts = np.concatenate([head_ev_tts, mid_ev_tts]) >> alpha
                ev_src = np.concatenate([head_ev_src, mid_ev_src])
                order = np.argsort(ev_pos, kind="stable")
            else:
                order = None

            # The last write of each group is this window's final state.
            final_cycle = s_cycle[ends].tolist()
            final_src = src[perm[ends]].tolist()
            for cell_i, cyc, sid in zip(head_index.tolist(), final_cycle, final_src):
                cycle_ids[cell_i] = cyc
                wflows[cell_i] = flows[sid] if sid < n else evicted[sid - n]

            if order is None:
                break
            tts = ev_tts[order]
            src = ev_src[order]

        self.passes += passes
        self.drops += drops
        return n

    def snapshot(self) -> List[TimeWindow]:
        """Frozen copies of all windows (a full register read)."""
        return [w.snapshot() for w in self.windows]

    def reset(self) -> None:
        """Clear every window (tests only; hardware relies on filtering)."""
        for window in self.windows:
            window.reset()

    def occupancy(self) -> List[int]:
        """Occupied-cell count per window (diagnostics)."""
        return [w.occupancy() for w in self.windows]
