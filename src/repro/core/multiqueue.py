"""Per-class queue monitoring (Section 5, last paragraph).

Hardware scheduling frameworks build advanced policies out of smaller
FIFO queues; the paper notes the queue monitor "can track each priority
or rank separately".  :class:`ClassedQueueMonitor` keeps one sparse
stack per class of service and fans enqueue/dequeue events out by the
packet's class, while still answering aggregate queries across classes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.queries import FlowEstimate
from repro.core.queuemonitor import QueueMonitor, QueueMonitorSnapshot
from repro.switch.packet import FlowKey


class ClassedQueueMonitor:
    """A bank of queue monitors, one per class of service.

    Classes are created lazily on first use, capped at ``max_classes``
    (hardware allocates the per-class partitions up front; the cap
    mirrors that budget).
    """

    def __init__(
        self,
        levels: int,
        granularity: int = 1,
        max_classes: int = 8,
    ) -> None:
        if max_classes < 1:
            raise ValueError(f"need at least one class, got {max_classes}")
        self.levels = levels
        self.granularity = granularity
        self.max_classes = max_classes
        self._monitors: Dict[int, QueueMonitor] = {}
        self.clamped_classes = 0

    def _class_of(self, cls: int) -> int:
        if cls < 0:
            raise ValueError(f"negative class: {cls}")
        if cls >= self.max_classes:
            self.clamped_classes += 1
            cls = self.max_classes - 1
        return cls

    def monitor(self, cls: int) -> QueueMonitor:
        cls = self._class_of(cls)
        if cls not in self._monitors:
            self._monitors[cls] = QueueMonitor(self.levels, self.granularity)
        return self._monitors[cls]

    @property
    def active_classes(self) -> List[int]:
        return sorted(self._monitors)

    # -- data plane -----------------------------------------------------------

    def on_enqueue(self, cls: int, flow: FlowKey, depth_after_units: int) -> None:
        """A packet of class ``cls`` raised its queue to the given depth."""
        self.monitor(cls).on_enqueue(flow, depth_after_units)

    def on_dequeue(self, cls: int, flow: FlowKey, depth_after_units: int) -> None:
        self.monitor(cls).on_dequeue(flow, depth_after_units)

    # -- control plane ----------------------------------------------------------

    def snapshot(self, time_ns: int) -> Dict[int, QueueMonitorSnapshot]:
        """Frozen copies of every active class's stack."""
        return {cls: m.snapshot(time_ns) for cls, m in self._monitors.items()}

    def original_culprits(
        self,
        snapshots: Dict[int, QueueMonitorSnapshot],
        classes: Optional[Iterable[int]] = None,
    ) -> FlowEstimate:
        """Aggregate original culprits over some (or all) classes.

        For a victim in class ``c`` under strict priority, the relevant
        classes are those that can delay it — ``0..c`` — which the caller
        selects via ``classes``.
        """
        estimate = FlowEstimate()
        selected = set(classes) if classes is not None else set(snapshots)
        for cls, snapshot in snapshots.items():
            if cls not in selected:
                continue
            for flow, count in snapshot.flow_counts().items():
                estimate.add(flow, count)
        return estimate

    def reset(self) -> None:
        for monitor in self._monitors.values():
            monitor.reset()
