"""Ground-truth culprit taxonomy (Section 2 definitions).

Given the lossless dequeue log of a simulation run, this module computes,
for any victim packet, the exact sets of direct, indirect, and original
culprits.  It is the oracle PrintQueue's estimates are scored against —
the simulator's replacement for the paper's DPDK telemetry capture.

Definitions implemented verbatim from Section 2:

* **direct**: packets dequeued in ``[t_enq, t_deq]`` of the victim,
* **indirect**: packets dequeued before ``t_enq`` while the queue stayed
  non-empty throughout ``[t_deq', t_enq]`` — i.e. dequeued after the last
  instant the queue was empty before the victim enqueued,
* **original**: the monotone-stack survivors — for each still-standing
  depth level, the packet whose arrival raised the queue to that level.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.queries import FlowEstimate
from repro.switch.packet import FlowKey
from repro.switch.telemetry import DequeueRecord


@dataclass(frozen=True)
class _Event:
    time_ns: int
    order: int  # tie-break: enqueues before dequeues at equal time
    is_enqueue: bool
    record_index: int


class CulpritTaxonomy:
    """Precomputed event timeline + per-victim culprit queries."""

    def __init__(self, records: Sequence[DequeueRecord]) -> None:
        self._records = list(records)
        self._build_timeline()

    # -- construction ------------------------------------------------------

    def _build_timeline(self) -> None:
        events: List[Tuple[int, int, bool, int]] = []
        for i, record in enumerate(self._records):
            # Enqueues sort before dequeues at equal timestamps, matching
            # the event-driven simulator's tie-break.
            events.append((record.enq_timestamp, 0, True, i))
            events.append((record.deq_timestamp, 1, False, i))
        events.sort(key=lambda e: (e[0], e[1]))
        self._events = events

        # Depth replay: find every instant the queue returns to empty.
        depth = 0
        empty_times: List[int] = [0]
        for time_ns, _order, is_enqueue, _idx in events:
            depth += 1 if is_enqueue else -1
            if depth == 0:
                empty_times.append(time_ns)
        self._empty_times = empty_times

        # Dequeue timestamps in dequeue order for interval slicing.
        self._deq_sorted = sorted(
            range(len(self._records)), key=lambda i: self._records[i].deq_timestamp
        )
        self._deq_times = [
            self._records[i].deq_timestamp for i in self._deq_sorted
        ]

    # -- helpers -------------------------------------------------------------

    def regime_start(self, enq_timestamp: int) -> int:
        """Last instant (<= enq time) the queue was empty."""
        pos = bisect.bisect_right(self._empty_times, enq_timestamp)
        if pos == 0:
            return 0
        return self._empty_times[pos - 1]

    def _counts_for_deq_range(
        self, start_ns: int, end_ns: int, inclusive_end: bool, exclude: Optional[int]
    ) -> FlowEstimate:
        lo = bisect.bisect_left(self._deq_times, start_ns)
        side = bisect.bisect_right if inclusive_end else bisect.bisect_left
        hi = side(self._deq_times, end_ns)
        estimate = FlowEstimate()
        for pos in range(lo, hi):
            idx = self._deq_sorted[pos]
            if idx == exclude:
                continue
            estimate.add(self._records[idx].flow, 1)
        return estimate

    def _find_record(self, victim: DequeueRecord) -> Optional[int]:
        lo = bisect.bisect_left(self._deq_times, victim.deq_timestamp)
        while lo < len(self._deq_times) and self._deq_times[lo] == victim.deq_timestamp:
            idx = self._deq_sorted[lo]
            if self._records[idx] == victim:
                return idx
            lo += 1
        return None

    # -- the three culprit classes -------------------------------------------

    def direct(self, victim: DequeueRecord) -> FlowEstimate:
        """Packets dequeued within the victim's own queuing interval."""
        return self._counts_for_deq_range(
            victim.enq_timestamp,
            victim.deq_timestamp,
            inclusive_end=True,
            exclude=self._find_record(victim),
        )

    def indirect(self, victim: DequeueRecord) -> FlowEstimate:
        """Packets dequeued earlier in the same congestion regime.

        Strict inequality at the regime start excludes the packet whose
        departure emptied the queue — it predates the current regime.
        """
        start = self.regime_start(victim.enq_timestamp)
        estimate = self._counts_for_deq_range(
            start, victim.enq_timestamp, inclusive_end=False, exclude=None
        )
        # Drop packets dequeued exactly at the regime-start instant.
        trimmed = FlowEstimate()
        lo = bisect.bisect_right(self._deq_times, start)
        hi = bisect.bisect_left(self._deq_times, victim.enq_timestamp)
        for pos in range(lo, hi):
            idx = self._deq_sorted[pos]
            trimmed.add(self._records[idx].flow, 1)
        return trimmed

    def original(self, at_time_ns: int) -> FlowEstimate:
        """Monotone-stack survivors just before ``at_time_ns``.

        Replays enqueue/dequeue events up to (but excluding) the instant
        and keeps, per depth level, the last packet that raised the queue
        to a level it has not drained below since.
        """
        stack: List[Tuple[int, FlowKey]] = []  # (level, flow), increasing
        depth = 0
        for time_ns, _order, is_enqueue, idx in self._events:
            if time_ns >= at_time_ns:
                break
            if is_enqueue:
                depth += 1
                stack.append((depth, self._records[idx].flow))
            else:
                depth -= 1
                while stack and stack[-1][0] > depth:
                    stack.pop()
        estimate = FlowEstimate()
        for _level, flow in stack:
            estimate.add(flow, 1)
        return estimate

    def congestion_regime(self, victim: DequeueRecord) -> Tuple[int, int]:
        """The [regime_start, victim_deq] span of the full regime."""
        return self.regime_start(victim.enq_timestamp), victim.deq_timestamp
