"""Configuration advisor: sanity-checks a PrintQueue deployment.

The parameter family (m0, k, alpha, T) interacts with the workload in
non-obvious ways — e.g. an m0 far below the packet inter-departure time
starves the deeper windows (z = 2^m0/d << 1 means almost nothing
survives the passing rule), silently collapsing recall for any query
older than one window-0 period.  The advisor encodes the constraints
from Sections 4.3 and 7.1 as machine-checkable advice, so deployments
and experiments fail loudly instead of mysteriously.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.core.coefficient import coefficients, first_window_z
from repro.core.config import PrintQueueConfig
from repro.metrics.overhead import (
    config_is_feasible,
    pcie_limit_mbps,
    printqueue_storage_mbps,
    sram_utilization,
)


class Severity(Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Advice:
    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def advise(
    config: PrintQueueConfig,
    packet_interval_ns: Optional[float] = None,
    expected_max_depth: Optional[int] = None,
    query_horizon_ns: Optional[int] = None,
) -> List[Advice]:
    """Check a configuration against workload characteristics.

    Parameters
    ----------
    packet_interval_ns:
        Expected mean inter-departure time under congestion (defaults to
        the minimum-packet transmission delay of the config).
    expected_max_depth:
        The deepest queue (in monitor units) the deployment should
        resolve.
    query_horizon_ns:
        How far back asynchronous queries must reach.
    """
    advice: List[Advice] = []
    d_ns = (
        packet_interval_ns
        if packet_interval_ns is not None
        else float(config.min_pkt_tx_delay_ns)
    )

    # -- window-0 cell period vs packet interval (Theorem 3) ----------------
    z = first_window_z(config, d_ns)
    cell0 = config.cell_period_ns(0)
    if cell0 > 4 * d_ns:
        advice.append(
            Advice(
                Severity.WARNING,
                "m0-too-coarse",
                f"window-0 cell period {cell0} ns spans ~{cell0 / d_ns:.0f} "
                "packets; same-cycle collisions will drop most of them "
                "(cells hold a single packet).",
            )
        )
    if z < 0.3:
        advice.append(
            Advice(
                Severity.ERROR,
                "deep-windows-starved",
                f"z = 2^m0/d = {z:.3f}: the passing rule fires with "
                f"probability z^2 = {z * z:.4f}, so deeper windows receive "
                "almost nothing — queries older than one window-0 period "
                "will return near-empty results.  Raise m0 toward "
                f"log2(d) = {d_ns and __import__('math').log2(d_ns):.1f}.",
            )
        )

    # -- coefficient conditioning ---------------------------------------------
    coeff = coefficients(config, d_ns)
    if coeff[-1] < 1e-3:
        advice.append(
            Advice(
                Severity.WARNING,
                "deep-coefficient-tiny",
                f"coefficient[{config.T - 1}] = {coeff[-1]:.2e}: counts from "
                "the deepest window are multiplied by "
                f"{1 / max(coeff[-1], 1e-12):.0f}x — expect noisy estimates "
                "there (consider smaller alpha or T).",
            )
        )

    # -- polling feasibility (Figure 13) -----------------------------------------
    if not config_is_feasible(config):
        advice.append(
            Advice(
                Severity.ERROR,
                "polling-infeasible",
                f"register polling needs {printqueue_storage_mbps(config):.1f} "
                f"MB/s but the control plane sustains {pcie_limit_mbps():.1f} "
                "MB/s; window data will age out unread.  Increase alpha, T, "
                "or k (all lengthen the set period).",
            )
        )

    # -- SRAM budget (Figure 14b / 15) ----------------------------------------------
    utilization = sram_utilization(config, include_queue_monitor=True)
    if utilization > 1.0:
        advice.append(
            Advice(
                Severity.ERROR,
                "sram-over-budget",
                f"configuration needs {100 * utilization:.0f}% of the pipe "
                "SRAM budget; reduce k, T, qm_levels, or the port count.",
            )
        )
    elif utilization > 0.5:
        advice.append(
            Advice(
                Severity.INFO,
                "sram-pressure",
                f"configuration uses {100 * utilization:.0f}% of the pipe "
                "SRAM budget.",
            )
        )

    # -- queue-monitor resolution -------------------------------------------------
    if expected_max_depth is not None:
        levels_needed = expected_max_depth // config.qm_granularity
        if levels_needed > config.qm_levels:
            advice.append(
                Advice(
                    Severity.WARNING,
                    "qm-overflow",
                    f"expected depth {expected_max_depth} needs "
                    f"{levels_needed} monitor levels but only "
                    f"{config.qm_levels} are allocated; deep buildups will "
                    "clamp to the top level.",
                )
            )

    # -- query horizon vs retention ------------------------------------------------
    if query_horizon_ns is not None:
        # Double-buffered polling retains roughly two set periods of data
        # plus whatever the snapshot store keeps; the *windows themselves*
        # cover one set period, which is the hard floor per snapshot.
        if query_horizon_ns > config.set_period_ns:
            advice.append(
                Advice(
                    Severity.INFO,
                    "horizon-spans-snapshots",
                    f"queries reaching {query_horizon_ns} ns back span "
                    f"{query_horizon_ns / config.set_period_ns:.1f} set "
                    "periods; accuracy depends on the snapshot store depth "
                    "(max_snapshots).",
                )
            )

    return advice


def worst_severity(advice: List[Advice]) -> Optional[Severity]:
    """The most severe level present, or None for a clean bill."""
    for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO):
        if any(a.severity is severity for a in advice):
            return severity
    return None
