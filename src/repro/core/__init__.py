"""PrintQueue core: the paper's primary contribution.

* :class:`~repro.core.config.PrintQueueConfig` — m0/k/alpha/T parameters.
* :class:`~repro.core.windowset.TimeWindowSet` — Algorithm 1 (time windows).
* :mod:`~repro.core.coefficient` — Algorithm 2 (count recovery).
* :mod:`~repro.core.filtering` — Algorithm 3 (stale-cell filter).
* :class:`~repro.core.queuemonitor.QueueMonitor` — the Section 5 sparse stack.
* :class:`~repro.core.analysis.AnalysisProgram` — Section 6 control plane.
* :class:`~repro.core.printqueue.PrintQueuePort` / ``PrintQueue`` — per-port
  and multi-port orchestration (Figure 3 architecture).
* :class:`~repro.core.taxonomy.CulpritTaxonomy` — ground-truth direct /
  indirect / original culprits (Section 2 definitions).
"""

from repro.core.config import PrintQueueConfig
from repro.core.coefficient import coefficients, first_window_z
from repro.core.timewindow import CellRecord, TimeWindow
from repro.core.windowset import TimeWindowSet
from repro.core.filtering import FilteredWindow, filter_windows
from repro.core.queuemonitor import QueueMonitor, QueueMonitorSnapshot
from repro.core.queries import CulpritReport, FlowEstimate, QueryInterval
from repro.core.analysis import AnalysisProgram, TimeWindowSnapshot
from repro.core.printqueue import (
    BatchQueryResult,
    DataPlaneQueryResult,
    PrintQueue,
    PrintQueuePort,
    QueryResult,
)
from repro.core.taxonomy import CulpritTaxonomy
from repro.core.diagnosis import Diagnoser
from repro.core.multiqueue import ClassedQueueMonitor

__all__ = [
    "PrintQueueConfig",
    "coefficients",
    "first_window_z",
    "CellRecord",
    "TimeWindow",
    "TimeWindowSet",
    "FilteredWindow",
    "filter_windows",
    "QueueMonitor",
    "QueueMonitorSnapshot",
    "FlowEstimate",
    "QueryInterval",
    "CulpritReport",
    "AnalysisProgram",
    "TimeWindowSnapshot",
    "PrintQueue",
    "PrintQueuePort",
    "QueryResult",
    "BatchQueryResult",
    "DataPlaneQueryResult",
    "CulpritTaxonomy",
    "Diagnoser",
    "ClassedQueueMonitor",
]
