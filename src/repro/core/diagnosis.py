"""High-level diagnosis: a full Section-2 culprit report from PrintQueue
data alone.

The evaluation harness knows the true congestion-regime boundaries from
the ground-truth oracle, but a deployed PrintQueue must estimate them
from its own state.  :class:`Diagnoser` does that with the queue-monitor
snapshots: the regime start is approximated by the most recent snapshot
(at or before the victim's enqueue) whose stack top sat at/below an
"empty" threshold — i.e. the last time the control plane observed the
queue drained.  Given the regime estimate, the three queries of
Section 6.3 compose into one :class:`~repro.core.queries.CulpritReport`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.printqueue import PrintQueuePort
from repro.core.queries import CulpritReport, FlowEstimate, QueryInterval
from repro.errors import QueryError
from repro.switch.telemetry import DequeueRecord


class Diagnoser:
    """Compose PrintQueue's three query types into one victim report.

    Parameters
    ----------
    pq:
        The per-port PrintQueue instance to query.
    empty_threshold_levels:
        Stack-top level at/below which the queue counts as drained when
        estimating the congestion-regime start.
    """

    def __init__(self, pq: PrintQueuePort, empty_threshold_levels: int = 1) -> None:
        if empty_threshold_levels < 0:
            raise ValueError(f"negative threshold: {empty_threshold_levels}")
        self.pq = pq
        self.empty_threshold_levels = empty_threshold_levels

    # -- regime estimation --------------------------------------------------

    def estimate_regime_start(self, enq_timestamp: int) -> int:
        """Last observed drained instant at/before ``enq_timestamp``.

        Resolution is the queue-monitor polling cadence; with no drained
        snapshot on record the regime extends to the earliest snapshot
        (or 0 when none exists yet).
        """
        snapshots = self.pq.analysis.qm_snapshots
        candidates = [s for s in snapshots if s.time_ns <= enq_timestamp]
        drained = [
            s.time_ns
            for s in candidates
            if s.top <= self.empty_threshold_levels
        ]
        if drained:
            return max(drained)
        if candidates:
            return candidates[0].time_ns
        return 0

    # -- the composed report --------------------------------------------------

    def diagnose(
        self,
        enq_timestamp: int,
        deq_timestamp: int,
        use_data_plane_query: bool = False,
    ) -> CulpritReport:
        """Full direct / indirect / original report for a victim interval.

        ``use_data_plane_query`` routes the direct-culprit lookup through
        an on-demand register read (higher accuracy when issued promptly,
        Section 6.2); otherwise all queries run on the periodic snapshots.
        """
        if deq_timestamp < enq_timestamp:
            raise QueryError(
                f"victim dequeued before enqueue: {deq_timestamp} < {enq_timestamp}"
            )
        direct_interval = QueryInterval.for_victim(enq_timestamp, deq_timestamp)
        direct: Optional[FlowEstimate] = None
        if use_data_plane_query:
            result = self.pq.query(
                interval=direct_interval, mode="data_plane", at_ns=deq_timestamp
            )
            if result.accepted and result.estimate.total > 0:
                direct = result.estimate
            # Fall through when the trigger was rejected or the special
            # registers no longer cover the interval (an on-demand read
            # is only fresh at the victim's actual dequeue instant).
        if direct is None:
            direct = self.pq.query(interval=direct_interval).estimate

        regime_start = self.estimate_regime_start(enq_timestamp)
        if regime_start < enq_timestamp:
            indirect = self.pq.query(
                interval=QueryInterval(regime_start, enq_timestamp)
            ).estimate
        else:
            indirect = FlowEstimate()

        original = self.pq.query(at_ns=enq_timestamp).estimate
        return CulpritReport(
            victim_enq_ns=enq_timestamp,
            victim_deq_ns=deq_timestamp,
            direct=direct,
            indirect=indirect,
            original=original,
        )

    def diagnose_record(
        self, record: DequeueRecord, use_data_plane_query: bool = False
    ) -> CulpritReport:
        """Convenience wrapper taking a telemetry record."""
        return self.diagnose(
            record.enq_timestamp,
            record.deq_timestamp,
            use_data_plane_query=use_data_plane_query,
        )
