"""Query inputs and results (Section 6.3).

Time-window queries take a query *interval* and return per-flow packet
count estimates; queue-monitor queries take a query *point* and return the
original causes of the congestion standing at that instant.  Both kinds of
result aggregate culprits by flow, expressed as (flow ID, contribution)
per Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import QueryError
from repro.switch.packet import FlowKey


def flow_order_key(flow: FlowKey) -> Tuple[int, int, int, int, int]:
    """Deterministic secondary sort key for ranked per-flow outputs.

    Count ties must resolve identically no matter which code path (scalar
    walk, columnar batch, parallel sweep) produced the estimate.
    """
    return flow.sort_key()


@dataclass(frozen=True)
class QueryInterval:
    """A closed-open time interval ``[start_ns, end_ns)``."""

    start_ns: int
    end_ns: int

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise QueryError(
                f"empty query interval [{self.start_ns}, {self.end_ns})"
            )

    @property
    def length_ns(self) -> int:
        return self.end_ns - self.start_ns

    def intersect(self, start_ns: int, end_ns: int) -> Optional["QueryInterval"]:
        lo = max(self.start_ns, start_ns)
        hi = min(self.end_ns, end_ns)
        if hi <= lo:
            return None
        return QueryInterval(lo, hi)

    @classmethod
    def for_victim(cls, enq_timestamp: int, deq_timestamp: int) -> "QueryInterval":
        """The direct-culprit interval of a victim packet.

        The closed-open convention plus the +1 keeps both endpoints'
        dequeues inside the interval.
        """
        return cls(enq_timestamp, deq_timestamp + 1)


class FlowEstimate:
    """Per-flow packet-count estimates, the result of a time-window query."""

    def __init__(self, counts: Optional[Mapping[FlowKey, float]] = None) -> None:
        self._counts: Dict[FlowKey, float] = dict(counts or {})

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, flow: FlowKey) -> bool:
        return flow in self._counts

    def __getitem__(self, flow: FlowKey) -> float:
        return self._counts.get(flow, 0.0)

    def add(self, flow: FlowKey, count: float) -> None:
        if count < 0:
            raise ValueError(f"negative count: {count}")
        self._counts[flow] = self._counts.get(flow, 0.0) + count

    def merge(self, other: "FlowEstimate") -> "FlowEstimate":
        merged = FlowEstimate(self._counts)
        for flow, count in other.items():
            merged.add(flow, count)
        return merged

    def items(self) -> Iterable[Tuple[FlowKey, float]]:
        return self._counts.items()

    def as_dict(self) -> Dict[FlowKey, float]:
        return dict(self._counts)

    @property
    def total(self) -> float:
        return sum(self._counts.values())

    def top(self, n: int) -> List[Tuple[FlowKey, float]]:
        """The n largest flows by estimated contribution.

        Ties break on the numeric 5-tuple (not its string form), so the
        ranking is deterministic and identical across query paths.
        """
        return sorted(
            self._counts.items(), key=lambda kv: (-kv[1], flow_order_key(kv[0]))
        )[:n]

    def __repr__(self) -> str:
        return f"FlowEstimate({len(self._counts)} flows, total={self.total:.1f})"


@dataclass
class CulpritReport:
    """A full Section-2 diagnosis for one victim packet."""

    victim_enq_ns: int
    victim_deq_ns: int
    direct: FlowEstimate = field(default_factory=FlowEstimate)
    indirect: FlowEstimate = field(default_factory=FlowEstimate)
    original: FlowEstimate = field(default_factory=FlowEstimate)

    def summary(self, top: int = 5) -> str:
        lines = [
            f"victim queued {self.victim_deq_ns - self.victim_enq_ns} ns "
            f"([{self.victim_enq_ns}, {self.victim_deq_ns}])"
        ]
        for label, estimate in (
            ("direct", self.direct),
            ("indirect", self.indirect),
            ("original", self.original),
        ):
            lines.append(f"  {label} culprits ({estimate.total:.0f} pkts):")
            for flow, count in estimate.top(top):
                lines.append(f"    {flow}  ~{count:.1f} pkts")
        return "\n".join(lines)
