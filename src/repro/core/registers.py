"""Register banks and the Figure-8 flipping discipline.

The register index on the switch decomposes as::

    [1 bit data-plane-query][1 bit periodic][q bits port][k bits cell]

Flipping the second-highest bit alternates the bank that periodic updates
write to, so the control plane can read a frozen copy while the data plane
keeps recording.  Flipping the highest bit diverts updates to a *special*
bank during an on-demand (data-plane-triggered) read; the structure locks
until that read completes, and concurrent data-plane triggers are ignored.

:class:`BankedStructure` captures this discipline generically for any
structure exposing no internal time dependence (our
:class:`~repro.core.windowset.TimeWindowSet` qualifies: stale content is
removed by the Algorithm-3 filter rather than by clearing).
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, TypeVar

from repro.errors import RegisterError

S = TypeVar("S")


class BankedStructure(Generic[S]):
    """Three banks of a data-plane structure with Figure-8 semantics.

    Banks 0 and 1 alternate for periodic polling; bank 2 joins the
    rotation whenever a data-plane query freezes the current bank.  At any
    instant exactly one bank is *active* (receiving updates), and at most
    one bank is *locked* for an in-progress on-demand read.
    """

    def __init__(self, factory: Callable[[], S]) -> None:
        self.banks: List[S] = [factory(), factory(), factory()]
        self._active = 0
        self._locked: Optional[int] = None
        self.periodic_flips = 0
        self.dp_freezes = 0
        self.dp_rejections = 0

    @property
    def active(self) -> S:
        """The bank currently receiving data-plane updates."""
        return self.banks[self._active]

    @property
    def active_index(self) -> int:
        return self._active

    @property
    def locked_index(self) -> Optional[int]:
        return self._locked

    def _free_banks(self) -> List[int]:
        return [i for i in range(3) if i != self._active and i != self._locked]

    def periodic_flip(self) -> S:
        """Freeze the active bank for a periodic read; activate another.

        Returns the frozen bank.  While a data-plane read holds a lock,
        periodic updates "flip between the two unused sets" (Section 6.2)
        — which is exactly what choosing from :meth:`_free_banks` does.
        """
        frozen_index = self._active
        candidates = [i for i in self._free_banks()]
        if not candidates:
            raise RegisterError("no free bank to flip to")
        self._active = candidates[0]
        self.periodic_flips += 1
        return self.banks[frozen_index]

    def dp_freeze(self) -> Optional[S]:
        """Freeze the active bank for an on-demand read; lock it.

        Returns None (and counts a rejection) if another on-demand read is
        already in progress — "concurrent reads will be temporarily
        ignored" (Section 6.2).
        """
        if self._locked is not None:
            self.dp_rejections += 1
            return None
        frozen_index = self._active
        self._locked = frozen_index
        candidates = self._free_banks()
        assert candidates, "three banks always leave one free"
        self._active = candidates[0]
        self.dp_freezes += 1
        return self.banks[frozen_index]

    def dp_release(self) -> None:
        """The control plane finished reading the special registers."""
        if self._locked is None:
            raise RegisterError("no data-plane read in progress")
        self._locked = None
