"""PrintQueue configuration: the (m0, k, alpha, T) parameter family.

The paper's evaluation uses, e.g., ``m0=6, alpha=2, k=12, T=4`` for the UW
trace and ``m0=10, alpha=1, k=12, T=4`` for WS/DM (Section 7.1).  This
module derives all the timing quantities of Section 4.1 from those four
numbers:

* cell period of window ``i``: ``2^(m0 + alpha*i)`` ns,
* window period of window ``i``: ``2^(m0 + alpha*i + k)`` ns,
* set period: ``sum_i window_period(i) = (2^(alpha*T)-1)/(2^alpha - 1) *
  2^(m0+k)`` ns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.units import DEFAULT_LINK_RATE_BPS, MIN_PACKET_BYTES, min_pkt_tx_delay_ns


def round_up_ports(num_ports: int) -> int:
    """``r(#ports)``: round the port count up to the next power of two."""
    if num_ports <= 0:
        raise ConfigError(f"non-positive port count: {num_ports}")
    r = 1
    while r < num_ports:
        r *= 2
    return r


@dataclass(frozen=True)
class PrintQueueConfig:
    """Static configuration of one PrintQueue deployment.

    Attributes
    ----------
    m0:
        Window-0 cell-period exponent; ``2^m0`` ns should not exceed the
        transmission delay of a minimum-sized packet (Theorem 3).
    k:
        Cells-per-window exponent (each window has ``2^k`` cells).
    alpha:
        Compression factor between successive windows.
    T:
        Number of time windows.
    qm_levels:
        Queue-monitor register length (max queue depth / granularity).
    qm_granularity:
        Depth units folded into one queue-monitor level.
    min_packet_bytes:
        Size used for ``d`` in Theorem 3 / Algorithm 2.
    """

    m0: int = 6
    k: int = 12
    alpha: int = 2
    T: int = 4
    link_rate_bps: int = DEFAULT_LINK_RATE_BPS
    min_packet_bytes: int = MIN_PACKET_BYTES
    qm_levels: int = 1 << 16
    qm_granularity: int = 1
    #: How often the control plane snapshots the queue monitor.  ``None``
    #: divides the set period by 8: queue-monitor queries return "the
    #: snapshot closest to the query time" (Section 6.3), so its useful
    #: resolution is its polling cadence, and the stack is much cheaper to
    #: read than a full time-window set.
    qm_poll_period_ns: Optional[int] = None
    num_ports: int = 1

    def __post_init__(self) -> None:
        if self.m0 < 0 or self.m0 > 24:
            raise ConfigError(f"m0 out of range: {self.m0}")
        if self.k < 1 or self.k > 20:
            raise ConfigError(f"k out of range: {self.k}")
        if self.alpha < 1 or self.alpha > 8:
            raise ConfigError(f"alpha out of range: {self.alpha}")
        if self.T < 1 or self.T > 16:
            raise ConfigError(f"T out of range: {self.T}")
        if self.link_rate_bps <= 0:
            raise ConfigError("non-positive link rate")
        if self.qm_levels < 1:
            raise ConfigError("queue monitor needs at least one level")
        if self.qm_granularity < 1:
            raise ConfigError("non-positive queue monitor granularity")
        if self.qm_poll_period_ns is not None and self.qm_poll_period_ns < 1:
            raise ConfigError("non-positive queue monitor poll period")
        if self.num_ports < 1:
            raise ConfigError("need at least one port")

    # -- derived quantities (Section 4.1) --------------------------------

    @property
    def num_cells(self) -> int:
        """Cells per time window, ``2^k``."""
        return 1 << self.k

    def shift(self, window: int) -> int:
        """Total right-shift applied to a timestamp entering ``window``."""
        self._check_window(window)
        return self.m0 + self.alpha * window

    def cell_period_ns(self, window: int) -> int:
        """``2^(m0 + alpha*i)`` — the timespan one cell represents."""
        return 1 << self.shift(window)

    def window_period_ns(self, window: int) -> int:
        """``2^(m0 + alpha*i + k)`` — the timespan one window represents."""
        return 1 << (self.shift(window) + self.k)

    @property
    def set_period_ns(self) -> int:
        """Total contiguous timespan covered by all ``T`` windows."""
        return sum(self.window_period_ns(i) for i in range(self.T))

    @property
    def effective_qm_poll_period_ns(self) -> int:
        """Resolved queue-monitor polling cadence."""
        if self.qm_poll_period_ns is not None:
            return self.qm_poll_period_ns
        return max(1, self.set_period_ns // 8)

    @property
    def min_pkt_tx_delay_ns(self) -> int:
        """``d`` of Theorem 3 at the configured link rate."""
        return min_pkt_tx_delay_ns(self.link_rate_bps, self.min_packet_bytes)

    @property
    def rounded_ports(self) -> int:
        """``r(#ports)`` of Section 6.1."""
        return round_up_ports(self.num_ports)

    def _check_window(self, window: int) -> None:
        if not 0 <= window < self.T:
            raise ConfigError(f"window index {window} out of [0, {self.T})")

    def describe(self) -> str:
        """Human-readable one-line summary (used by benches)."""
        return (
            f"m0={self.m0} k={self.k} alpha={self.alpha} T={self.T} "
            f"set_period={self.set_period_ns / 1e6:.3f}ms"
        )


#: The paper's UW-trace configuration (Section 7.1).
UW_CONFIG = PrintQueueConfig(m0=6, k=12, alpha=2, T=4, min_packet_bytes=64)

#: The paper's WS/DM-trace configuration (Section 7.1).
WSDM_CONFIG = PrintQueueConfig(m0=10, k=12, alpha=1, T=4, min_packet_bytes=1500)
