"""Per-port and multi-port PrintQueue orchestration (Figure 3).

:class:`PrintQueuePort` wires one port's data path to the analysis
program: every enqueue feeds the queue monitor, every dequeue feeds the
active time-window bank (and the monitor's drain side), periodic polls
fire every set period, and data-plane trigger policies can initiate
on-demand reads at the instant a victim dequeues.

:class:`PrintQueue` manages per-port activation (the Section 6.1 flow
table: packets to ports without PrintQueue enabled are ignored), rounds
the port count to ``r(#ports)`` for register partitioning, and exposes
aggregate SRAM accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.analysis import AnalysisProgram, TimeWindowSnapshot
from repro.core.config import PrintQueueConfig
from repro.core.multiqueue import ClassedQueueMonitor
from repro.core.queries import FlowEstimate, QueryInterval
from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import ConfigError, QueryError
from repro.switch.packet import Packet
from repro.switch.port import EgressPort

#: A data-plane trigger policy: given a just-dequeued packet, decide
#: whether to initiate an on-demand read (Section 6.2's examples are a
#: queuing-delay threshold, sampling a priority flow, or a probe flag).
TriggerPolicy = Callable[[Packet], bool]


def delay_threshold_trigger(min_delay_ns: int) -> TriggerPolicy:
    """Trigger on packets with unusually high queuing delay."""

    def policy(packet: Packet) -> bool:
        return (packet.deq_timedelta or 0) >= min_delay_ns

    return policy


def depth_threshold_trigger(min_depth: int) -> TriggerPolicy:
    """Trigger on packets that observed a deep queue at enqueue."""

    def policy(packet: Packet) -> bool:
        return (packet.enq_qdepth or 0) >= min_depth

    return policy


@dataclass
class DataPlaneQueryResult:
    """One completed on-demand query."""

    trigger_time_ns: int
    interval: QueryInterval
    estimate: FlowEstimate
    snapshot: TimeWindowSnapshot


class PrintQueuePort:
    """PrintQueue instance for a single egress port."""

    def __init__(
        self,
        config: PrintQueueConfig,
        d_ns: Optional[float] = None,
        trigger: Optional[TriggerPolicy] = None,
        model_dp_read_cost: bool = True,
        units_of: Optional[Callable[[Packet], int]] = None,
        num_classes: Optional[int] = None,
    ) -> None:
        self.config = config
        self.analysis = AnalysisProgram(
            config, d_ns=d_ns, model_dp_read_cost=model_dp_read_cost
        )
        self.trigger = trigger
        #: optional per-packet depth-unit accounting (e.g. buffer cells);
        #: defaults to one unit per packet, matching EgressQueue's default.
        self.units_of = units_of
        #: per-class-of-service queue monitoring (Section 5: the monitor
        #: "can track each priority or rank separately").  When set, the
        #: packet's ``priority`` selects the class stack and enqueue-time
        #: depths are interpreted per class queue.
        self.classed_monitor: Optional[ClassedQueueMonitor] = None
        self._classed_snapshots: List[Tuple[int, Dict[int, QueueMonitorSnapshot]]] = []
        if num_classes is not None:
            self.classed_monitor = ClassedQueueMonitor(
                config.qm_levels, config.qm_granularity, max_classes=num_classes
            )
        self.dp_results: List[DataPlaneQueryResult] = []
        self._next_poll_ns = config.set_period_ns
        self._qm_period_ns = config.effective_qm_poll_period_ns
        self._next_qm_poll_ns = self._qm_period_ns
        self.packets_seen = 0

    # -- data-path hooks (attach to an EgressPort) --------------------------

    def on_enqueue(self, packet: Packet) -> None:
        """Traffic-manager enqueue: feed the queue monitor's rise side.

        ``enq_qdepth`` is the depth *before* the packet (Table-1
        semantics); the level written is the depth it raised the queue to.
        The per-packet unit count comes from the same accounting the queue
        itself uses (1 unit per packet unless cell-based).
        """
        assert packet.enq_qdepth is not None
        units = self.units_of(packet) if self.units_of is not None else 1
        depth_after = packet.enq_qdepth + units
        self.analysis.queue_monitor.on_enqueue(packet.flow, depth_after)
        if self.classed_monitor is not None:
            self.classed_monitor.on_enqueue(packet.priority, packet.flow, depth_after)

    def on_dequeue(self, packet: Packet) -> None:
        """Egress pipeline: time windows + monitor drain + trigger check."""
        deq_ts = packet.deq_timestamp
        self._poll_if_due(deq_ts)
        self.analysis.on_dequeue(packet.flow, deq_ts)
        if packet.deq_qdepth is not None:
            self.analysis.queue_monitor.on_dequeue(packet.flow, packet.deq_qdepth)
            if self.classed_monitor is not None:
                self.classed_monitor.on_dequeue(
                    packet.priority, packet.flow, packet.deq_qdepth
                )
        self.packets_seen += 1
        if self.trigger is not None and self.trigger(packet):
            self.data_plane_query(packet)

    # -- event-stream interface (used by the offline fast-path driver) ------

    def process_enqueue(self, flow, time_ns: int, depth_after: int) -> None:
        """Offline-driver enqueue event (queue monitor rise side)."""
        self._poll_if_due(time_ns)
        self.analysis.queue_monitor.on_enqueue(flow, depth_after)

    def process_dequeue(self, flow, deq_ts: int, depth_after: int) -> None:
        """Offline-driver dequeue event (time windows + monitor drain)."""
        self._poll_if_due(deq_ts)
        self.analysis.on_dequeue(flow, deq_ts)
        self.analysis.queue_monitor.on_dequeue(flow, depth_after)
        self.packets_seen += 1

    # -- polling -------------------------------------------------------------

    def _poll_if_due(self, now_ns: int) -> None:
        while now_ns >= self._next_qm_poll_ns:
            # Skip the standalone read when a full poll lands at the same
            # instant (the full poll snapshots the monitor itself).
            if self._next_qm_poll_ns != self._next_poll_ns:
                self.analysis.qm_poll(self._next_qm_poll_ns)
            if self.classed_monitor is not None:
                self._classed_snapshots.append(
                    (
                        self._next_qm_poll_ns,
                        self.classed_monitor.snapshot(self._next_qm_poll_ns),
                    )
                )
            self._next_qm_poll_ns += self._qm_period_ns
        while now_ns >= self._next_poll_ns:
            self.analysis.periodic_poll(self._next_poll_ns)
            self._next_poll_ns += self.config.set_period_ns

    def finish(self, now_ns: int) -> None:
        """Final poll at end of run so no data is left unread."""
        self._poll_if_due(now_ns)
        self.analysis.periodic_poll(now_ns)

    # -- queries -------------------------------------------------------------

    def data_plane_query(self, packet: Packet) -> Optional[DataPlaneQueryResult]:
        """On-demand read + query for a victim packet, at its dequeue."""
        interval = QueryInterval.for_victim(packet.enq_timestamp, packet.deq_timestamp)
        return self.data_plane_query_interval(packet.deq_timestamp, interval)

    def data_plane_query_interval(
        self, now_ns: int, interval: QueryInterval
    ) -> Optional[DataPlaneQueryResult]:
        """On-demand read at ``now_ns`` + query over ``interval``.

        Returns None when the trigger is rejected (a previous read still
        holds the special registers under the hardware cost model).
        """
        snapshot = self.analysis.dp_read(now_ns)
        if snapshot is None:
            return None
        # The on-demand read captures the queue monitor alongside the time
        # windows, so original-culprit queries can resolve this instant.
        if self.analysis.model_dp_read_cost is False:
            self.analysis.qm_poll(now_ns)
        estimate = self.analysis.query_snapshot(snapshot, interval)
        result = DataPlaneQueryResult(now_ns, interval, estimate, snapshot)
        self.dp_results.append(result)
        return result

    def async_query(self, interval: QueryInterval) -> FlowEstimate:
        """Asynchronous (control-plane) query over the periodic snapshots."""
        periodic = [
            s for s in self.analysis.tw_snapshots if s.source == "periodic"
        ]
        return self.analysis.query_time_windows(interval, snapshots=periodic)

    def original_culprits(self, time_ns: int) -> FlowEstimate:
        """Per-flow original-culprit contributions at ``time_ns``."""
        return self.analysis.original_culprits(time_ns)

    def original_culprits_by_class(
        self, time_ns: int, classes: Optional[Iterable[int]] = None
    ) -> FlowEstimate:
        """Original culprits restricted to specific classes of service.

        For a class-``c`` victim under strict priority the relevant
        classes are ``range(c + 1)`` — only equal-or-higher-priority
        traffic can have delayed it.
        """
        if self.classed_monitor is None:
            raise QueryError("port was created without num_classes")
        if not self._classed_snapshots:
            raise QueryError("no classed queue-monitor snapshots yet")
        _, snapshots = min(
            self._classed_snapshots, key=lambda ts: abs(ts[0] - time_ns)
        )
        return self.classed_monitor.original_culprits(snapshots, classes)


class PrintQueue:
    """Multi-port deployment: the Section 6.1 port-configuration layer."""

    def __init__(
        self,
        config: PrintQueueConfig,
        port_ids: Iterable[int],
        d_ns: Optional[float] = None,
        trigger: Optional[TriggerPolicy] = None,
    ) -> None:
        ids = list(port_ids)
        if not ids:
            raise ConfigError("PrintQueue must be enabled on at least one port")
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate port ids: {ids}")
        self.config = config
        self.port_ids = ids
        self.ports: Dict[int, PrintQueuePort] = {
            pid: PrintQueuePort(config, d_ns=d_ns, trigger=trigger) for pid in ids
        }
        self.ignored_packets = 0

    @property
    def rounded_ports(self) -> int:
        """``r(#ports)``: partitions allocated in each register array."""
        r = 1
        while r < len(self.port_ids):
            r *= 2
        return r

    def port(self, port_id: int) -> PrintQueuePort:
        """The per-port PrintQueue instance for ``port_id``."""
        return self.ports[port_id]

    def attach(self, switch_ports: Iterable[EgressPort]) -> None:
        """Install hooks on the matching egress ports of a simulator.

        Ports without PrintQueue enabled are left untouched — the ingress
        flow table "matches the destination port and ... if no matching is
        found, the packet is ignored".
        """
        for egress in switch_ports:
            pq = self.ports.get(egress.port_id)
            if pq is None:
                continue
            egress.add_enqueue_hook(pq.on_enqueue)
            egress.add_egress_hook(pq.on_dequeue)

    def on_packet_dequeued(self, packet: Packet) -> None:
        """Routing shim for externally driven pipelines."""
        pq = self.ports.get(packet.egress_spec if packet.egress_spec is not None else -1)
        if pq is None:
            self.ignored_packets += 1
            return
        pq.on_dequeue(packet)

    def finish(self, now_ns: int) -> None:
        """Final poll on every port so no register data is left unread."""
        for pq in self.ports.values():
            pq.finish(now_ns)
