"""Per-port and multi-port PrintQueue orchestration (Figure 3).

:class:`PrintQueuePort` wires one port's data path to the analysis
program: every enqueue feeds the queue monitor, every dequeue feeds the
active time-window bank (and the monitor's drain side), periodic polls
fire every set period, and data-plane trigger policies can initiate
on-demand reads at the instant a victim dequeues.

:class:`PrintQueue` manages per-port activation (the Section 6.1 flow
table: packets to ports without PrintQueue enabled are ignored), rounds
the port count to ``r(#ports)`` for register partitioning, and exposes
aggregate SRAM accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.analysis import AnalysisProgram, TimeWindowSnapshot
from repro.core.config import PrintQueueConfig
from repro.core.multiqueue import ClassedQueueMonitor
from repro.core.queries import FlowEstimate, QueryInterval
from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import ConfigError, QueryError
from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import FaultPlan, profile
from repro.faults.resilience import CoverageReport, ResilientPoller, RetryPolicy
from repro.obs.metrics import Metrics
from repro.store import RetentionPolicy, SnapshotStore
from repro.switch.packet import FlowKey, Packet
from repro.switch.port import EgressPort

#: A data-plane trigger policy: given a just-dequeued packet, decide
#: whether to initiate an on-demand read (Section 6.2's examples are a
#: queuing-delay threshold, sampling a priority flow, or a probe flag).
TriggerPolicy = Callable[[Packet], bool]


def delay_threshold_trigger(min_delay_ns: int) -> TriggerPolicy:
    """Trigger on packets with unusually high queuing delay."""

    def policy(packet: Packet) -> bool:
        return (packet.deq_timedelta or 0) >= min_delay_ns

    return policy


def depth_threshold_trigger(min_depth: int) -> TriggerPolicy:
    """Trigger on packets that observed a deep queue at enqueue."""

    def policy(packet: Packet) -> bool:
        return (packet.enq_qdepth or 0) >= min_depth

    return policy


@dataclass
class DataPlaneQueryResult:
    """One completed on-demand query."""

    trigger_time_ns: int
    interval: QueryInterval
    estimate: FlowEstimate
    snapshot: TimeWindowSnapshot


@dataclass
class QueryResult:
    """The single result type of :meth:`PrintQueuePort.query`.

    Attributes
    ----------
    kind:
        ``"time_windows"`` for interval queries, ``"queue_monitor"`` for
        original-culprit (point-in-time) queries.
    mode:
        ``"async"`` or ``"data_plane"`` for time-window queries; ``None``
        for queue-monitor queries.
    estimate:
        Per-flow culprit contributions (empty for a rejected data-plane
        trigger).
    interval / at_ns / classes:
        Echo of the query inputs (``at_ns`` is also the resolved read
        instant of a data-plane query).
    snapshot:
        The frozen time-window bank an accepted data-plane query ran on.
    accepted:
        False when a data-plane trigger was rejected because a previous
        on-demand read still held the special registers.
    degraded / coverage:
        Set only when fault injection is active on the port: ``degraded``
        is True when measurement loss (lost polls, quarantined cells,
        lost monitor snapshots) overlaps this query, and ``coverage`` is
        the :class:`~repro.faults.CoverageReport` naming exactly what
        was missing.  A fault-free port always reports
        ``degraded=False, coverage=None``.
    """

    kind: str
    mode: Optional[str]
    estimate: FlowEstimate
    interval: Optional[QueryInterval] = None
    at_ns: Optional[int] = None
    classes: Optional[Tuple[int, ...]] = None
    snapshot: Optional[TimeWindowSnapshot] = None
    accepted: bool = True
    degraded: bool = False
    coverage: Optional[CoverageReport] = None

    def top(self, n: int) -> List[Tuple[FlowKey, float]]:
        """The n largest culprit flows (delegates to the estimate)."""
        return self.estimate.top(n)


@dataclass
class BatchQueryResult:
    """The result of a batched multi-victim time-window query.

    Returned by ``PrintQueuePort.query(intervals=[...])``.  ``estimates``
    is position-aligned with ``intervals``; indexing or iterating yields
    per-victim :class:`QueryResult` views, so downstream code written
    against the single-query surface works per victim unchanged.
    """

    kind: str
    mode: str
    intervals: List[QueryInterval]
    estimates: List[FlowEstimate]
    #: position-aligned per-victim coverage reports; None on a fault-free
    #: port (so the fault-free result object is unchanged bit for bit).
    coverages: Optional[List[CoverageReport]] = None

    @property
    def degraded(self) -> bool:
        """True when any victim's interval overlaps measurement loss."""
        if not self.coverages:
            return False
        return any(c.degraded for c in self.coverages)

    def __len__(self) -> int:
        return len(self.estimates)

    def __getitem__(self, i: int) -> QueryResult:
        coverage = self.coverages[i] if self.coverages else None
        return QueryResult(
            kind=self.kind,
            mode=self.mode,
            estimate=self.estimates[i],
            interval=self.intervals[i],
            degraded=coverage.degraded if coverage is not None else False,
            coverage=coverage,
        )

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results())

    def results(self) -> List[QueryResult]:
        """Per-victim :class:`QueryResult` views, in input order."""
        return [self[i] for i in range(len(self.estimates))]


class PrintQueuePort:
    """PrintQueue instance for a single egress port."""

    def __init__(
        self,
        config: PrintQueueConfig,
        d_ns: Optional[float] = None,
        trigger: Optional[TriggerPolicy] = None,
        model_dp_read_cost: bool = True,
        units_of: Optional[Callable[[Packet], int]] = None,
        num_classes: Optional[int] = None,
        metrics: Optional[Metrics] = None,
        faults: Optional[object] = None,
        retry_policy: Optional[RetryPolicy] = None,
        faults_strict: bool = False,
        store: Optional[SnapshotStore] = None,
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        self.config = config
        self.analysis = AnalysisProgram(
            config,
            d_ns=d_ns,
            model_dp_read_cost=model_dp_read_cost,
            store=store,
            retention=retention,
        )
        self.trigger = trigger
        #: optional repro.obs registry.  The structure counters are plain
        #: integers and always on; attaching a registry additionally
        #: records query latencies, ingest timings, and a poll-boundary
        #: counter timeline.  Collection never mutates structure state, so
        #: diagnosis results are bit-identical with or without it.
        self.attach_metrics(metrics)
        #: optional per-packet depth-unit accounting (e.g. buffer cells);
        #: defaults to one unit per packet, matching EgressQueue's default.
        self.units_of = units_of
        #: per-class-of-service queue monitoring (Section 5: the monitor
        #: "can track each priority or rank separately").  When set, the
        #: packet's ``priority`` selects the class stack and enqueue-time
        #: depths are interpreted per class queue.
        self.classed_monitor: Optional[ClassedQueueMonitor] = None
        self._classed_snapshots: List[Tuple[int, Dict[int, QueueMonitorSnapshot]]] = []
        if num_classes is not None:
            self.classed_monitor = ClassedQueueMonitor(
                config.qm_levels, config.qm_granularity, max_classes=num_classes
            )
        self.dp_results: List[DataPlaneQueryResult] = []
        self._next_poll_ns = config.set_period_ns
        self._qm_period_ns = config.effective_qm_poll_period_ns
        self._next_qm_poll_ns = self._qm_period_ns
        self.packets_seen = 0
        #: fault injection (repro.faults): off by default.  ``faults``
        #: accepts a profile name, a FaultPlan, or a FaultInjector; when
        #: set, every poll and on-demand read goes through the resilient
        #: path (retry + validation + quarantine) and query results
        #: carry degraded/coverage info.  When None, none of that code
        #: runs — outputs are bit-identical to a build without it.
        self.faults: Optional[FaultInjector] = None
        self._poller: Optional[ResilientPoller] = None
        if faults is not None:
            injector = as_injector(faults, metrics=metrics)
            self.faults = injector
            self._poller = ResilientPoller(
                self,
                injector,
                retry_policy=retry_policy,
                metrics=metrics,
                strict=faults_strict,
            )

    def attach_metrics(self, metrics: Optional[Metrics]) -> None:
        """(Re)bind the observability registry and its timing handles.

        Called at construction, and by the sharded ingest driver when it
        adopts a worker-process port back into the parent: the worker's
        counters are merged into the parent registry first, then every
        handle re-points here so later queries/samples land in it.
        """
        self.metrics = metrics
        if metrics is not None:
            self._obs_apply_ns = metrics.histogram("pq_ingest_apply_ns")
            self._obs_absorb_ns = metrics.histogram("pq_ingest_absorb_ns")
            # Per-stage timing histograms (the profile-driven shaving
            # loop's vocabulary): the same spans as the two ingest
            # histograms above, under the pq_ingest_stage_* names the
            # generate/fifo/filter/encode stages also publish.
            self._obs_stage_qm_ns = metrics.histogram(
                "pq_ingest_stage_qm_write_back_ns"
            )
            self._obs_stage_absorb_ns = metrics.histogram(
                "pq_ingest_stage_absorb_ns"
            )
            self.analysis.attach_stage_observers(metrics)
        else:
            self._obs_apply_ns = None
            self._obs_absorb_ns = None
            self._obs_stage_qm_ns = None
            self._obs_stage_absorb_ns = None
        # Fault-path instruments follow the registry (no-op without
        # faults; ResilientPoller re-derives its handles the same way).
        injector = getattr(self, "faults", None)
        if injector is not None:
            injector.metrics = metrics
        poller = getattr(self, "_poller", None)
        if poller is not None:
            poller.metrics = metrics
            if metrics is not None:
                poller._obs_backoff = metrics.histogram(
                    "pq_fault_retry_backoff_ns"
                )
                poller._obs_retries = metrics.counter(
                    "pq_faults_retries_total"
                )
            else:
                poller._obs_backoff = None
                poller._obs_retries = None

    # -- data-path hooks (attach to an EgressPort) --------------------------

    def on_enqueue(self, packet: Packet) -> None:
        """Traffic-manager enqueue: feed the queue monitor's rise side.

        ``enq_qdepth`` is the depth *before* the packet (Table-1
        semantics); the level written is the depth it raised the queue to.
        The per-packet unit count comes from the same accounting the queue
        itself uses (1 unit per packet unless cell-based).
        """
        assert packet.enq_qdepth is not None
        units = self.units_of(packet) if self.units_of is not None else 1
        depth_after = packet.enq_qdepth + units
        self.analysis.queue_monitor.on_enqueue(packet.flow, depth_after)
        if self.classed_monitor is not None:
            self.classed_monitor.on_enqueue(packet.priority, packet.flow, depth_after)

    def on_dequeue(self, packet: Packet) -> None:
        """Egress pipeline: time windows + monitor drain + trigger check."""
        deq_ts = packet.deq_timestamp
        self._poll_if_due(deq_ts)
        self.analysis.on_dequeue(packet.flow, deq_ts)
        if packet.deq_qdepth is not None:
            self.analysis.queue_monitor.on_dequeue(packet.flow, packet.deq_qdepth)
            if self.classed_monitor is not None:
                self.classed_monitor.on_dequeue(
                    packet.priority, packet.flow, packet.deq_qdepth
                )
        self.packets_seen += 1
        if self.trigger is not None and self.trigger(packet):
            self._dp_query_packet(packet)

    # -- event-stream interface (used by the offline fast-path driver) ------

    def process_enqueue(self, flow: FlowKey, time_ns: int, depth_after: int) -> None:
        """Offline-driver enqueue event (queue monitor rise side)."""
        self._poll_if_due(time_ns)
        self.analysis.queue_monitor.on_enqueue(flow, depth_after)

    def process_dequeue(self, flow: FlowKey, deq_ts: int, depth_after: int) -> None:
        """Offline-driver dequeue event (time windows + monitor drain)."""
        self._poll_if_due(deq_ts)
        self.analysis.on_dequeue(flow, deq_ts)
        self.analysis.queue_monitor.on_dequeue(flow, depth_after)
        self.packets_seen += 1

    def process_batch(
        self,
        is_enqueue: "np.ndarray",
        flows: Sequence[FlowKey],
        times_ns: "np.ndarray",
        depth_after: "np.ndarray",
    ) -> None:
        """Batched equivalent of ``process_enqueue``/``process_dequeue``.

        The caller (:class:`repro.engine.IngestPipeline`) guarantees that
        no poll boundary falls strictly inside the batch, so the whole
        batch lands in the same active bank and the same monitor epoch;
        polls due at or before the first event fire here, exactly as the
        scalar path would have fired them.
        """
        n = len(times_ns)
        if n == 0:
            return
        self._poll_if_due(int(times_ns[0]))
        timing = self._obs_apply_ns is not None
        if timing:
            t0 = perf_counter_ns()
        self.analysis.queue_monitor.apply_batch(is_enqueue, flows, depth_after)
        if timing:
            t1 = perf_counter_ns()
            self._obs_apply_ns.observe(t1 - t0)
            self._obs_stage_qm_ns.observe(t1 - t0)
        deq = ~is_enqueue
        num_deq = int(deq.sum())
        if num_deq:
            if num_deq == n:
                self.analysis.on_dequeue_batch(flows, times_ns)
            else:
                try:
                    deq_flows = flows[deq]
                except TypeError:
                    deq_flows = [f for f, d in zip(flows, deq) if d]
                self.analysis.on_dequeue_batch(deq_flows, times_ns[deq])
            self.packets_seen += num_deq
            if timing:
                dt = perf_counter_ns() - t1
                self._obs_absorb_ns.observe(dt)
                self._obs_stage_absorb_ns.observe(dt)

    # -- polling -------------------------------------------------------------

    @property
    def next_poll_boundary_ns(self) -> int:
        """The next instant at which a (qm or full) poll becomes due.

        Under fault injection a delayed poll's late fire time also
        bounds the boundary, so the batched ingest engine re-slices at
        the catch-up instant exactly as the scalar path fires it.
        """
        boundary = min(self._next_qm_poll_ns, self._next_poll_ns)
        if self._poller is not None:
            pending = self._poller.pending_full_ns
            if pending is not None and pending < boundary:
                boundary = pending
        return boundary

    def _poll_if_due(self, now_ns: int) -> None:
        if self._poller is not None:
            self._poll_if_due_resilient(now_ns)
            return
        while now_ns >= self._next_qm_poll_ns:
            # Skip the standalone read when a full poll lands at the same
            # instant (the full poll snapshots the monitor itself).
            if self._next_qm_poll_ns != self._next_poll_ns:
                self.analysis.qm_poll(self._next_qm_poll_ns)
            if self.classed_monitor is not None:
                self._classed_snapshots.append(
                    (
                        self._next_qm_poll_ns,
                        self.classed_monitor.snapshot(self._next_qm_poll_ns),
                    )
                )
            self._next_qm_poll_ns += self._qm_period_ns
        while now_ns >= self._next_poll_ns:
            self.analysis.periodic_poll(self._next_poll_ns)
            if self.metrics is not None:
                self._sample_metrics(self._next_poll_ns)
            self._next_poll_ns += self.config.set_period_ns

    def _poll_if_due_resilient(self, now_ns: int) -> None:
        """The fault-aware twin of :meth:`_poll_if_due`.

        Fires the same polls at the same logical instants (standalone
        monitor reads first at a shared instant, exactly like the
        perfect-channel loop), but routes each through the
        :class:`~repro.faults.ResilientPoller` and additionally fires a
        delayed poll at its catch-up time.  Both ingest engines call
        this at identical points, so injected faults and their handling
        are engine-independent.
        """
        poller = self._poller
        while True:
            next_qm = self._next_qm_poll_ns
            next_full = self._next_poll_ns
            t = min(next_qm, next_full)
            pending = poller.pending_full_ns
            if pending is not None and pending < t:
                t = pending
            if now_ns < t:
                return
            if pending is not None and t == pending:
                poller.fire_pending()
                continue
            if t == next_qm:
                if next_qm != next_full:
                    poller.poll_qm(next_qm)
                if self.classed_monitor is not None:
                    self._classed_snapshots.append(
                        (next_qm, self.classed_monitor.snapshot(next_qm))
                    )
                self._next_qm_poll_ns += self._qm_period_ns
                continue
            poller.poll_full(next_full)
            if self.metrics is not None:
                self._sample_metrics(next_full)
            self._next_poll_ns += self.config.set_period_ns

    def _sample_metrics(self, now_ns: int) -> None:
        """Record a poll-boundary snapshot of the key structure counters.

        The sampled values are deterministic functions of the event
        stream up to ``now_ns``, so the timeline is identical between the
        scalar and batched ingest engines.
        """
        banks = self.analysis.tw_banks.banks
        monitor = self.analysis.queue_monitor
        self.metrics.sample(
            now_ns,
            {
                "packets_seen": self.packets_seen,
                "tw_updates": sum(b.updates for b in banks),
                "tw_passes": sum(b.passes for b in banks),
                "tw_drops": sum(b.drops for b in banks),
                "qm_pushes": monitor.pushes,
                "qm_drains": monitor.drains,
                "qm_high_water": monitor.high_water,
            },
        )

    def finish(self, now_ns: int) -> None:
        """Final poll at end of run so no data is left unread.

        The closing read is operator-driven (a deliberate flush, not a
        raced periodic poll), so it is never fault-injected; a delayed
        poll still pending at this point is subsumed by it — its bank
        never flipped, so the flush reads everything it would have.
        """
        self._poll_if_due(now_ns)
        if self._poller is not None:
            self._poller.finalize(now_ns)
        self.analysis.periodic_poll(now_ns)
        if self._poller is not None and self.analysis.qm_snapshots:
            self._poller.note_stored_qm(self.analysis.qm_snapshots[-1])
        if self.metrics is not None:
            self._sample_metrics(now_ns)

    # -- queries -------------------------------------------------------------

    def query(
        self,
        *,
        interval: Optional[QueryInterval] = None,
        intervals: Optional[Iterable[QueryInterval]] = None,
        mode: str = "async",
        at_ns: Optional[int] = None,
        classes: Optional[Iterable[int]] = None,
    ) -> Union[QueryResult, BatchQueryResult]:
        """The unified query entrypoint (keyword-only).

        Three query families share this surface:

        * **Time-window queries** — pass ``interval=``.  ``mode="async"``
          runs over the periodic snapshots; ``mode="data_plane"`` performs
          an on-demand register read at ``at_ns`` (default: the interval's
          last covered instant) and queries the frozen bank.  A rejected
          trigger (a previous read still draining) returns a result with
          ``accepted=False`` and an empty estimate.
        * **Batched time-window queries** — pass ``intervals=`` (a
          sequence of ``QueryInterval``) for the multi-victim columnar
          path: one compiled snapshot plan answers every victim,
          amortising sorting/compilation/coefficient lookup across the
          batch.  Returns a :class:`BatchQueryResult` whose per-victim
          estimates are numerically identical to ``mode="async"`` single
          queries.  Only ``mode="async"`` is supported (an on-demand read
          mutates register banks, so batching it makes no sense).
        * **Queue-monitor queries** — pass ``at_ns=`` without an interval
          for the original culprits standing at that instant; ``classes=``
          restricts the walk to specific classes of service (requires a
          port created with ``num_classes``).

        With a :class:`~repro.obs.metrics.Metrics` registry attached the
        call also records its latency (``pq_query_latency_ns``) and tallies
        per kind/mode plus data-plane rejections; batch calls additionally
        record ``pq_batch_queries_total``, the ``pq_batch_size`` histogram,
        and a per-victim ``pq_query_victim_latency_ns`` histogram.
        Argument errors raise before any tally is recorded.
        """
        m = self.metrics
        if m is None:
            return self._query_impl(
                interval=interval,
                intervals=intervals,
                mode=mode,
                at_ns=at_ns,
                classes=classes,
            )
        start = perf_counter_ns()
        result = self._query_impl(
            interval=interval,
            intervals=intervals,
            mode=mode,
            at_ns=at_ns,
            classes=classes,
        )
        elapsed = perf_counter_ns() - start
        if isinstance(result, BatchQueryResult):
            m.histogram(
                "pq_query_latency_ns", kind="time_windows_batch"
            ).observe(elapsed)
            m.counter("pq_batch_queries_total").inc()
            m.histogram("pq_batch_size").observe(len(result))
            m.counter(
                "pq_queries_total", kind=result.kind, mode=result.mode
            ).inc(len(result))
            m.counter("pq_queries_accepted_total").inc(len(result))
            if result.coverages:
                n_degraded = sum(1 for c in result.coverages if c.degraded)
                if n_degraded:
                    m.counter("pq_queries_degraded_total").inc(n_degraded)
            return result
        m.histogram("pq_query_latency_ns", kind=result.kind).observe(elapsed)
        m.counter(
            "pq_queries_total", kind=result.kind, mode=result.mode or "none"
        ).inc()
        if result.accepted:
            m.counter("pq_queries_accepted_total").inc()
        else:
            m.counter("pq_queries_rejected_total").inc()
        if result.degraded:
            m.counter("pq_queries_degraded_total").inc()
        return result

    def _query_impl(
        self,
        *,
        interval: Optional[QueryInterval],
        mode: str,
        at_ns: Optional[int],
        classes: Optional[Iterable[int]],
        intervals: Optional[Iterable[QueryInterval]] = None,
    ) -> Union[QueryResult, BatchQueryResult]:
        """query() minus instrumentation (validation + dispatch)."""
        if mode not in ("async", "data_plane"):
            raise QueryError(f"unknown query mode {mode!r}")
        if intervals is not None:
            if interval is not None:
                raise QueryError(
                    "pass either interval= (single) or intervals= (batch), "
                    "not both"
                )
            if mode != "async":
                raise QueryError(
                    'intervals= batch queries support only mode="async"'
                )
            if at_ns is not None:
                raise QueryError("at_ns= does not apply to batch queries")
            if classes is not None:
                raise QueryError(
                    "classes= applies to queue-monitor (at_ns=) queries"
                )
            batch = list(intervals)
            coverages = None
            if self._poller is not None:
                log = self._poller.log
                coverages = [
                    log.coverage_for(iv.start_ns, iv.end_ns) for iv in batch
                ]
            return BatchQueryResult(
                kind="time_windows",
                mode="async",
                intervals=batch,
                estimates=self._async_query_batch(batch),
                coverages=coverages,
            )
        if interval is None:
            if at_ns is None:
                raise QueryError(
                    "query() needs interval= (time windows) or at_ns= "
                    "(queue monitor)"
                )
            coverage = None
            if classes is not None:
                classes = tuple(classes)
                estimate = self._original_culprits_by_class(at_ns, classes)
            else:
                estimate = self._original_culprits(at_ns)
                if self._poller is not None:
                    used = self.analysis.query_queue_monitor(at_ns)
                    coverage = self._poller.log.qm_coverage_for(
                        at_ns, used.time_ns
                    )
            return QueryResult(
                kind="queue_monitor",
                mode=None,
                estimate=estimate,
                at_ns=at_ns,
                classes=classes,
                degraded=coverage.degraded if coverage is not None else False,
                coverage=coverage,
            )
        if classes is not None:
            raise QueryError("classes= applies to queue-monitor (at_ns=) queries")
        if mode == "async":
            if at_ns is not None:
                raise QueryError(
                    "at_ns= applies to data_plane or queue-monitor queries"
                )
            coverage = None
            if self._poller is not None:
                coverage = self._poller.log.coverage_for(
                    interval.start_ns, interval.end_ns
                )
            return QueryResult(
                kind="time_windows",
                mode="async",
                estimate=self._async_query(interval),
                interval=interval,
                degraded=coverage.degraded if coverage is not None else False,
                coverage=coverage,
            )
        read_at = at_ns if at_ns is not None else interval.end_ns - 1
        dp_failures_before = (
            self._poller.log.dp_read_failures if self._poller is not None else 0
        )
        result = self._dp_query_interval(read_at, interval)
        if result is None:
            # Either the cost model rejected the trigger (not degraded —
            # the operator can simply re-trigger later) or, under fault
            # injection, every read attempt failed at the RPC layer.
            coverage = None
            degraded = False
            if (
                self._poller is not None
                and self._poller.log.dp_read_failures > dp_failures_before
            ):
                degraded = True
                coverage = self._poller.log.dp_coverage_for(
                    read_at, interval.start_ns, interval.end_ns
                )
            return QueryResult(
                kind="time_windows",
                mode="data_plane",
                estimate=FlowEstimate(),
                interval=interval,
                at_ns=read_at,
                accepted=False,
                degraded=degraded,
                coverage=coverage,
            )
        coverage = None
        if self._poller is not None:
            coverage = self._poller.log.dp_coverage_for(
                read_at, interval.start_ns, interval.end_ns
            )
        return QueryResult(
            kind="time_windows",
            mode="data_plane",
            estimate=result.estimate,
            interval=interval,
            at_ns=read_at,
            snapshot=result.snapshot,
            degraded=coverage.degraded if coverage is not None else False,
            coverage=coverage,
        )

    # -- query implementations (shared by query() and the legacy shims) ------

    def _dp_query_packet(self, packet: Packet) -> Optional[DataPlaneQueryResult]:
        """On-demand read + query for a victim packet, at its dequeue."""
        interval = QueryInterval.for_victim(packet.enq_timestamp, packet.deq_timestamp)
        return self._dp_query_interval(packet.deq_timestamp, interval)

    def _dp_query_interval(
        self, now_ns: int, interval: QueryInterval
    ) -> Optional[DataPlaneQueryResult]:
        """On-demand read at ``now_ns`` + query over ``interval``.

        Returns None when the trigger is rejected (a previous read still
        holds the special registers under the hardware cost model), or —
        under fault injection — when every read attempt failed at the
        RPC layer (``self._poller.log.dp_read_failures`` distinguishes
        the two for the caller).
        """
        if self._poller is not None:
            snapshot = self._poller.dp_read(now_ns)
        else:
            snapshot = self.analysis.dp_read(now_ns)
        if snapshot is None:
            return None
        # The on-demand read captures the queue monitor alongside the time
        # windows, so original-culprit queries can resolve this instant.
        if self.analysis.model_dp_read_cost is False:
            self.analysis.qm_poll(now_ns)
            if self._poller is not None and self.analysis.qm_snapshots:
                self._poller.note_stored_qm(self.analysis.qm_snapshots[-1])
        estimate = self.analysis.query_snapshot(snapshot, interval)
        result = DataPlaneQueryResult(now_ns, interval, estimate, snapshot)
        self.dp_results.append(result)
        return result

    def _async_query(self, interval: QueryInterval) -> FlowEstimate:
        """Asynchronous (control-plane) query over the periodic snapshots."""
        periodic = [
            s for s in self.analysis.tw_snapshots if s.source == "periodic"
        ]
        return self.analysis.query_time_windows(interval, snapshots=periodic)

    def _async_query_batch(
        self, intervals: List[QueryInterval]
    ) -> List[FlowEstimate]:
        """Batched asynchronous queries via the compiled columnar plan."""
        observer = None
        if self.metrics is not None:
            observer = self.metrics.histogram(
                "pq_query_victim_latency_ns"
            ).observe
        return self.analysis.query_time_windows_batch(
            intervals, source="periodic", latency_observer=observer
        )

    def _original_culprits(self, time_ns: int) -> FlowEstimate:
        """Per-flow original-culprit contributions at ``time_ns``."""
        return self.analysis.original_culprits(time_ns)

    def _original_culprits_by_class(
        self, time_ns: int, classes: Optional[Iterable[int]] = None
    ) -> FlowEstimate:
        """Original culprits restricted to specific classes of service.

        For a class-``c`` victim under strict priority the relevant
        classes are ``range(c + 1)`` — only equal-or-higher-priority
        traffic can have delayed it.
        """
        if self.classed_monitor is None:
            raise QueryError("port was created without num_classes")
        if not self._classed_snapshots:
            raise QueryError("no classed queue-monitor snapshots yet")
        _, snapshots = min(
            self._classed_snapshots, key=lambda ts: abs(ts[0] - time_ns)
        )
        return self.classed_monitor.original_culprits(snapshots, classes)

    # -- retired query surface (raises with the query() replacement) ---------
    #
    # These names spent one release as warning shims and are now gone:
    # each raises a typed QueryError whose message names the exact
    # replacement keyword arguments (tests pin the messages).

    def data_plane_query(self, packet: Packet) -> Optional[DataPlaneQueryResult]:
        """Removed: use ``query(interval=..., mode="data_plane")``."""
        raise QueryError(
            "PrintQueuePort.data_plane_query(packet) was removed; use "
            "PrintQueuePort.query(interval=QueryInterval.for_victim(...), "
            'mode="data_plane") instead'
        )

    def data_plane_query_interval(
        self, now_ns: int, interval: QueryInterval
    ) -> Optional[DataPlaneQueryResult]:
        """Removed: use ``query(interval=..., mode="data_plane", at_ns=...)``."""
        raise QueryError(
            "PrintQueuePort.data_plane_query_interval(now_ns, interval) was "
            "removed; use PrintQueuePort.query(interval=..., "
            'mode="data_plane", at_ns=...) instead'
        )

    def async_query(self, interval: QueryInterval) -> FlowEstimate:
        """Removed: use ``query(interval=...)``."""
        raise QueryError(
            "PrintQueuePort.async_query(interval) was removed; use "
            "PrintQueuePort.query(interval=...) instead"
        )

    def original_culprits(self, time_ns: int) -> FlowEstimate:
        """Removed: use ``query(at_ns=...)``."""
        raise QueryError(
            "PrintQueuePort.original_culprits(time_ns) was removed; use "
            "PrintQueuePort.query(at_ns=...) instead"
        )

    def original_culprits_by_class(
        self, time_ns: int, *, classes: Optional[Iterable[int]] = None
    ) -> FlowEstimate:
        """Removed: use ``query(at_ns=..., classes=...)``."""
        raise QueryError(
            "PrintQueuePort.original_culprits_by_class(time_ns, classes) was "
            "removed; use PrintQueuePort.query(at_ns=..., classes=...) "
            "instead"
        )


class PrintQueue:
    """Multi-port deployment: the Section 6.1 port-configuration layer."""

    def __init__(
        self,
        config: PrintQueueConfig,
        port_ids: Iterable[int],
        d_ns: Optional[float] = None,
        trigger: Optional[TriggerPolicy] = None,
        metrics: Optional[Metrics] = None,
        faults: Optional[object] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        ids = list(port_ids)
        if not ids:
            raise ConfigError("PrintQueue must be enabled on at least one port")
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate port ids: {ids}")
        self.config = config
        self.port_ids = ids
        #: one shared repro.obs registry across all ports (per-port
        #: structure counters stay separable via RunReport.from_port).
        self.metrics = metrics
        # Ports draw faults independently: each gets its own injector
        # seeded from the plan's seed plus its position, so per-port
        # outcomes are reproducible and no port's draw order depends on
        # packet interleaving across ports.
        if isinstance(faults, FaultInjector):
            raise ConfigError(
                "pass a FaultPlan or profile name to the multi-port "
                "PrintQueue, not a FaultInjector (injector state cannot be "
                "shared across ports deterministically)"
            )
        plan: Optional[FaultPlan] = None
        if faults is not None:
            plan = faults if isinstance(faults, FaultPlan) else profile(faults)
        self.ports: Dict[int, PrintQueuePort] = {
            pid: PrintQueuePort(
                config,
                d_ns=d_ns,
                trigger=trigger,
                metrics=metrics,
                faults=(
                    plan.with_seed(plan.seed + index)
                    if plan is not None
                    else None
                ),
                retry_policy=retry_policy,
            )
            for index, pid in enumerate(ids)
        }
        self.ignored_packets = 0

    @property
    def rounded_ports(self) -> int:
        """``r(#ports)``: partitions allocated in each register array."""
        r = 1
        while r < len(self.port_ids):
            r *= 2
        return r

    def port(self, port_id: int) -> PrintQueuePort:
        """The per-port PrintQueue instance for ``port_id``."""
        return self.ports[port_id]

    def attach(self, switch_ports: Iterable[EgressPort]) -> None:
        """Install hooks on the matching egress ports of a simulator.

        Ports without PrintQueue enabled are left untouched — the ingress
        flow table "matches the destination port and ... if no matching is
        found, the packet is ignored".
        """
        for egress in switch_ports:
            pq = self.ports.get(egress.port_id)
            if pq is None:
                continue
            egress.add_enqueue_hook(pq.on_enqueue)
            egress.add_egress_hook(pq.on_dequeue)

    def on_packet_dequeued(self, packet: Packet) -> None:
        """Routing shim for externally driven pipelines."""
        if packet.egress_spec is None:
            # No egress decision recorded: never route via a sentinel port
            # id that could collide with a real port.
            self.ignored_packets += 1
            return
        pq = self.ports.get(packet.egress_spec)
        if pq is None:
            self.ignored_packets += 1
            return
        pq.on_dequeue(packet)

    def finish(self, now_ns: int) -> None:
        """Final poll on every port so no register data is left unread."""
        for pq in self.ports.values():
            pq.finish(now_ns)
