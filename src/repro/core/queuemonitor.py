"""The queue monitor: a sparse stack of queue high-water marks (Section 5).

A register array with one entry per queue-depth level (divided by the
buffer allocation granularity).  Each entry has an upper half recording
the last depth *increase* that landed on the level and a lower half
recording the last *decrease*; both carry a monotonically increasing
sequence number.  A stack-top register tracks the latest depth.

Because entries under the top pointer may be stale (from an earlier,
taller peak that has since drained), queries walk the array bottom-up and
only accept increase entries whose sequence number exceeds every sequence
number seen at lower levels — exactly the filtering step described at the
end of Section 5.  The surviving entries are the *original culprits*: the
packets whose arrivals raised the queue to each still-standing level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.switch.packet import FlowKey

#: Sequence number of a never-written half-entry.
_UNSET = -1


def _materialise_flows(
    flows: Sequence[FlowKey], pos: np.ndarray
) -> List[FlowKey]:
    """Resolve ``[flows[p] for p in pos]`` through the fastest path.

    A :class:`~repro.switch.records.FlowColumn` (the fused tier's lazy
    view) resolves via one object-array gather over its flow table —
    the surviving flows' :class:`FlowKey` objects already exist there,
    so no per-survivor construction happens at all.  Other carriers
    (plain sequences, object ndarrays, lazy views that narrow under
    array indexing) fall back to narrowing + ``tolist``.
    """
    gather = getattr(flows, "gather", None)
    if gather is not None:
        return gather(pos).tolist()  # type: ignore[no-any-return]
    try:
        sel = flows[pos]  # type: ignore[index]
    except (TypeError, IndexError):
        return [flows[int(p)] for p in pos.tolist()]
    if isinstance(sel, np.ndarray):
        return sel.tolist()  # type: ignore[no-any-return]
    return list(sel)


@dataclass(frozen=True)
class MonitorEntry:
    """One surviving (valid) increase entry, as returned by a query."""

    level: int
    flow: FlowKey
    seq: int


@dataclass
class QueueMonitorSnapshot:
    """A frozen copy of the monitor taken by the control plane."""

    time_ns: int
    top: int
    inc_seq: List[int]
    inc_flow: List[Optional[FlowKey]]
    dec_seq: List[int]

    def walk(self) -> List[MonitorEntry]:
        """Filter stale entries: the monotone bottom-up walk of Section 5."""
        running = _UNSET
        survivors: List[MonitorEntry] = []
        for level in range(self.top + 1):
            inc = self.inc_seq[level]
            if inc > running and inc != _UNSET and level > 0:
                flow = self.inc_flow[level]
                assert flow is not None
                survivors.append(MonitorEntry(level, flow, inc))
            level_max = max(inc, self.dec_seq[level])
            if level_max > running:
                running = level_max
        return survivors

    def flow_counts(self) -> Dict[FlowKey, int]:
        """Original-culprit contribution per flow (entries implicated)."""
        counts: Dict[FlowKey, int] = {}
        for entry in self.walk():
            counts[entry.flow] = counts.get(entry.flow, 0) + 1
        return counts


class QueueMonitor:
    """The data-plane sparse stack for one (port, class-of-service) queue.

    Parameters
    ----------
    levels:
        Register length = max queue depth / granularity.
    granularity:
        Depth units folded into one level (buffer allocation granularity).
    """

    __slots__ = (
        "levels",
        "granularity",
        "_seq",
        "top",
        "inc_seq",
        "inc_flow",
        "dec_seq",
        "dec_flow",
        "overflows",
        "pushes",
        "drains",
        "high_water",
    )

    def __init__(self, levels: int, granularity: int = 1) -> None:
        if levels < 1:
            raise ValueError(f"need at least one level, got {levels}")
        if granularity < 1:
            raise ValueError(f"non-positive granularity: {granularity}")
        self.levels = levels
        self.granularity = granularity
        self._seq = 0
        self.top = 0
        # Registers stay plain Python lists: snapshot() is then a cheap
        # pointer copy (the control plane snapshots every poll, and with
        # 2^16 levels re-boxing int64 arrays per snapshot costs more
        # than the whole batched write-back saves).  apply_batch only
        # ever writes the surviving entries, so the lists are touched
        # ~last-per-level, not per-event.
        self.inc_seq: List[int] = [_UNSET] * levels
        self.inc_flow: List[Optional[FlowKey]] = [None] * levels
        self.dec_seq: List[int] = [_UNSET] * levels
        self.dec_flow: List[Optional[FlowKey]] = [None] * levels
        self.overflows = 0
        # Observability (repro.obs): stack churn.  ``pushes``/``drains``
        # count the rise/drain sides of the event stream; ``high_water``
        # is the tallest level the stack top ever reached.  apply_batch
        # maintains identical values.
        self.pushes = 0
        self.drains = 0
        self.high_water = 0

    def _level_of(self, depth_units: int) -> int:
        level = depth_units // self.granularity
        if level >= self.levels:
            self.overflows += 1
            level = self.levels - 1
        return max(0, level)

    def on_enqueue(self, flow: FlowKey, depth_after_units: int) -> None:
        """A packet raised the queue depth to ``depth_after_units``."""
        self._seq += 1
        level = self._level_of(depth_after_units)
        self.inc_seq[level] = self._seq
        self.inc_flow[level] = flow
        self.top = level
        self.pushes += 1
        if level > self.high_water:
            self.high_water = level

    def on_dequeue(self, flow: FlowKey, depth_after_units: int) -> None:
        """A packet left, lowering the queue depth to ``depth_after_units``."""
        self._seq += 1
        level = self._level_of(depth_after_units)
        self.dec_seq[level] = self._seq
        self.dec_flow[level] = flow
        self.top = level
        self.drains += 1
        if level > self.high_water:
            self.high_water = level

    def apply_batch(
        self,
        is_enqueue: "np.ndarray",
        flows: Sequence[FlowKey],
        depth_after_units: "np.ndarray",
    ) -> None:
        """Vectorised replay of a mixed enqueue/dequeue event stream.

        Exactly equivalent to calling :meth:`on_enqueue` /
        :meth:`on_dequeue` once per event in order: sequence numbers are
        assigned by event position, each half-entry keeps the last event
        that landed on its level, and the stack top follows the final
        event.
        """
        is_enqueue = np.asarray(is_enqueue, dtype=bool)
        depth = np.asarray(depth_after_units, dtype=np.int64)
        n = len(depth)
        if n == 0:
            return
        raw_level = depth // self.granularity
        self.overflows += int(np.count_nonzero(raw_level >= self.levels))
        level = np.maximum(0, np.minimum(raw_level, self.levels - 1))
        num_pushes = int(np.count_nonzero(is_enqueue))
        self.pushes += num_pushes
        self.drains += n - num_pushes
        peak = int(level.max())
        if peak > self.high_water:
            self.high_water = peak
        base_seq = self._seq
        self._seq += n

        # Last event per (level, side) key via one O(n) scatter:
        # duplicate-index assignment is performed in order, so the last
        # write wins — exactly the survivor rule.  The scratch array is
        # bounded by the batch's peak level, not the full register
        # length, and only the surviving events' flows are ever
        # materialised as objects (one table gather for the fused
        # tier's FlowColumn — see _materialise_flows).
        key = (level << 1) | ~is_enqueue
        last = np.full(2 * (peak + 1), -1, dtype=np.int64)
        last[key] = np.arange(n, dtype=np.int64)
        present = np.flatnonzero(last >= 0)
        pos = last[present]
        surviving = _materialise_flows(flows, pos)
        seqs = (base_seq + 1 + pos).tolist()
        is_dec = (present & 1).astype(bool)
        lvls = present >> 1
        inc_sel = np.flatnonzero(~is_dec).tolist()
        dec_sel = np.flatnonzero(is_dec).tolist()
        lvl_list = lvls.tolist()
        inc_seq, inc_flow = self.inc_seq, self.inc_flow
        for i in inc_sel:
            lvl = lvl_list[i]
            inc_seq[lvl] = seqs[i]
            inc_flow[lvl] = surviving[i]
        dec_seq, dec_flow = self.dec_seq, self.dec_flow
        for i in dec_sel:
            lvl = lvl_list[i]
            dec_seq[lvl] = seqs[i]
            dec_flow[lvl] = surviving[i]
        self.top = int(level[-1])

    def snapshot(self, time_ns: int) -> QueueMonitorSnapshot:
        """Atomically copy the register state (a frozen control-plane read)."""
        return QueueMonitorSnapshot(
            time_ns=time_ns,
            top=self.top,
            inc_seq=list(self.inc_seq),
            inc_flow=list(self.inc_flow),
            dec_seq=list(self.dec_seq),
        )

    def reset(self) -> None:
        self._seq = 0
        self.top = 0
        self.inc_seq = [_UNSET] * self.levels
        self.inc_flow = [None] * self.levels
        self.dec_seq = [_UNSET] * self.levels
        self.dec_flow = [None] * self.levels
        self.overflows = 0
        self.pushes = 0
        self.drains = 0
        self.high_water = 0
