"""Count-recovery coefficients (Theorems 1-3, Algorithm 2).

Deeper windows observe only a fraction of the packets that traversed the
preceding window; Theorem 2 shows the observed count is *proportional* to
the true count, with a per-hop ratio

    ratio = z * (1 - p^(2^alpha)) / (1 - p) / 2^alpha,   p = 1 - z^2,

where ``z`` is the probability a cell stores a fresh packet each window
period.  ``coefficient[i]`` is the cumulative product of the ratios from
window 0 to window ``i``; estimates from window ``i`` are divided by it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import PrintQueueConfig


def first_window_z(config: PrintQueueConfig, d_ns: Optional[float] = None) -> float:
    """``z`` of Theorem 3 for window 0: ``2^m0 / d``, clamped to 1.

    ``d`` defaults to the transmission delay of a minimum-sized packet at
    line rate; pass the measured mean packet inter-departure time instead
    when the workload's packets are larger than minimum-sized (the paper
    evaluates under congestion, where the port forwards at line rate, so
    the packet interval equals the mean packet transmission delay).

    The clamp covers configurations where the cell period exceeds the
    packet interval (e.g. m0=6 with true 64 B minimum packets at 10 Gbps):
    window 0 then sees at most one packet per cell period anyway, so the
    storage probability saturates at 1.
    """
    if d_ns is None:
        d_ns = float(config.min_pkt_tx_delay_ns)
    if d_ns <= 0:
        raise ValueError(f"non-positive packet interval: {d_ns}")
    return min(1.0, (1 << config.m0) / d_ns)


def pass_ratio(z: float, alpha: int) -> float:
    """Expected fraction of a window's fresh packets stored by the next.

    ``z = 0`` (a window so sparse that no cell ever refills) passes
    nothing; this arises naturally when the recursion underflows for very
    sparse traffic and deep window sets.
    """
    if not 0 <= z <= 1:
        raise ValueError(f"z must be in [0, 1], got {z}")
    if z == 0.0:
        return 0.0
    p = 1.0 - z * z
    fan_in = 1 << alpha
    if p >= 1.0:
        return 0.0
    # (1 - p^{2^alpha}) / (1 - p), the geometric sum of Theorem 2.
    geometric = (1.0 - p**fan_in) / (1.0 - p)
    return z * geometric / fan_in


def next_z(z: float, alpha: int) -> float:
    """z of the subsequent window: ``1 - p^(2^alpha)`` (Theorem 2)."""
    p = 1.0 - z * z
    return 1.0 - p ** (1 << alpha)


def coefficients(config: PrintQueueConfig, d_ns: Optional[float] = None) -> List[float]:
    """Algorithm 2: ``coefficient[i]`` for every window.

    ``coefficient[0]`` is 1 — the first window tracks packets precisely;
    deeper coefficients shrink multiplicatively by the per-hop ratio.
    """
    z = first_window_z(config, d_ns)
    coeff = [1.0]
    acc = 1.0
    for _ in range(1, config.T):
        acc *= pass_ratio(z, config.alpha)
        coeff.append(acc)
        z = next_z(z, config.alpha)
    return coeff
