"""Baseline measurement systems the paper compares against.

* :class:`~repro.baselines.hashpipe.HashPipe` — pipelined heavy-hitter
  table (Sivaraman et al., SOSR 2017).
* :class:`~repro.baselines.flowradar.FlowRadar` — encoded flowsets with
  single-cell decode (Li et al., NSDI 2016).
* :class:`~repro.baselines.sketches.CountMinSketch` — the classic sketch
  substrate (referenced but not directly compared: sketches cannot return
  flow IDs).
* :class:`~repro.baselines.interval.FixedIntervalEstimator` — the
  fixed-reset-interval + prorating harness the paper applies to make the
  baselines answer interval queries.
"""

from repro.baselines.conquest import ConQuest
from repro.baselines.flowradar import FlowRadar
from repro.baselines.hashpipe import HashPipe
from repro.baselines.interval import FixedIntervalEstimator
from repro.baselines.linear import LinearStorageModel
from repro.baselines.sketches import CountMinSketch, CountSketch

__all__ = [
    "HashPipe",
    "FlowRadar",
    "ConQuest",
    "CountMinSketch",
    "CountSketch",
    "FixedIntervalEstimator",
    "LinearStorageModel",
]
