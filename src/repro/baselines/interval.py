"""Fixed-reset-interval operation + prorating for the baselines.

HashPipe and FlowRadar "are only queryable on the granularity of a reset
period" (Section 7.1).  The paper's comparison therefore (1) resets the
baseline structure every PrintQueue set period, and (2) answers an
interval query by prorating the period's per-flow counts with a
multiplier equal to query-interval length over period length.  This
wrapper implements that harness for any structure with ``update`` /
``flow_counts`` / ``reset``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol

from repro.core.queries import FlowEstimate, QueryInterval
from repro.errors import QueryError
from repro.switch.packet import FlowKey


class CounterStructure(Protocol):
    """Anything that can count per-flow packets and be reset."""

    def update(self, flow: FlowKey, count: int = 1) -> None: ...

    def flow_counts(self) -> Dict[FlowKey, int]: ...

    def reset(self) -> None: ...


@dataclass
class _Period:
    start_ns: int
    end_ns: int
    counts: Dict[FlowKey, int]


class FixedIntervalEstimator:
    """Drives a counter structure in fixed reset periods.

    Feed dequeued packets in time order through :meth:`update`; completed
    periods are snapshotted (``flow_counts``) and the structure reset.
    Interval queries prorate each overlapped period's counts by the
    overlap fraction.
    """

    def __init__(self, structure: CounterStructure, period_ns: int) -> None:
        if period_ns <= 0:
            raise ValueError(f"non-positive period: {period_ns}")
        self.structure = structure
        self.period_ns = period_ns
        self._periods: List[_Period] = []
        self._current_start = 0
        self.packets_seen = 0

    def update(self, flow: FlowKey, time_ns: int) -> None:
        """Record one packet dequeued at ``time_ns`` (non-decreasing)."""
        while time_ns >= self._current_start + self.period_ns:
            self._rollover()
        self.structure.update(flow)
        self.packets_seen += 1

    def _rollover(self) -> None:
        end = self._current_start + self.period_ns
        self._periods.append(
            _Period(self._current_start, end, self.structure.flow_counts())
        )
        self.structure.reset()
        self._current_start = end

    def finish(self) -> None:
        """Snapshot the in-progress period (call once, at end of trace)."""
        self._rollover()

    @property
    def periods(self) -> List[_Period]:
        return self._periods

    def query(self, interval: QueryInterval) -> FlowEstimate:
        """Prorated per-flow estimate over an arbitrary interval."""
        if not self._periods:
            raise QueryError("no completed periods; call finish() first")
        estimate = FlowEstimate()
        for period in self._periods:
            lo = max(interval.start_ns, period.start_ns)
            hi = min(interval.end_ns, period.end_ns)
            if hi <= lo:
                continue
            fraction = (hi - lo) / self.period_ns
            for flow, count in period.counts.items():
                scaled = count * fraction
                if scaled > 0:
                    estimate.add(flow, scaled)
        return estimate
