"""Linear-storage telemetry models (NetSight / BurstRadar style).

These systems export a fixed-size record for (roughly) every packet:
NetSight collects per-hop packet histories; BurstRadar snapshots ring
buffers of every packet in a congested period.  Their storage and export
bandwidth therefore grows linearly with traffic volume, which is the
comparison axis of Figure 14(a).  The model also supports actually
*collecting* the records for small traces, so tests can validate the
arithmetic against a measured trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.switch.packet import FlowKey


@dataclass(frozen=True)
class PacketRecord:
    """One exported telemetry record."""

    flow: FlowKey
    deq_timestamp: int


class LinearStorageModel:
    """Per-packet export with a fixed record size.

    Parameters
    ----------
    record_bytes:
        Exported bytes per packet (flow ID + timestamps + metadata).
    congested_only:
        BurstRadar mode — only packets that saw queuing above a threshold
        are exported.
    depth_threshold:
        The queue-depth threshold for ``congested_only`` mode.
    """

    def __init__(
        self,
        record_bytes: int = 16,
        congested_only: bool = False,
        depth_threshold: int = 0,
        keep_records: bool = False,
    ) -> None:
        if record_bytes <= 0:
            raise ValueError(f"non-positive record size: {record_bytes}")
        self.record_bytes = record_bytes
        self.congested_only = congested_only
        self.depth_threshold = depth_threshold
        self.exported_packets = 0
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None
        self._records: Optional[List[PacketRecord]] = [] if keep_records else None

    def update(self, flow: FlowKey, deq_timestamp: int, enq_qdepth: int = 0) -> None:
        """Observe one dequeued packet."""
        if self.congested_only and enq_qdepth < self.depth_threshold:
            return
        self.exported_packets += 1
        if self.first_ns is None:
            self.first_ns = deq_timestamp
        self.last_ns = deq_timestamp
        if self._records is not None:
            self._records.append(PacketRecord(flow, deq_timestamp))

    @property
    def exported_bytes(self) -> int:
        return self.exported_packets * self.record_bytes

    def storage_mbps(self) -> float:
        """Measured export bandwidth over the observed span."""
        if self.first_ns is None or self.last_ns is None or self.last_ns <= self.first_ns:
            return 0.0
        seconds = (self.last_ns - self.first_ns) / 1e9
        return self.exported_bytes / seconds / 1e6

    def records(self) -> List[PacketRecord]:
        if self._records is None:
            raise ValueError("model was created with keep_records=False")
        return self._records
