"""Sampled telemetry (sFlow / Everflow / Planck style).

The packet-sampling family the paper critiques ([10, 13, 18, 25, 37])
exports a timestamped record for 1-in-N packets and scales counts back
up by N at query time.  Unlike the fixed-interval baselines, sampling
*does* retain timestamps, so interval queries are answered natively —
but at PrintQueue-comparable storage budgets the sampling rate is so
coarse that short intervals see few or no samples ("either necessitating
heavy sampling or failing to scale", Section 1).
"""

from __future__ import annotations

import bisect
from typing import Dict, List

import numpy as np

from repro.core.queries import FlowEstimate, QueryInterval
from repro.switch.packet import FlowKey


class SampledTelemetry:
    """1-in-N packet sampling with timestamped export records.

    Parameters
    ----------
    sample_rate:
        Expected packets per sample (N).  ``1`` = capture everything
        (the NetSight end of the spectrum).
    deterministic:
        Sample every exactly-Nth packet instead of Bernoulli(1/N);
        deterministic sampling is what most ASIC samplers implement.
    seed:
        RNG seed for Bernoulli mode.
    record_bytes:
        Export size per sample, for storage accounting.
    """

    def __init__(
        self,
        sample_rate: int,
        deterministic: bool = True,
        seed: int = 0,
        record_bytes: int = 16,
    ) -> None:
        if sample_rate < 1:
            raise ValueError(f"sample rate must be >= 1, got {sample_rate}")
        if record_bytes <= 0:
            raise ValueError(f"non-positive record size: {record_bytes}")
        self.sample_rate = sample_rate
        self.deterministic = deterministic
        self.record_bytes = record_bytes
        self._rng = np.random.default_rng(seed)
        self._countdown = sample_rate
        self._times: List[int] = []
        self._flows: List[FlowKey] = []
        self.packets_seen = 0

    # -- data plane -------------------------------------------------------------

    def update(self, flow: FlowKey, deq_timestamp: int) -> None:
        """Observe one dequeued packet (in time order)."""
        self.packets_seen += 1
        if self.deterministic:
            self._countdown -= 1
            if self._countdown > 0:
                return
            self._countdown = self.sample_rate
        else:
            if self._rng.random() >= 1.0 / self.sample_rate:
                return
        self._times.append(deq_timestamp)
        self._flows.append(flow)

    @property
    def samples(self) -> int:
        return len(self._times)

    @property
    def exported_bytes(self) -> int:
        return self.samples * self.record_bytes

    def storage_mbps(self) -> float:
        """Measured export bandwidth over the observed span."""
        if len(self._times) < 2 or self._times[-1] <= self._times[0]:
            return 0.0
        seconds = (self._times[-1] - self._times[0]) / 1e9
        return self.exported_bytes / seconds / 1e6

    # -- queries -------------------------------------------------------------------

    def query(self, interval: QueryInterval) -> FlowEstimate:
        """Per-flow estimate: sample counts in the interval, scaled by N."""
        lo = bisect.bisect_left(self._times, interval.start_ns)
        hi = bisect.bisect_left(self._times, interval.end_ns)
        estimate = FlowEstimate()
        for i in range(lo, hi):
            estimate.add(self._flows[i], float(self.sample_rate))
        return estimate

    def flow_counts(self) -> Dict[FlowKey, int]:
        """Scaled per-flow totals over everything observed."""
        out: Dict[FlowKey, int] = {}
        for flow in self._flows:
            out[flow] = out.get(flow, 0) + self.sample_rate
        return out

    def reset(self) -> None:
        self._times.clear()
        self._flows.clear()
        self._countdown = self.sample_rate
        self.packets_seen = 0
