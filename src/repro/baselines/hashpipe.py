"""HashPipe: heavy-hitter detection entirely in the data plane.

A pipeline of ``d`` stages, each a hash-indexed table of (key, count)
slots.  The first stage always inserts the incoming key (evicting the
incumbent); at later stages the carried (evicted) entry either merges
with a matching key, fills an empty slot, or swaps with the slot's entry
if the slot's count is smaller — so the minimum is pushed toward
eviction.  The Table-2 comparison uses 5 stages of 4096 slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.switch.packet import FlowKey


def _stage_hash(flow_id: int, stage: int, mask: int) -> int:
    """Per-stage slot hash: a cheap but well-mixing integer scramble."""
    x = flow_id ^ (0x9E3779B97F4A7C15 * (stage + 1) & 0xFFFFFFFFFFFFFFFF)
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 33
    return x & mask


class HashPipe:
    """The d-stage HashPipe structure.

    Parameters
    ----------
    slots_per_stage:
        Table size per stage (power of two; the paper uses 4096).
    stages:
        Pipeline depth (the paper uses 5).
    """

    def __init__(self, slots_per_stage: int = 4096, stages: int = 5) -> None:
        if slots_per_stage < 1 or slots_per_stage & (slots_per_stage - 1):
            raise ValueError("slots_per_stage must be a power of two")
        if stages < 1:
            raise ValueError(f"need at least one stage, got {stages}")
        self.slots_per_stage = slots_per_stage
        self.stages = stages
        self._mask = slots_per_stage - 1
        self._keys: List[List[Optional[FlowKey]]] = [
            [None] * slots_per_stage for _ in range(stages)
        ]
        self._counts: List[List[int]] = [
            [0] * slots_per_stage for _ in range(stages)
        ]
        self.updates = 0
        self.evictions = 0

    def update(self, flow: FlowKey, count: int = 1) -> None:
        """Insert one packet of ``flow``."""
        self.updates += 1
        carried_key: Optional[FlowKey] = flow
        carried_count = count
        carried_id = flow.flow_id()

        # Stage 0: always insert, evicting the incumbent.
        slot = _stage_hash(carried_id, 0, self._mask)
        if self._keys[0][slot] == carried_key:
            self._counts[0][slot] += carried_count
            return
        evicted_key = self._keys[0][slot]
        evicted_count = self._counts[0][slot]
        self._keys[0][slot] = carried_key
        self._counts[0][slot] = carried_count
        if evicted_key is None:
            return
        carried_key, carried_count = evicted_key, evicted_count

        # Later stages: merge, fill, or keep-the-larger.
        for stage in range(1, self.stages):
            slot = _stage_hash(carried_key.flow_id(), stage, self._mask)
            slot_key = self._keys[stage][slot]
            if slot_key == carried_key:
                self._counts[stage][slot] += carried_count
                return
            if slot_key is None:
                self._keys[stage][slot] = carried_key
                self._counts[stage][slot] = carried_count
                return
            if self._counts[stage][slot] < carried_count:
                self._keys[stage][slot], carried_key = carried_key, slot_key
                self._counts[stage][slot], carried_count = (
                    carried_count,
                    self._counts[stage][slot],
                )
        self.evictions += 1  # the minimum falls off the end of the pipe

    def estimate(self, flow: FlowKey) -> int:
        """Estimated packet count: the sum over all matching slots."""
        flow_id = flow.flow_id()
        total = 0
        for stage in range(self.stages):
            slot = _stage_hash(flow_id, stage, self._mask)
            if self._keys[stage][slot] == flow:
                total += self._counts[stage][slot]
        return total

    def flow_counts(self) -> Dict[FlowKey, int]:
        """All tracked flows with their summed counts."""
        out: Dict[FlowKey, int] = {}
        for stage in range(self.stages):
            for key, count in zip(self._keys[stage], self._counts[stage]):
                if key is not None and count:
                    out[key] = out.get(key, 0) + count
        return out

    def heavy_hitters(self, threshold: int) -> List[Tuple[FlowKey, int]]:
        """Flows with estimated count >= threshold, largest first."""
        hits = [
            (flow, count)
            for flow, count in self.flow_counts().items()
            if count >= threshold
        ]
        hits.sort(key=lambda kv: -kv[1])
        return hits

    def reset(self) -> None:
        for stage in range(self.stages):
            self._keys[stage] = [None] * self.slots_per_stage
            self._counts[stage] = [0] * self.slots_per_stage

    @property
    def sram_entries(self) -> int:
        return self.stages * self.slots_per_stage
