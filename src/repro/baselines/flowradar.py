"""FlowRadar: encoded flowsets with counting-table decode.

Structure: a Bloom *flow filter* plus a counting table whose cells hold
``(FlowXOR, FlowCount, PacketCount)``.  A packet of a new flow (filter
miss) XORs its flow ID into, and increments FlowCount of, each of its
``h`` cells; every packet increments PacketCount in all ``h`` cells.

Decode iteratively peels *pure* cells (FlowCount == 1): the cell's
FlowXOR is a flow ID and its PacketCount is that flow's count; the flow
is then subtracted from its other cells, possibly exposing new pure
cells.  Under overload some flows remain undecodable — they are reported
via :attr:`DecodeResult.undecoded_cells`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.switch.packet import FlowKey

_MASK64 = (1 << 64) - 1


def _mix(value: int, salt: int) -> int:
    x = (value ^ (salt * 0xC2B2AE3D27D4EB4F)) & _MASK64
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 32
    return x


@dataclass
class DecodeResult:
    """Outcome of decoding an encoded flowset."""

    flows: Dict[FlowKey, int] = field(default_factory=dict)
    undecoded_cells: int = 0

    @property
    def fully_decoded(self) -> bool:
        return self.undecoded_cells == 0


class FlowRadar:
    """One FlowRadar instance (one reset period's worth of state).

    Parameters
    ----------
    num_cells:
        Counting-table size.  The Table-2 comparison allocates resources
        comparable to 5 stages x 4096 entries; we default the counting
        table to 3*4096 cells and the flow filter to 2*4096 slots' worth
        of bits, matching that SRAM envelope.
    num_hashes:
        Cells (and filter bits) touched per flow.
    """

    def __init__(
        self,
        num_cells: int = 3 * 4096,
        num_hashes: int = 3,
        filter_bits: int = 2 * 4096 * 8,
    ) -> None:
        if num_cells < 1:
            raise ValueError(f"need at least one cell, got {num_cells}")
        if not 1 <= num_hashes <= num_cells:
            raise ValueError(f"bad hash count: {num_hashes}")
        if filter_bits < 8:
            raise ValueError(f"filter too small: {filter_bits}")
        self.num_cells = num_cells
        self.num_hashes = num_hashes
        self.filter_bits = filter_bits
        self._filter = bytearray(filter_bits // 8 + 1)
        self._flow_xor = [0] * num_cells
        self._flow_count = [0] * num_cells
        self._packet_count = [0] * num_cells
        # Simulation-side registry so decoded 64-bit IDs map back to keys;
        # the hardware recovers the 5-tuple directly from the XOR field.
        self._id_to_key: Dict[int, FlowKey] = {}
        self.updates = 0

    # -- hashing ----------------------------------------------------------

    def _cells_for(self, flow_id: int) -> List[int]:
        cells = []
        for i in range(self.num_hashes):
            cells.append(_mix(flow_id, 2 * i + 1) % self.num_cells)
        return cells

    def _filter_bits_for(self, flow_id: int) -> List[int]:
        return [
            _mix(flow_id, 1000 + 2 * i) % self.filter_bits
            for i in range(self.num_hashes)
        ]

    def _filter_test_and_set(self, flow_id: int) -> bool:
        """Returns True if the flow was already present."""
        present = True
        for bit in self._filter_bits_for(flow_id):
            byte, offset = divmod(bit, 8)
            if not (self._filter[byte] >> offset) & 1:
                present = False
                self._filter[byte] |= 1 << offset
        return present

    # -- data plane --------------------------------------------------------

    def update(self, flow: FlowKey, count: int = 1) -> None:
        """Record ``count`` packets of ``flow``."""
        self.updates += count
        flow_id = flow.flow_id()
        self._id_to_key.setdefault(flow_id, flow)
        is_old = self._filter_test_and_set(flow_id)
        for cell in self._cells_for(flow_id):
            if not is_old:
                self._flow_xor[cell] ^= flow_id
                self._flow_count[cell] += 1
            self._packet_count[cell] += count

    # -- decode --------------------------------------------------------------

    def decode(self) -> DecodeResult:
        """Peel pure cells until fixpoint (the single-switch decode)."""
        flow_xor = list(self._flow_xor)
        flow_count = list(self._flow_count)
        packet_count = list(self._packet_count)

        result = DecodeResult()
        frontier: List[int] = [
            i for i in range(self.num_cells) if flow_count[i] == 1
        ]
        seen: Set[int] = set()
        while frontier:
            cell = frontier.pop()
            if flow_count[cell] != 1:
                continue
            flow_id = flow_xor[cell]
            key = self._id_to_key.get(flow_id)
            if key is None or flow_id in seen:
                # A corrupted cell (XOR of colliding IDs happens to match
                # nothing) — leave it; it will count as undecoded.
                continue
            seen.add(flow_id)
            packets = packet_count[cell]
            result.flows[key] = packets
            for other in self._cells_for(flow_id):
                flow_xor[other] ^= flow_id
                flow_count[other] -= 1
                packet_count[other] -= packets
                if flow_count[other] == 1:
                    frontier.append(other)
        result.undecoded_cells = sum(1 for c in flow_count if c > 0)
        return result

    def flow_counts(self) -> Dict[FlowKey, int]:
        """Decoded per-flow packet counts (lossy under overload)."""
        return self.decode().flows

    def reset(self) -> None:
        self._filter = bytearray(self.filter_bits // 8 + 1)
        self._flow_xor = [0] * self.num_cells
        self._flow_count = [0] * self.num_cells
        self._packet_count = [0] * self.num_cells
        self._id_to_key.clear()

    @property
    def sram_entries(self) -> int:
        """Counting-table cells + filter expressed in table-entry units."""
        return self.num_cells + self.filter_bits // (8 * 8)
