"""Sketch substrates: Count-Min and Count sketches.

The paper explicitly does *not* compare PrintQueue against sketches —
"they cannot provide flow IDs, only aggregate byte counts" (Section 7.1)
— but sketches are part of the measurement landscape the related-work
section surveys, and the test suite uses them as a reference point for
error behaviour of the richer baselines.
"""

from __future__ import annotations

from typing import List

from repro.switch.packet import FlowKey

_MASK64 = (1 << 64) - 1


def _hash(flow_id: int, row: int, width: int) -> int:
    x = (flow_id ^ ((row + 1) * 0x9E3779B97F4A7C15)) & _MASK64
    x ^= x >> 31
    x = (x * 0x7FB5D329728EA185) & _MASK64
    x ^= x >> 27
    return x % width


def _sign(flow_id: int, row: int) -> int:
    x = (flow_id ^ ((row + 1) * 0xD6E8FEB86659FD93)) & _MASK64
    x ^= x >> 33
    return 1 if x & 1 else -1


class CountMinSketch:
    """Classic Count-Min: per-row hashed counters, min on read."""

    def __init__(self, width: int = 4096, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def update(self, flow: FlowKey, count: int = 1) -> None:
        flow_id = flow.flow_id()
        for row in range(self.depth):
            self._rows[row][_hash(flow_id, row, self.width)] += count

    def estimate(self, flow: FlowKey) -> int:
        """Never underestimates: min over the flow's counters."""
        flow_id = flow.flow_id()
        return min(
            self._rows[row][_hash(flow_id, row, self.width)]
            for row in range(self.depth)
        )

    def reset(self) -> None:
        self._rows = [[0] * self.width for _ in range(self.depth)]


class CountSketch:
    """Count sketch: signed updates, median on read (unbiased)."""

    def __init__(self, width: int = 4096, depth: int = 5) -> None:
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be positive")
        self.width = width
        self.depth = depth
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]

    def update(self, flow: FlowKey, count: int = 1) -> None:
        flow_id = flow.flow_id()
        for row in range(self.depth):
            slot = _hash(flow_id, row, self.width)
            self._rows[row][slot] += _sign(flow_id, row) * count

    def estimate(self, flow: FlowKey) -> float:
        flow_id = flow.flow_id()
        values = sorted(
            _sign(flow_id, row) * self._rows[row][_hash(flow_id, row, self.width)]
            for row in range(self.depth)
        )
        mid = self.depth // 2
        if self.depth % 2:
            return float(values[mid])
        return (values[mid - 1] + values[mid]) / 2

    def reset(self) -> None:
        self._rows = [[0] * self.width for _ in range(self.depth)]
