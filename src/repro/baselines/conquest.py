"""ConQuest-style snapshot-based queue measurement (related work).

ConQuest (Chen et al., CoNEXT 2019) is the closest prior system the
paper discusses: it tracks the *current* queue's composition with a ring
of count-min-sketch snapshots, each covering a fixed time slice of
recently enqueued traffic.  When a packet dequeues, ConQuest sums the
flow's counts over the snapshots spanning the current queue to decide
whether the flow is a main contributor to the standing queue.

The reproduction implements it to substantiate the paper's comparison
claims: ConQuest answers "is this flow a big contributor *right now*?"
but cannot run the reverse lookup — given a victim, find the culprits of
*its* (possibly historical) queuing — without storage linear in the
total traffic.  It also assumes FIFO order (queue contents = last
``queuing_delay`` worth of arrivals), unlike PrintQueue's time windows.
"""

from __future__ import annotations

from typing import List

from repro.baselines.sketches import CountMinSketch
from repro.switch.packet import FlowKey


class ConQuest:
    """A ring of CMS snapshots over fixed time slices of arrivals.

    Parameters
    ----------
    num_snapshots:
        Ring size ``h``; one snapshot is always being (re)written, the
        rest are readable.
    slice_ns:
        Time covered by one snapshot.
    sketch_width / sketch_depth:
        Dimensions of each snapshot's count-min sketch.
    """

    def __init__(
        self,
        num_snapshots: int = 4,
        slice_ns: int = 65_536,
        sketch_width: int = 1024,
        sketch_depth: int = 2,
    ) -> None:
        if num_snapshots < 2:
            raise ValueError(f"need at least two snapshots, got {num_snapshots}")
        if slice_ns < 1:
            raise ValueError(f"non-positive slice: {slice_ns}")
        self.num_snapshots = num_snapshots
        self.slice_ns = slice_ns
        self._sketches: List[CountMinSketch] = [
            CountMinSketch(sketch_width, sketch_depth) for _ in range(num_snapshots)
        ]
        self._slice_of: List[int] = [-1] * num_snapshots  # slice id stored
        self.updates = 0

    def _ring_index(self, slice_id: int) -> int:
        return slice_id % self.num_snapshots

    def _sketch_for_write(self, slice_id: int) -> CountMinSketch:
        index = self._ring_index(slice_id)
        if self._slice_of[index] != slice_id:
            # Entering a new slice: recycle the oldest snapshot.
            self._sketches[index].reset()
            self._slice_of[index] = slice_id
        return self._sketches[index]

    # -- data plane -------------------------------------------------------------

    def on_enqueue(self, flow: FlowKey, enq_timestamp: int, size_bytes: int = 1) -> None:
        """Record an arriving packet into the current write snapshot."""
        self.updates += 1
        slice_id = enq_timestamp // self.slice_ns
        self._sketch_for_write(slice_id).update(flow, size_bytes)

    def queue_contribution(
        self, flow: FlowKey, deq_timestamp: int, queuing_delay_ns: int
    ) -> int:
        """Estimated amount of ``flow`` in the queue a dequeue observes.

        Sums the flow's counts over the snapshots covering the standing
        queue, i.e. arrivals in ``[deq - delay, deq)``; the write-active
        slice is skipped, as on hardware.
        """
        if queuing_delay_ns <= 0:
            return 0
        first_slice = (deq_timestamp - queuing_delay_ns) // self.slice_ns
        active_slice = deq_timestamp // self.slice_ns
        total = 0
        for slice_id in range(first_slice, active_slice + 1):
            if slice_id == active_slice:
                continue  # being overwritten; unreadable in the data plane
            index = self._ring_index(slice_id)
            if self._slice_of[index] != slice_id:
                continue  # already recycled: the queue outlived the ring
            total += self._sketches[index].estimate(flow)
        return total

    def is_contributor(
        self,
        flow: FlowKey,
        deq_timestamp: int,
        queuing_delay_ns: int,
        threshold: int,
    ) -> bool:
        """ConQuest's native judgement: is this flow a main contributor?"""
        return (
            self.queue_contribution(flow, deq_timestamp, queuing_delay_ns)
            >= threshold
        )

    # -- properties the paper's comparison rests on ------------------------------

    @property
    def coverage_ns(self) -> int:
        """How far back the ring can see: (h-1) readable slices."""
        return (self.num_snapshots - 1) * self.slice_ns

    def can_cover_delay(self, queuing_delay_ns: int) -> bool:
        """Whether a victim's whole queue fits in the readable snapshots.

        Queues standing longer than ``coverage_ns`` have outlived the
        ring — the paper's point that diagnosing a specific victim's
        (historical) queuing would need storage linear in total traffic.
        """
        return queuing_delay_ns <= self.coverage_ns

    @property
    def sram_entries(self) -> int:
        return sum(s.width * s.depth for s in self._sketches)
