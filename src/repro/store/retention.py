"""Retention policies for the snapshot store.

PrintQueue's time windows already encode an exponential-coverage story:
window ``i`` is shifted by ``m0 + alpha * i``, so deeper windows cover
exponentially longer spans at exponentially coarser resolution.  The
retention policy extends that story across *snapshots*: recent snapshots
keep every window (full resolution for fresh queries, where recency bias
matters most), while snapshots older than ``full_window_horizon`` polls
are *thinned* down to their deep/coarse windows — the shallow windows'
fine-grained coverage is long gone from any query interval that far back,
but the coarse windows still answer long-range queries.

The default policy reproduces the pre-store behaviour exactly: a pure
count cap (``max_snapshots``) with no thinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.filtering import FilteredWindow
from repro.errors import ConfigError


@dataclass(frozen=True)
class RetentionPolicy:
    """How long, and at what resolution, a store keeps snapshots.

    Attributes
    ----------
    max_snapshots:
        Hard cap on stored time-window snapshots; the oldest is evicted
        when a new one lands (the historic ``AnalysisProgram`` bound).
    qm_max_snapshots:
        Cap for queue-monitor snapshots; ``None`` means "same as
        ``max_snapshots``" (the historic coupling).
    full_window_horizon:
        Number of newest snapshots kept at full resolution.  ``None``
        (the default) disables thinning entirely.  Snapshots older than
        the horizon are thinned: shallow windows are dropped, deep/coarse
        windows retained.
    thin_below_window:
        When thinning, drop windows with ``window_index`` below this
        value (window 0 is the newest/shallowest; higher indices are
        coarser and cover exponentially more time).
    """

    max_snapshots: int = 4096
    qm_max_snapshots: Optional[int] = None
    full_window_horizon: Optional[int] = None
    thin_below_window: int = 1

    def __post_init__(self) -> None:
        if self.max_snapshots < 1:
            raise ConfigError(
                f"max_snapshots must be >= 1, got {self.max_snapshots}"
            )
        if self.qm_max_snapshots is not None and self.qm_max_snapshots < 1:
            raise ConfigError(
                f"qm_max_snapshots must be >= 1, got {self.qm_max_snapshots}"
            )
        if self.full_window_horizon is not None and self.full_window_horizon < 0:
            raise ConfigError(
                "full_window_horizon must be >= 0, got "
                f"{self.full_window_horizon}"
            )
        if self.thin_below_window < 0:
            raise ConfigError(
                f"thin_below_window must be >= 0, got {self.thin_below_window}"
            )

    @property
    def effective_qm_max(self) -> int:
        return (
            self.max_snapshots
            if self.qm_max_snapshots is None
            else self.qm_max_snapshots
        )

    def thin_windows(self, windows: List[FilteredWindow]) -> List[FilteredWindow]:
        """The windows that survive thinning (deep/coarse ones)."""
        return [w for w in windows if w.window_index >= self.thin_below_window]
