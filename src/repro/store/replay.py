"""Deterministic replay of a recorded snapshot stream.

A recording (written by :class:`~repro.store.recording.Recorder` or by a
write-mode :class:`~repro.store.mmapstore.MmapStore`) is the run's exact
ingest history.  Replaying feeds that history through a fresh store of
any backend; because retention is re-derived from the policy in the
header, the rebuilt store ends with the same version counter, eviction
pattern, and snapshot contents as the live run — so queries, fault
coverage reports, and benches re-run against it produce byte-identical
answers.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.core.config import PrintQueueConfig
from repro.core.queries import QueryInterval
from repro.errors import StoreError
from repro.store import format as fmt
from repro.store.base import SnapshotStore
from repro.store.cold import CompressedStore
from repro.store.memory import MemoryStore
from repro.store.mmapstore import MmapStore
from repro.store.retention import RetentionPolicy

if TYPE_CHECKING:
    from repro.core.analysis import AnalysisProgram

BACKENDS = ("memory", "mmap", "compressed")

_CONFIG_FIELDS = (
    "m0",
    "k",
    "alpha",
    "T",
    "link_rate_bps",
    "min_packet_bytes",
    "qm_levels",
    "qm_granularity",
    "qm_poll_period_ns",
    "num_ports",
)


def build_meta(
    config: PrintQueueConfig,
    d_ns: Optional[float],
    retention: RetentionPolicy,
    *,
    fractional_cells: bool,
    apply_coefficients: bool,
    model_dp_read_cost: bool,
) -> Dict[str, Any]:
    """The header metadata a run binds to its store (and recordings)."""
    return {
        "kind": "printqueue-run",
        "config": {name: getattr(config, name) for name in _CONFIG_FIELDS},
        "d_ns": d_ns,
        "fractional_cells": fractional_cells,
        "apply_coefficients": apply_coefficients,
        "model_dp_read_cost": model_dp_read_cost,
        "retention": {
            "max_snapshots": retention.max_snapshots,
            "qm_max_snapshots": retention.qm_max_snapshots,
            "full_window_horizon": retention.full_window_horizon,
            "thin_below_window": retention.thin_below_window,
        },
    }


def config_from_meta(meta: Dict[str, Any]) -> PrintQueueConfig:
    """Rebuild the run's :class:`PrintQueueConfig` from header metadata."""
    fields = meta.get("config")
    if not isinstance(fields, dict):
        raise StoreError(
            "recording header has no run configuration; was it recorded "
            "through AnalysisProgram?"
        )
    return PrintQueueConfig(**fields)


def read_recording(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a recording's header and count its records (for `inspect`)."""
    buf = Path(path).read_bytes()
    meta, offset = fmt.read_header(buf)
    counts = {fmt.REC_TW_ADD: 0, fmt.REC_QM_ADD: 0, fmt.REC_TW_REPLACE: 0}
    for kind, _, _ in fmt.iter_records(buf, offset):
        if kind not in counts:
            raise StoreError(f"unknown record kind in {path}: {kind}")
        counts[kind] += 1
    return {
        "meta": meta,
        "bytes": len(buf),
        "tw_records": counts[fmt.REC_TW_ADD],
        "qm_records": counts[fmt.REC_QM_ADD],
        "replace_records": counts[fmt.REC_TW_REPLACE],
        "records": sum(counts.values()),
    }


def replay_into(store: SnapshotStore, buf: bytes) -> int:
    """Feed a recorded ingest stream into an existing store.

    Binds the store to the recording's header metadata (a no-op when
    already bound — first bind wins) and replays every add/replace in
    order through the normal mutating API, so version, retention, and
    eviction history evolve exactly as they did live.  Returns the
    number of records consumed; ``replay_position`` is NOT touched —
    callers rebuilding a store from scratch (:func:`replay_store`) set
    it, while the sharded ingest driver replaying a worker's stream
    into a live parent store leaves it 0, like any live run.
    """
    meta, offset = fmt.read_header(buf)
    store.bind(meta)
    position = 0
    for kind, off, _length in fmt.iter_records(buf, offset):
        position += 1
        if kind == fmt.REC_TW_ADD:
            store.add_tw(fmt.decode_tw(buf, off))
        elif kind == fmt.REC_QM_ADD:
            snapshot, bounded = fmt.decode_qm(buf, off)
            store.add_qm(snapshot, bounded=bounded)
        elif kind == fmt.REC_TW_REPLACE:
            target, replacement = fmt.decode_replace(buf, off)
            entry = store._seq_index.get(target)
            if entry is not None:
                victim = store._decode_entry_tw(entry)
                store.replace_windows(victim, replacement.windows)
            else:
                # The quarantined snapshot was never stored (or already
                # evicted): the live run still bumped the version.
                store.replace_windows(replacement, replacement.windows)
        else:
            raise StoreError(f"unknown record kind in stream: {kind}")
    return position


def replay_store(
    path: Union[str, Path],
    backend: str = "memory",
    retention: Optional[RetentionPolicy] = None,
) -> SnapshotStore:
    """Rebuild a store of ``backend`` from a recorded ingest stream."""
    if backend == "mmap":
        return MmapStore.open(path, retention)
    if backend == "memory":
        store_cls: type = MemoryStore
    elif backend == "compressed":
        store_cls = CompressedStore
    else:
        raise StoreError(f"unknown store backend: {backend!r}")
    buf = Path(path).read_bytes()
    meta, _offset = fmt.read_header(buf)
    if retention is None:
        retention = RetentionPolicy(**meta.get("retention", {}))
    store: SnapshotStore = store_cls(retention=retention)
    store.replay_position = replay_into(store, buf)
    return store


def replay_analysis(
    path: Union[str, Path],
    backend: str = "memory",
    retention: Optional[RetentionPolicy] = None,
) -> "AnalysisProgram":
    """Rebuild a queryable :class:`AnalysisProgram` from a recording."""
    # Local import: repro.core.analysis imports repro.store at module load.
    from repro.core.analysis import AnalysisProgram

    store = replay_store(path, backend, retention)
    meta = store.meta
    config = config_from_meta(meta)
    return AnalysisProgram(
        config,
        d_ns=meta.get("d_ns"),
        fractional_cells=bool(meta.get("fractional_cells", False)),
        apply_coefficients=bool(meta.get("apply_coefficients", True)),
        model_dp_read_cost=bool(meta.get("model_dp_read_cost", True)),
        store=store,
    )


def default_probe_intervals(
    analysis: "AnalysisProgram", count: int
) -> List[QueryInterval]:
    """Deterministic probe intervals over a run's periodic snapshots.

    Used by ``repro store record --queries`` and ``repro store replay
    --check`` so both sides derive the same query set from the same
    snapshot stream: one interval per sampled periodic snapshot, ending
    at its read time and spanning one set period.
    """
    periodic = [s for s in analysis.tw_snapshots if s.source == "periodic"]
    span = analysis.config.set_period_ns
    intervals: List[QueryInterval] = []
    for snapshot in periodic[-count:]:
        end = snapshot.read_time_ns
        if end <= 0:
            continue
        intervals.append(QueryInterval(max(0, end - span), end))
    return intervals
