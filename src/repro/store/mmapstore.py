"""The disk tier: an append-only PQSTORE1 file read through ``mmap``.

In write mode the store journals every ingest event (adds and quarantine
replacements) to its file as it happens, so **the file is itself a
recording** — ``repro store replay`` accepts it directly, and attaching
a second recorder is rejected as redundant.  Retention never rewrites
the log: evictions and thinning only drop in-memory entries, keeping the
on-disk stream a pure ingest history that replay can re-derive retention
from.

In read mode (:meth:`MmapStore.open`) the file is mapped read-only and
the record stream is ingested *without decoding*: each entry is a
``(offset, length)`` token into the map, and decoding happens lazily on
first access — the per-window TTS columns come back as ``np.frombuffer``
views straight into the mapped pages (zero-copy), which is what lets
compiled query plans build from disk without materialising the run.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Optional, Tuple, Union

from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import StoreError
from repro.store import format as fmt
from repro.store.base import SnapshotStore, _QMEntry, _TWEntry
from repro.store.retention import RetentionPolicy

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot
    from repro.store.recording import Recorder

Token = Tuple[int, int]  # (payload offset, payload length) within the file


class MmapStore(SnapshotStore):
    """Disk tier over the binary register-dump format."""

    backend = "mmap"

    def __init__(
        self,
        path: Union[str, Path],
        retention: Optional[RetentionPolicy] = None,
    ) -> None:
        super().__init__(retention)
        self.path = Path(path)
        self.readonly = False
        self._fh: IO[bytes] = open(self.path, "w+b")
        self._map: Optional[mmap.mmap] = None
        self._map_size = 0
        self._write_pos = 0

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        retention: Optional[RetentionPolicy] = None,
    ) -> "MmapStore":
        """Open an existing PQSTORE1 file read-only and ingest its stream.

        The retention policy defaults to the one in the file's header, so
        the rebuilt store's version counter, evictions, and thinning
        match the run that wrote the file.
        """
        fh: IO[bytes] = open(Path(path), "rb")
        fh.seek(0, 2)
        size = fh.tell()
        if size == 0:
            fh.close()
            raise StoreError(f"empty store file: {path}")
        mapped = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
        meta, first = fmt.read_header(mapped)
        if retention is None:
            retention = RetentionPolicy(**meta.get("retention", {}))
        store = cls.__new__(cls)
        SnapshotStore.__init__(store, retention)
        store.path = Path(path)
        store.readonly = True
        store._fh = fh
        store._map = mapped
        store._map_size = size
        store._write_pos = size
        store.bind(meta)
        store._ingest_existing(first)
        return store

    # -- write side --------------------------------------------------------

    def _on_bind(self) -> None:
        if self.readonly:
            return
        header = fmt.encode_header(self.meta)
        self._fh.write(header)
        self._write_pos = len(header)

    def attach_recorder(self, recorder: "Recorder") -> None:
        raise StoreError(
            "MmapStore's backing file is already a recording; "
            "replay it directly instead of attaching a recorder"
        )

    def _append_record(self, kind: int, payload: bytes) -> Token:
        if self.readonly:
            raise StoreError("store opened read-only")
        offset = self._write_pos + 16  # record header size
        data = fmt.frame(kind, payload)
        self._fh.write(data)
        self._write_pos += len(data)
        return offset, len(payload)

    def _encode_tw(self, snapshot: "TimeWindowSnapshot") -> Token:
        return self._append_record(fmt.REC_TW_ADD, fmt.encode_tw(snapshot))

    def _encode_qm(self, snapshot: QueueMonitorSnapshot, bounded: bool) -> Token:
        return self._append_record(fmt.REC_QM_ADD, fmt.encode_qm(snapshot, bounded))

    def _note_replaced(
        self, entry: _TWEntry, snapshot: "TimeWindowSnapshot"
    ) -> None:
        if self.readonly:
            return
        offset, length = self._append_record(
            fmt.REC_TW_REPLACE, fmt.encode_replace(entry.seq, snapshot)
        )
        self.tw_bytes += (length - 8) - entry.nbytes
        entry.token = (offset + 8, length - 8)
        entry.nbytes = length - 8

    # -- read side ---------------------------------------------------------

    def _buffer(self) -> mmap.mmap:
        if self._map is None or self._map_size < self._write_pos:
            if not self.readonly:
                self._fh.flush()
            if self._map is not None:
                self._map.close()
            self._map = mmap.mmap(
                self._fh.fileno(), self._write_pos, access=mmap.ACCESS_READ
            )
            self._map_size = self._write_pos
        return self._map

    def _decode_tw(self, token: Any) -> "TimeWindowSnapshot":
        offset, _ = token
        return fmt.decode_tw(self._buffer(), offset)

    def _decode_qm(self, token: Any) -> QueueMonitorSnapshot:
        offset, _ = token
        return fmt.decode_qm(self._buffer(), offset)[0]

    def _nbytes(self, token: Any) -> int:
        return int(token[1])

    def _ingest_existing(self, first_offset: int) -> None:
        buf = self._buffer()
        for kind, off, length in fmt.iter_records(buf, first_offset):
            self.replay_position += 1
            if kind == fmt.REC_TW_ADD:
                seq = self._next_seq
                self._next_seq += 1
                entry = _TWEntry(
                    seq, fmt.peek_tw_read_time(buf, off), (off, length), length
                )
                self._insert_tw_entry(entry)
            elif kind == fmt.REC_QM_ADD:
                self._insert_qm_entry(
                    _QMEntry((off, length), length),
                    fmt.peek_qm_bounded(buf, off),
                )
            elif kind == fmt.REC_TW_REPLACE:
                target = fmt.peek_replace_target(buf, off)
                victim = self._seq_index.get(target)
                if victim is not None:
                    self.tw_bytes += (length - 8) - victim.nbytes
                    victim.token = (off + 8, length - 8)
                    victim.nbytes = length - 8
                    victim.cached = None
                self.quarantine_replacements += 1
                self._version += 1
            else:
                raise StoreError(f"unknown record kind in {self.path}: {kind}")

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        if not self.readonly:
            self._fh.flush()

    def close(self) -> None:
        if self._map is not None:
            self._map.close()
            self._map = None
        if not self._fh.closed:
            if not self.readonly:
                self._fh.flush()
            self._fh.close()
