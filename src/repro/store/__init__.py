"""Pluggable snapshot stores for the control-plane analysis program.

Three tiers behind one interface (:class:`SnapshotStore`):

* :class:`MemoryStore` — the default hot tier; live Python objects,
  bit-identical to the historic in-process lists.
* :class:`MmapStore` — the disk tier; an append-only binary
  register-dump log read back through ``mmap`` with zero-copy TTS
  columns, doubling as a recording.
* :class:`CompressedStore` — the cold tier; zlib-compressed payloads
  decompressed on access.

Plus :class:`RetentionPolicy` (count caps and deep-window thinning),
:class:`Recorder` (mirror a run's ingest stream to disk), and the
replay helpers that rebuild a deterministic, queryable store from a
recording.
"""

from repro.store.base import SnapshotStore, SnapshotView
from repro.store.cold import CompressedStore
from repro.store.memory import MemoryStore
from repro.store.mmapstore import MmapStore
from repro.store.recording import Recorder
from repro.store.replay import (
    BACKENDS,
    build_meta,
    config_from_meta,
    default_probe_intervals,
    read_recording,
    replay_analysis,
    replay_into,
    replay_store,
)
from repro.store.retention import RetentionPolicy

__all__ = [
    "BACKENDS",
    "CompressedStore",
    "MemoryStore",
    "MmapStore",
    "Recorder",
    "RetentionPolicy",
    "SnapshotStore",
    "SnapshotView",
    "build_meta",
    "config_from_meta",
    "default_probe_intervals",
    "read_recording",
    "replay_analysis",
    "replay_into",
    "replay_store",
]
