"""The compressed cold tier.

Snapshots are held as zlib-compressed blobs of the same binary payloads
the disk tier writes, decompressed lazily on first access.  Useful for
long always-on runs where the snapshot history must stay addressable but
is rarely queried: the byte gauge reports the compressed footprint, and
retention thinning re-compresses the smaller payload so old snapshots
actually shrink (unlike the append-only disk log, which never rewrites).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any

from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.store import format as fmt
from repro.store.base import SnapshotStore, _TWEntry

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot

_LEVEL = 6


class CompressedStore(SnapshotStore):
    """Cold tier: zlib-compressed binary payloads in process memory."""

    backend = "compressed"

    def _encode_tw(self, snapshot: "TimeWindowSnapshot") -> Any:
        return zlib.compress(fmt.encode_tw(snapshot), _LEVEL)

    def _decode_tw(self, token: Any) -> "TimeWindowSnapshot":
        return fmt.decode_tw(zlib.decompress(token), 0)

    def _encode_qm(self, snapshot: QueueMonitorSnapshot, bounded: bool) -> Any:
        return zlib.compress(fmt.encode_qm(snapshot, bounded), _LEVEL)

    def _decode_qm(self, token: Any) -> QueueMonitorSnapshot:
        return fmt.decode_qm(zlib.decompress(token), 0)[0]

    def _nbytes(self, token: Any) -> int:
        return len(token)

    def _note_thinned(self, entry: _TWEntry, snapshot: "TimeWindowSnapshot") -> None:
        self._recompress(entry, snapshot)

    def _note_replaced(
        self, entry: _TWEntry, snapshot: "TimeWindowSnapshot"
    ) -> None:
        self._recompress(entry, snapshot)

    def _recompress(self, entry: _TWEntry, snapshot: "TimeWindowSnapshot") -> None:
        token = self._encode_tw(snapshot)
        self.tw_bytes += len(token) - entry.nbytes
        entry.token = token
        entry.nbytes = len(token)
