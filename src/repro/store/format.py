"""The binary register-dump format shared by MmapStore and recordings.

Layout (all integers little-endian, every record padded to 8 bytes so
``np.frombuffer`` views stay aligned):

* **File header** — magic ``b"PQSTORE1"``, ``u32 format_version``,
  ``u32 meta_len``, then ``meta_len`` bytes of UTF-8 JSON (the run
  metadata: config fields, flags, retention), padded to 8.
* **Records** — ``u32 record_magic``, ``u32 kind``, ``u64 payload_len``,
  then the payload, padded to 8.  Kinds: ``TW_ADD`` (a stored
  time-window snapshot), ``QM_ADD`` (a queue-monitor snapshot), and
  ``TW_REPLACE`` (a fault quarantine replacing a stored snapshot's
  windows).

A **time-window payload** is ``i64 read_time_ns, i64 valid_from_ns,
u32 source, u32 num_windows, u32 num_flows, u32 reserved``, a flow table
of ``num_flows`` 16-byte entries (``u32 src_ip, u32 dst_ip,
u16 src_port, u16 dst_port, u8 proto`` + 3 pad), then per window
``u32 window_index, u32 shift, i64 reference_tts, u64 num_cells``
followed by the cells columnar: ``i64 tts[num_cells]`` then
``i32 flow_idx[num_cells]`` (indices into the flow table), padded to 8.
The TTS column is exactly the array the compiled query plan consumes,
so decoding from an mmap hands the plan a zero-copy read-only view.

A **queue-monitor payload** is ``i64 time_ns, i64 top, u32 flags,
u32 num_flows, u32 num_inc, u32 num_dec``, the flow table,
``i64 inc_seq[num_inc]``, ``i64 dec_seq[num_dec]``, then
``i32 inc_flow_idx[num_inc]`` (-1 for unset levels), padded to 8.
Flag bit 0 records whether the append was bounded by the retention cap
(periodic polls) or not (on-demand reads), so replay reproduces the
store's exact eviction history.

A **replace payload** is ``i64 target_seq`` (the store-assigned sequence
number of the snapshot being replaced; -1 when the quarantined snapshot
was never stored) followed by a full time-window payload.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.filtering import FilteredWindow
from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import DecodeError
from repro.switch.packet import FlowKey

MAGIC = b"PQSTORE1"
FORMAT_VERSION = 1
RECORD_MAGIC = 0x50513152  # "PQ1R"

REC_TW_ADD = 1
REC_QM_ADD = 2
REC_TW_REPLACE = 3

QM_FLAG_BOUNDED = 1

#: i64 sentinel for a ``reference_tts`` of None (empty window set).
_REF_NONE = -(1 << 63)

_HEADER = struct.Struct("<II")
_RECORD = struct.Struct("<IIQ")
_TW_HEAD = struct.Struct("<qqIIII")
_WINDOW_HEAD = struct.Struct("<IIqQ")
_QM_HEAD = struct.Struct("<qqIIII")
_FLOW_ENTRY = struct.Struct("<IIHHB3x")

_SOURCE_CODES = {"periodic": 0, "data-plane": 1}
_SOURCE_NAMES = {code: name for name, code in _SOURCE_CODES.items()}


def _pad8(n: int) -> bytes:
    return b"\x00" * (-n % 8)


# -- flow tables ----------------------------------------------------------


def _intern_flows(parts: List[bytes], flows: List[Optional[FlowKey]]) -> List[int]:
    """Append a flow table to ``parts``; return per-flow indices (-1=None)."""
    table: Dict[FlowKey, int] = {}
    indices: List[int] = []
    entries: List[bytes] = []
    for flow in flows:
        if flow is None:
            indices.append(-1)
            continue
        idx = table.get(flow)
        if idx is None:
            idx = len(table)
            table[flow] = idx
            entries.append(
                _FLOW_ENTRY.pack(
                    flow.src_ip,
                    flow.dst_ip,
                    flow.src_port,
                    flow.dst_port,
                    flow.proto,
                )
            )
        indices.append(idx)
    parts.append(b"".join(entries))
    return indices


def _read_flow_table(buf: bytes, offset: int, count: int) -> List[FlowKey]:
    flows: List[FlowKey] = []
    for i in range(count):
        src_ip, dst_ip, src_port, dst_port, proto = _FLOW_ENTRY.unpack_from(
            buf, offset + i * _FLOW_ENTRY.size
        )
        flows.append(FlowKey(src_ip, dst_ip, src_port, dst_port, proto))
    return flows


# -- file header ----------------------------------------------------------


def encode_header(meta: Dict[str, Any]) -> bytes:
    """Serialize the PQSTORE1 file header for ``meta``."""
    payload = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    head = MAGIC + _HEADER.pack(FORMAT_VERSION, len(payload)) + payload
    return head + _pad8(len(head))


def read_header(buf: bytes) -> Tuple[Dict[str, Any], int]:
    """Parse the file header; return ``(meta, first_record_offset)``."""
    if len(buf) < len(MAGIC) + _HEADER.size:
        raise DecodeError("store file too short for a PQSTORE1 header")
    if bytes(buf[: len(MAGIC)]) != MAGIC:
        raise DecodeError("bad magic: not a PQSTORE1 file")
    version, meta_len = _HEADER.unpack_from(buf, len(MAGIC))
    if version != FORMAT_VERSION:
        raise DecodeError(f"unsupported PQSTORE format version: {version}")
    start = len(MAGIC) + _HEADER.size
    if start + meta_len > len(buf):
        raise DecodeError("truncated header metadata")
    raw = bytes(buf[start : start + meta_len])
    try:
        meta = json.loads(raw.decode())
    except ValueError as exc:
        raise DecodeError(f"corrupt header metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise DecodeError("header metadata is not a JSON object")
    end = start + meta_len
    return meta, end + (-end % 8)


# -- record framing -------------------------------------------------------


def frame(kind: int, payload: bytes) -> bytes:
    """Wrap a payload in a framed, 8-byte-padded record."""
    head = _RECORD.pack(RECORD_MAGIC, kind, len(payload))
    return head + payload + _pad8(len(payload))


def iter_records(buf: bytes, offset: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(kind, payload_offset, payload_len)`` for each record."""
    size = len(buf)
    while offset < size:
        if offset + _RECORD.size > size:
            raise DecodeError(f"truncated record header at offset {offset}")
        magic, kind, payload_len = _RECORD.unpack_from(buf, offset)
        if magic != RECORD_MAGIC:
            raise DecodeError(f"bad record magic at offset {offset}")
        payload_off = offset + _RECORD.size
        if payload_off + payload_len > size:
            raise DecodeError(f"truncated record payload at offset {offset}")
        yield kind, payload_off, payload_len
        offset = payload_off + payload_len + (-payload_len % 8)


# -- time-window snapshots ------------------------------------------------


def _intern_flow_indices(
    parts: List[bytes], windows: List[FilteredWindow]
) -> Tuple[List[int], int]:
    """Index-based twin of :func:`_intern_flows` for fused windows.

    Every window carries a ``flow_idx`` column into one shared flow
    table, so the snapshot-local table is built with one Python dict
    lookup per *distinct* flow (first-use order, byte-identical to the
    object path) and the per-cell indices remap vectorised.
    """
    table = None
    cols: List[np.ndarray] = []
    for fw in windows:
        fidx = fw.flow_idx
        assert fidx is not None  # caller checked
        cols.append(np.asarray(fidx, dtype=np.int64))
        if table is None and fw.flow_table is not None:
            table = fw.flow_table
    cat = (
        np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    )
    if len(cat) == 0:
        parts.append(b"")
        return [], 0
    assert table is not None
    uniq, first = np.unique(cat, return_index=True)
    order = np.argsort(first, kind="stable")
    uniq = uniq[order]  # shared-table ids in first-use (cell) order
    lookup = np.empty(int(cat.max()) + 1, dtype=np.int64)
    lookup[uniq] = np.arange(len(uniq), dtype=np.int64)
    entries = [
        _FLOW_ENTRY.pack(f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.proto)
        for f in (table[j] for j in uniq.tolist())
    ]
    parts.append(b"".join(entries))
    return lookup[cat].tolist(), len(uniq)


def encode_tw(snapshot: Any) -> bytes:
    """Encode a :class:`~repro.core.analysis.TimeWindowSnapshot` payload."""
    windows: List[FilteredWindow] = snapshot.windows
    counts: List[int] = []
    table_parts: List[bytes] = []
    if windows and all(
        getattr(fw, "flow_idx", None) is not None for fw in windows
    ):
        for fw in windows:
            counts.append(fw.cell_count)
        indices, num_flows = _intern_flow_indices(table_parts, windows)
    else:
        flows: List[Optional[FlowKey]] = []
        for fw in windows:
            cell_flows = (
                fw.cell_flows
                if fw.cell_flows is not None
                else [flow for _, flow in fw.cells]
            )
            flows.extend(cell_flows)
            counts.append(len(cell_flows))
        indices = _intern_flows(table_parts, flows)
        num_flows = len({f for f in flows if f is not None})
    try:
        source = _SOURCE_CODES[snapshot.source]
    except KeyError:
        raise DecodeError(f"unknown snapshot source: {snapshot.source!r}")
    parts = [
        _TW_HEAD.pack(
            snapshot.read_time_ns,
            snapshot.valid_from_ns,
            source,
            len(windows),
            num_flows,
            0,
        ),
        table_parts[0],
    ]
    pos = 0
    for fw, count in zip(windows, counts):
        ref = _REF_NONE if fw.reference_tts is None else fw.reference_tts
        parts.append(_WINDOW_HEAD.pack(fw.window_index, fw.shift, ref, count))
        if fw.tts_array is not None:
            tts = np.ascontiguousarray(fw.tts_array, dtype="<i8")
        else:
            tts = np.array([c[0] for c in fw.cells], dtype="<i8")
        parts.append(tts.tobytes())
        idx = np.array(indices[pos : pos + count], dtype="<i4")
        parts.append(idx.tobytes())
        parts.append(_pad8(count * 12))
        pos += count
    payload = b"".join(parts)
    return payload + _pad8(len(payload))


def decode_tw(buf: bytes, offset: int) -> Any:
    """Decode a time-window payload into a ``TimeWindowSnapshot``.

    ``buf`` may be an ``mmap`` — the per-window TTS columns come back as
    read-only zero-copy views into it, which is exactly what the
    compiled query plan consumes.
    """
    # Local import: repro.core.analysis imports repro.store at module
    # load, so the snapshot class must resolve lazily here.
    from repro.core.analysis import TimeWindowSnapshot

    read_time_ns, valid_from_ns, source, num_windows, num_flows, _ = (
        _TW_HEAD.unpack_from(buf, offset)
    )
    if source not in _SOURCE_NAMES:
        raise DecodeError(f"unknown snapshot source code: {source}")
    pos = offset + _TW_HEAD.size
    flow_table = _read_flow_table(buf, pos, num_flows)
    pos += num_flows * _FLOW_ENTRY.size
    windows: List[FilteredWindow] = []
    for _ in range(num_windows):
        window_index, shift, ref, num_cells = _WINDOW_HEAD.unpack_from(buf, pos)
        pos += _WINDOW_HEAD.size
        tts = np.frombuffer(buf, dtype="<i8", count=num_cells, offset=pos)
        pos += num_cells * 8
        idx = np.frombuffer(buf, dtype="<i4", count=num_cells, offset=pos)
        pos += num_cells * 4
        pos += -num_cells * 12 % 8
        # Zero-copy bridge: the TTS and flow-index columns stay views
        # into ``buf`` (the mmap, for MmapStore), and the compiled query
        # plan interns straight off them.  Tuple/object views derive
        # lazily only if a scalar consumer asks.
        windows.append(
            FilteredWindow(
                window_index,
                shift,
                None,
                None if ref == _REF_NONE else ref,
                tts_array=tts,
                flow_idx=idx,
                flow_table=flow_table,
            )
        )
    return TimeWindowSnapshot(
        read_time_ns=read_time_ns,
        windows=windows,
        source=_SOURCE_NAMES[source],
        valid_from_ns=valid_from_ns,
    )


# -- queue-monitor snapshots ----------------------------------------------


def encode_qm(snapshot: QueueMonitorSnapshot, bounded: bool) -> bytes:
    """Encode a queue-monitor snapshot payload."""
    table_parts: List[bytes] = []
    indices = _intern_flows(table_parts, snapshot.inc_flow)
    num_flows = len({f for f in snapshot.inc_flow if f is not None})
    flags = QM_FLAG_BOUNDED if bounded else 0
    parts = [
        _QM_HEAD.pack(
            snapshot.time_ns,
            snapshot.top,
            flags,
            num_flows,
            len(snapshot.inc_seq),
            len(snapshot.dec_seq),
        ),
        table_parts[0],
        np.array(snapshot.inc_seq, dtype="<i8").tobytes(),
        np.array(snapshot.dec_seq, dtype="<i8").tobytes(),
        np.array(indices, dtype="<i4").tobytes(),
    ]
    payload = b"".join(parts)
    return payload + _pad8(len(payload))


def decode_qm(buf: bytes, offset: int) -> Tuple[QueueMonitorSnapshot, bool]:
    """Decode a queue-monitor payload; returns ``(snapshot, bounded)``."""
    time_ns, top, flags, num_flows, num_inc, num_dec = _QM_HEAD.unpack_from(
        buf, offset
    )
    pos = offset + _QM_HEAD.size
    flow_table = _read_flow_table(buf, pos, num_flows)
    pos += num_flows * _FLOW_ENTRY.size
    inc_seq = np.frombuffer(buf, dtype="<i8", count=num_inc, offset=pos)
    pos += num_inc * 8
    dec_seq = np.frombuffer(buf, dtype="<i8", count=num_dec, offset=pos)
    pos += num_dec * 8
    idx = np.frombuffer(buf, dtype="<i4", count=num_inc, offset=pos)
    inc_flow: List[Optional[FlowKey]] = [
        None if i < 0 else flow_table[i] for i in idx.tolist()
    ]
    snapshot = QueueMonitorSnapshot(
        time_ns=time_ns,
        top=top,
        inc_seq=inc_seq.tolist(),
        inc_flow=inc_flow,
        dec_seq=dec_seq.tolist(),
    )
    return snapshot, bool(flags & QM_FLAG_BOUNDED)


def peek_tw_read_time(buf: bytes, offset: int) -> int:
    """A TW payload's ``read_time_ns`` without decoding the windows."""
    (read_time_ns,) = struct.unpack_from("<q", buf, offset)
    return read_time_ns


def peek_qm_bounded(buf: bytes, offset: int) -> bool:
    """A QM payload's bounded flag without decoding the snapshot."""
    flags = _QM_HEAD.unpack_from(buf, offset)[2]
    return bool(flags & QM_FLAG_BOUNDED)


def peek_replace_target(buf: bytes, offset: int) -> int:
    """A replace payload's target sequence number."""
    (target_seq,) = struct.unpack_from("<q", buf, offset)
    return target_seq


# -- quarantine replacements ----------------------------------------------


def encode_replace(target_seq: int, snapshot: Any) -> bytes:
    """Encode a quarantine-replacement payload."""
    return struct.pack("<q", target_seq) + encode_tw(snapshot)


def decode_replace(buf: bytes, offset: int) -> Tuple[int, Any]:
    """Decode a replacement payload; returns ``(target_seq, snapshot)``."""
    (target_seq,) = struct.unpack_from("<q", buf, offset)
    return target_seq, decode_tw(buf, offset + 8)
