"""Recording a run's poll stream to a PQSTORE1 file.

A :class:`Recorder` attaches to any store (``store.attach_recorder``)
and mirrors the *ingest* stream — time-window adds, queue-monitor adds,
quarantine replacements — into an append-only file in the binary format
of :mod:`repro.store.format`.  Retention (evictions, thinning) is *not*
recorded: it is re-derived from the policy in the header metadata at
replay time, which is what makes the replayed store's version counter
and eviction history exactly match the live run's.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, Dict, Union

from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import StoreError
from repro.store import format as fmt

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot


class Recorder:
    """Append-only writer of a run's snapshot ingest stream."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: IO[bytes] = open(self.path, "wb")
        self._header_written = False
        self.bytes_written = 0
        self.records_written = 0

    def write_header(self, meta: Dict[str, Any]) -> None:
        if self._header_written:
            return
        self._write(fmt.encode_header(meta))
        self._header_written = True

    def _write(self, data: bytes) -> None:
        self._fh.write(data)
        self.bytes_written += len(data)

    def _record(self, kind: int, payload: bytes) -> None:
        if not self._header_written:
            raise StoreError("recorder used before its header was written")
        self._write(fmt.frame(kind, payload))
        self.records_written += 1

    def record_tw(self, snapshot: "TimeWindowSnapshot") -> None:
        self._record(fmt.REC_TW_ADD, fmt.encode_tw(snapshot))

    def record_qm(self, snapshot: QueueMonitorSnapshot, bounded: bool) -> None:
        self._record(fmt.REC_QM_ADD, fmt.encode_qm(snapshot, bounded))

    def record_replace(self, target_seq: int, snapshot: "TimeWindowSnapshot") -> None:
        self._record(fmt.REC_TW_REPLACE, fmt.encode_replace(target_seq, snapshot))

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
