"""The pluggable snapshot store behind :class:`AnalysisProgram`.

The store owns every control-plane snapshot (time-window and
queue-monitor) **and the version counter** that the compiled-plan cache
keys on.  Centralising the counter here is the point of the design: any
mutation that can change a query answer — poll ingest, an on-demand
read, a retention eviction, thinning, a fault quarantine — flows through
exactly one of the mutating methods below, each of which bumps the
version, so ``engine/queryplan.py``'s cache invalidation contract cannot
be bypassed by a new write path.

Backends supply four encode/decode primitives; everything with
behavioural weight — ascending-at-insert ordering, retention caps,
thinning, quarantine replacement, recording — lives here so all backends
share one history of store mutations and therefore one version
evolution.  That shared history is what makes record/replay exact: a
replayed store re-derives the same version sequence, eviction pattern,
and per-snapshot compile memo behaviour as the live run.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
    overload,
)

from repro.core.filtering import FilteredWindow
from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.errors import StoreError
from repro.store.retention import RetentionPolicy

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot
    from repro.store.recording import Recorder


class _TWEntry:
    """One stored time-window snapshot: key, token, and decode cache."""

    __slots__ = ("seq", "key", "token", "nbytes", "thinned", "cached")

    def __init__(self, seq: int, key: int, token: Any, nbytes: int) -> None:
        self.seq = seq
        self.key = key
        self.token = token
        self.nbytes = nbytes
        self.thinned = False
        self.cached: Optional["TimeWindowSnapshot"] = None


class _QMEntry:
    __slots__ = ("token", "nbytes", "cached")

    def __init__(self, token: Any, nbytes: int) -> None:
        self.token = token
        self.nbytes = nbytes
        self.cached: Optional[QueueMonitorSnapshot] = None


class SnapshotView(Sequence[Any]):
    """Read-only sequence over a store's snapshots.

    This is the sanctioned way to *read* stored snapshots from outside
    ``core/analysis.py``: it behaves like the historic list (indexing,
    slicing, iteration, ``==`` against lists) but exposes no mutators,
    so every write is forced through the store's version-bumping API.
    """

    __slots__ = ("_entries", "_store", "_kind")

    def __init__(self, entries: List[Any], store: "SnapshotStore", kind: str):
        self._entries = entries
        self._store = store
        self._kind = kind

    def _decode(self, entry: Any) -> Any:
        if self._kind == "tw":
            return self._store._decode_entry_tw(entry)
        return self._store._decode_entry_qm(entry)

    def __len__(self) -> int:
        return len(self._entries)

    @overload
    def __getitem__(self, index: int) -> Any: ...

    @overload
    def __getitem__(self, index: slice) -> List[Any]: ...

    def __getitem__(self, index: Union[int, slice]) -> Any:
        if isinstance(index, slice):
            return [self._decode(e) for e in self._entries[index]]
        return self._decode(self._entries[index])

    def __iter__(self) -> Iterator[Any]:
        for entry in self._entries:
            yield self._decode(entry)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, SnapshotView)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"SnapshotView({list(self)!r})"


class SnapshotStore(ABC):
    """Abstract snapshot store: retention, versioning, record/replay glue.

    Subclasses implement the storage primitives (``_encode_tw`` /
    ``_decode_tw`` / ``_encode_qm`` / ``_decode_qm`` and optionally the
    eviction hooks); the base class implements the behavioural contract
    shared by every backend.
    """

    backend: ClassVar[str] = "abstract"

    def __init__(self, retention: Optional[RetentionPolicy] = None) -> None:
        self.retention = retention if retention is not None else RetentionPolicy()
        self._tw_entries: List[_TWEntry] = []
        self._tw_keys: List[int] = []
        self._qm_entries: List[_QMEntry] = []
        self._seq_index: Dict[int, _TWEntry] = {}
        self._version = 0
        self._next_seq = 0
        self._bound = False
        self.meta: Dict[str, Any] = {}
        self._recorder: Optional["Recorder"] = None
        #: events consumed when this store was built by replay (0 = live).
        self.replay_position = 0
        self.tw_added = 0
        self.qm_added = 0
        self.tw_evictions = 0
        self.qm_evictions = 0
        self.tw_thinned = 0
        self.quarantine_replacements = 0
        self.tw_bytes = 0
        self.qm_bytes = 0
        self._tw_view = SnapshotView(self._tw_entries, self, "tw")
        self._qm_view = SnapshotView(self._qm_entries, self, "qm")

    # -- backend primitives ------------------------------------------------

    @abstractmethod
    def _encode_tw(self, snapshot: "TimeWindowSnapshot") -> Any:
        """Store a time-window snapshot; return its storage token."""

    @abstractmethod
    def _decode_tw(self, token: Any) -> "TimeWindowSnapshot":
        """Materialise the snapshot behind a token."""

    @abstractmethod
    def _encode_qm(self, snapshot: QueueMonitorSnapshot, bounded: bool) -> Any:
        """Store a queue-monitor snapshot; return its storage token."""

    @abstractmethod
    def _decode_qm(self, token: Any) -> QueueMonitorSnapshot:
        """Materialise the queue-monitor snapshot behind a token."""

    @abstractmethod
    def _nbytes(self, token: Any) -> int:
        """Stored size of a token, for the per-tier byte gauges."""

    def _on_bind(self) -> None:
        """Hook: the run metadata just became known."""

    def close(self) -> None:
        """Release backend resources (files, maps).  Idempotent."""

    # -- decode caching ----------------------------------------------------

    def _decode_entry_tw(self, entry: _TWEntry) -> "TimeWindowSnapshot":
        # The decoded object is cached on the entry so repeated reads see
        # one stable object: the compiled plan memoises per-snapshot
        # columnar state on the snapshot itself, and that memo (hence the
        # plan-cache hit pattern) must behave identically across backends.
        snapshot = entry.cached
        if snapshot is None:
            snapshot = self._decode_tw(entry.token)
            if entry.thinned:
                # Stores ingested from disk decode lazily; retention
                # thinning recorded on the entry applies at first touch.
                snapshot.windows = self.retention.thin_windows(snapshot.windows)
            snapshot._store_seq = entry.seq  # type: ignore[attr-defined]
            entry.cached = snapshot
        return snapshot

    def _decode_entry_qm(self, entry: _QMEntry) -> QueueMonitorSnapshot:
        snapshot = entry.cached
        if snapshot is None:
            snapshot = self._decode_qm(entry.token)
            entry.cached = snapshot
        return snapshot

    # -- the mutating API (every path that can change a query answer) ------

    @property
    def version(self) -> int:
        """The plan-cache invalidation counter.  Monotonic."""
        return self._version

    def bump_version(self) -> None:
        """Force plan-cache invalidation without a content change.

        For harnesses (benchmarks) that need a cold plan rebuild; never
        called by the ingest paths, which bump through :meth:`add_tw` /
        :meth:`replace_windows`.
        """
        self._version += 1

    def add_tw(self, snapshot: "TimeWindowSnapshot") -> None:
        """Ingest one time-window snapshot (a poll or an on-demand read).

        Keeps the store ascending by read time at insert (appends are
        the common case), applies the retention cap and thinning, and
        bumps the version exactly once.
        """
        self._ensure_bound()
        seq = self._next_seq
        self._next_seq += 1
        snapshot._store_seq = seq  # type: ignore[attr-defined]
        if self._recorder is not None:
            self._recorder.record_tw(snapshot)
        token = self._encode_tw(snapshot)
        entry = _TWEntry(seq, snapshot.read_time_ns, token, self._nbytes(token))
        entry.cached = snapshot
        self._insert_tw_entry(entry)

    def _insert_tw_entry(self, entry: _TWEntry) -> None:
        """Ordering, retention, and versioning for one time-window entry.

        Shared by the live ingest path (:meth:`add_tw`) and backends that
        rebuild entries from a recorded stream, so both produce the same
        version/eviction/thinning history.
        """
        entries, keys = self._tw_entries, self._tw_keys
        if entries and entry.key < keys[-1]:
            i = bisect.bisect_right(keys, entry.key)
            entries.insert(i, entry)
            keys.insert(i, entry.key)
        else:
            entries.append(entry)
            keys.append(entry.key)
        self._seq_index[entry.seq] = entry
        self.tw_added += 1
        self.tw_bytes += entry.nbytes
        if len(entries) > self.retention.max_snapshots:
            self._evict_tw(0)
        self._apply_thinning()
        self._version += 1

    def add_qm(self, snapshot: QueueMonitorSnapshot, *, bounded: bool = True) -> None:
        """Ingest one queue-monitor snapshot.

        ``bounded`` applies the retention cap (periodic polls); the
        on-demand read path appends unbounded, matching the historic
        behaviour.  Queue-monitor ingest does not bump the version: the
        compiled plan only covers time-window state.
        """
        self._ensure_bound()
        if self._recorder is not None:
            self._recorder.record_qm(snapshot, bounded)
        token = self._encode_qm(snapshot, bounded)
        entry = _QMEntry(token, self._nbytes(token))
        entry.cached = snapshot
        self._insert_qm_entry(entry, bounded)

    def _insert_qm_entry(self, entry: _QMEntry, bounded: bool) -> None:
        self._qm_entries.append(entry)
        self.qm_added += 1
        self.qm_bytes += entry.nbytes
        if bounded and len(self._qm_entries) > self.retention.effective_qm_max:
            old = self._qm_entries.pop(0)
            self.qm_bytes -= old.nbytes
            self.qm_evictions += 1

    def replace_windows(
        self, snapshot: "TimeWindowSnapshot", windows: List[FilteredWindow]
    ) -> None:
        """Replace a snapshot's windows (fault quarantine).

        Mutates the snapshot in place, drops its per-snapshot columnar
        memo, re-encodes the stored copy when the snapshot is (still)
        stored, and bumps the version so the compiled-plan cache rebuilds
        without the quarantined cells.
        """
        snapshot.windows = windows
        if hasattr(snapshot, "_columnar_cache"):
            del snapshot._columnar_cache  # type: ignore[attr-defined]
        seq = getattr(snapshot, "_store_seq", -1)
        entry = self._seq_index.get(seq)
        if entry is not None:
            entry.cached = snapshot
            self._note_replaced(entry, snapshot)
        self.quarantine_replacements += 1
        if self._recorder is not None:
            self._recorder.record_replace(
                seq if entry is not None else -1, snapshot
            )
        self._version += 1

    # -- retention ---------------------------------------------------------

    def _evict_tw(self, index: int) -> None:
        old = self._tw_entries.pop(index)
        self._tw_keys.pop(index)
        self._seq_index.pop(old.seq, None)
        self.tw_bytes -= old.nbytes
        self.tw_evictions += 1

    def _apply_thinning(self) -> None:
        horizon = self.retention.full_window_horizon
        if horizon is None:
            return
        limit = len(self._tw_entries) - horizon
        for entry in self._tw_entries[:limit]:
            if entry.thinned:
                continue
            snapshot = entry.cached
            if snapshot is not None:
                thinned = self.retention.thin_windows(snapshot.windows)
                if len(thinned) != len(snapshot.windows):
                    snapshot.windows = thinned
                    if hasattr(snapshot, "_columnar_cache"):
                        del snapshot._columnar_cache  # type: ignore[attr-defined]
                    self._note_thinned(entry, snapshot)
            entry.thinned = True
            self.tw_thinned += 1

    def _note_thinned(self, entry: _TWEntry, snapshot: "TimeWindowSnapshot") -> None:
        """Hook: a stored snapshot's windows were thinned in place."""

    def _note_replaced(
        self, entry: _TWEntry, snapshot: "TimeWindowSnapshot"
    ) -> None:
        """Hook: a stored snapshot's windows were replaced (quarantine)."""

    # -- binding and recording ---------------------------------------------

    def _ensure_bound(self) -> None:
        if not self._bound:
            self.bind({})

    def bind(self, meta: Dict[str, Any]) -> None:
        """Attach the run metadata (config fields, flags, retention).

        The first bind wins; later binds are no-ops so a replayed store
        (bound from the recording's header) can be handed to a fresh
        ``AnalysisProgram`` without losing the recorded metadata.
        """
        if self._bound:
            return
        self.meta = dict(meta)
        self._bound = True
        self._on_bind()
        if self._recorder is not None:
            self._recorder.write_header(self.meta)

    def attach_recorder(self, recorder: "Recorder") -> None:
        """Mirror every future mutation into ``recorder``'s file."""
        if self._recorder is not None:
            raise StoreError("a recorder is already attached to this store")
        if self.tw_added or self.qm_added:
            raise StoreError(
                "cannot attach a recorder after snapshots were stored"
            )
        self._recorder = recorder
        if self._bound:
            recorder.write_header(self.meta)

    @property
    def recording(self) -> bool:
        return self._recorder is not None

    # -- read access -------------------------------------------------------

    def tw_view(self) -> SnapshotView:
        """Read-only live view of the time-window snapshots (ascending)."""
        return self._tw_view

    def qm_view(self) -> SnapshotView:
        """Read-only live view of the queue-monitor snapshots."""
        return self._qm_view

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Counters and gauges for the ``pq_store_*`` metric family."""
        out: Dict[str, Any] = {"backend": self.backend}
        out.update(self.deterministic_stats())
        out.update(
            tw_bytes=self.tw_bytes,
            qm_bytes=self.qm_bytes,
            bytes_total=self.tw_bytes + self.qm_bytes,
            recording=int(self.recording),
            replay_position=self.replay_position,
        )
        return out

    def deterministic_stats(self) -> Dict[str, int]:
        """The backend-independent counters (the RunReport deterministic
        "store" section): identical between a live run and its replay,
        whatever tier either side used."""
        return {
            "version": self._version,
            "tw_snapshots": len(self._tw_entries),
            "qm_snapshots": len(self._qm_entries),
            "tw_added": self.tw_added,
            "qm_added": self.qm_added,
            "tw_evictions": self.tw_evictions,
            "qm_evictions": self.qm_evictions,
            "tw_thinned": self.tw_thinned,
            "quarantine_replacements": self.quarantine_replacements,
        }
