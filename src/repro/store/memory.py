"""The in-process snapshot store (the default tier).

Bit-identical to the historic bare lists inside ``AnalysisProgram``:
tokens *are* the snapshot objects, so nothing is copied, serialized, or
re-materialised — adds are an O(1) append (or an O(log n) bisect for the
rare out-of-order read), and reads hand back the very objects the poller
stored.  The byte gauges are a deterministic arithmetic estimate
mirroring the binary format's sizes, so ``pq_store_bytes`` is meaningful
without ever serializing (the zero-overhead-when-off invariant).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.queuemonitor import QueueMonitorSnapshot
from repro.store.base import SnapshotStore, _TWEntry

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot


def _tw_estimate(snapshot: "TimeWindowSnapshot") -> int:
    total = 32  # snapshot header equivalent
    for fw in snapshot.windows:
        total += 24 + 12 * fw.cell_count  # window head + i64 tts + i32 idx
    return total


def _qm_estimate(snapshot: QueueMonitorSnapshot) -> int:
    # header + i64 inc/dec sequence halves + i32 flow indices
    return 32 + 8 * (len(snapshot.inc_seq) + len(snapshot.dec_seq)) + 4 * len(
        snapshot.inc_flow
    )


class MemoryStore(SnapshotStore):
    """Hot tier: snapshots held as live Python objects."""

    backend = "memory"

    def _encode_tw(self, snapshot: "TimeWindowSnapshot") -> Any:
        return snapshot

    def _decode_tw(self, token: Any) -> "TimeWindowSnapshot":
        return token  # type: ignore[no-any-return]

    def _encode_qm(self, snapshot: QueueMonitorSnapshot, bounded: bool) -> Any:
        return snapshot

    def _decode_qm(self, token: Any) -> QueueMonitorSnapshot:
        return token  # type: ignore[no-any-return]

    def _nbytes(self, token: Any) -> int:
        if isinstance(token, QueueMonitorSnapshot):
            return _qm_estimate(token)
        return _tw_estimate(token)

    def _note_thinned(self, entry: _TWEntry, snapshot: "TimeWindowSnapshot") -> None:
        self._update_nbytes(entry, snapshot)

    def _note_replaced(
        self, entry: _TWEntry, snapshot: "TimeWindowSnapshot"
    ) -> None:
        self._update_nbytes(entry, snapshot)

    def _update_nbytes(self, entry: _TWEntry, snapshot: "TimeWindowSnapshot") -> None:
        nbytes = _tw_estimate(snapshot)
        self.tw_bytes += nbytes - entry.nbytes
        entry.nbytes = nbytes
