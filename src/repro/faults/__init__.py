"""``repro.faults`` — deterministic fault injection + the resilient read path.

The paper's control plane polls switch registers *while the data plane
keeps writing* (§6); real deployments add missed poll deadlines, RPC
failures, torn or bit-corrupted register reads, and queue-monitor
sequence anomalies on top.  This package makes those hazards injectable
(seeded, reproducible, off by default) and makes the control plane
survive them:

* :class:`FaultPlan` / :data:`PROFILES` — seedable scenario
  descriptions (``none``, ``flaky-rpc``, ``torn-reads``,
  ``lossy-control``, ``qm-regression``, ``chaos``).
* :class:`FaultInjector` — draws fault outcomes from a seeded RNG and
  tampers register reads; keeps the authoritative injected-fault tally.
* :class:`ResilientPoller` / :class:`RetryPolicy` — bounded retry with
  exponential backoff, snapshot validation, quarantine-instead-of-crash,
  and deadline-aware catch-up for delayed polls.
* :class:`FaultLog` / :class:`CoverageReport` / :class:`QuarantineRecord`
  — what was lost, what was caught, and what a given query could not
  see (the ``degraded`` surface on query results).

Attach a plan with ``PrintQueuePort(..., faults="chaos")`` (or a
``FaultPlan`` / ``FaultInjector``), ``simulate_workload(...,
faults=...)``, or ``repro run --faults chaos``.  With ``faults=None``
(the default) none of this code runs and every output is bit-identical
to the fault-free build — the zero-overhead invariant the test suite
asserts.
"""

from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import PROFILES, FaultPlan, profile, profile_names
from repro.faults.resilience import (
    CoverageReport,
    FaultLog,
    QuarantineRecord,
    ResilientPoller,
    RetryPolicy,
    validate_filtered_windows,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "ResilientPoller",
    "RetryPolicy",
    "FaultLog",
    "CoverageReport",
    "QuarantineRecord",
    "PROFILES",
    "profile",
    "profile_names",
    "as_injector",
    "validate_filtered_windows",
]
