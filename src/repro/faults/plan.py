"""Fault plans: deterministic, seedable descriptions of control-plane loss.

A :class:`FaultPlan` is a frozen bundle of per-event fault probabilities
plus the RNG seed that makes a run reproducible: the same plan driven
over the same event stream injects the same faults at the same polls,
whichever ingest engine replays it.  Plans say *what can go wrong*; the
:class:`~repro.faults.injector.FaultInjector` draws the outcomes and the
:class:`~repro.faults.resilience.ResilientPoller` survives them.

Each knob maps to a hazard of the paper's control-plane read path (§6):

``poll_drop_rate`` / ``poll_delay_rate``
    A periodic poll misses its deadline.  A *dropped* poll never reads
    the frozen bank before the next flip overwrites it — that set
    period's data is lost.  A *delayed* poll fires late but still reads
    its bank (deadline-aware catch-up): nothing is lost, the snapshot is
    just stale by the slip.
``torn_read_rate``
    A register read races the data plane and returns a slice of cells
    stale from the previous window cycle — exactly the hazard
    Algorithm 3's cycle-ID filter exists for, here pushed *past* what
    the filter can reconcile.
``corrupt_cell_rate``
    Bit-corrupted cells: TTS values whose cycle bits are impossible for
    the window's reference point.
``rpc_failure_rate``
    The whole read RPC fails (PCIe/driver hiccup); retryable.
``qm_drop_rate`` / ``qm_seq_regression_rate``
    A standalone queue-monitor poll is lost, or returns sequence
    numbers that regress below what the control plane already saw.

All rates are per-opportunity probabilities in ``[0, 1]``; mutually
exclusive outcomes (drop vs delay, torn vs corrupt vs RPC failure) must
sum to at most 1.  A plan with every rate 0 injects nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from repro.errors import ConfigError

__all__ = ["FaultPlan", "PROFILES", "profile", "profile_names"]


@dataclass(frozen=True)
class FaultPlan:
    """One seeded scenario of control-plane faults (all hooks default off)."""

    name: str = "custom"
    seed: int = 0
    #: periodic (full) polls
    poll_drop_rate: float = 0.0
    poll_delay_rate: float = 0.0
    #: how far a delayed poll slips past its deadline; ``None`` means
    #: half a set period, and slips are clamped below one set period so
    #: a late poll never collides with the next one.
    poll_delay_ns: Optional[int] = None
    #: register-read attempts (full polls and on-demand reads)
    torn_read_rate: float = 0.0
    corrupt_cell_rate: float = 0.0
    rpc_failure_rate: float = 0.0
    #: most cells a single torn/corrupt read damages
    max_affected_cells: int = 8
    #: standalone queue-monitor polls
    qm_drop_rate: float = 0.0
    qm_seq_regression_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigError(
                        f"{f.name} must be a probability in [0, 1], got {value}"
                    )
        if self.poll_drop_rate + self.poll_delay_rate > 1.0:
            raise ConfigError("poll_drop_rate + poll_delay_rate exceeds 1")
        read = self.torn_read_rate + self.corrupt_cell_rate + self.rpc_failure_rate
        if read > 1.0:
            raise ConfigError("torn + corrupt + rpc failure rates exceed 1")
        if self.qm_drop_rate + self.qm_seq_regression_rate > 1.0:
            raise ConfigError("qm_drop_rate + qm_seq_regression_rate exceeds 1")
        if self.max_affected_cells < 1:
            raise ConfigError(
                f"max_affected_cells must be >= 1, got {self.max_affected_cells}"
            )
        if self.poll_delay_ns is not None and self.poll_delay_ns < 1:
            raise ConfigError("non-positive poll_delay_ns")

    @property
    def enabled(self) -> bool:
        """Whether any fault can actually fire under this plan."""
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.endswith("_rate")
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same scenario re-seeded (per-port injectors of a deployment)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One-line human summary of the non-zero knobs."""
        knobs = [
            f"{f.name.replace('_rate', '')}={getattr(self, f.name):g}"
            for f in fields(self)
            if f.name.endswith("_rate") and getattr(self, f.name) > 0.0
        ]
        return f"{self.name}: " + (", ".join(knobs) if knobs else "no faults")


#: Built-in scenario profiles (``repro faults list`` describes them).
PROFILES: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "flaky-rpc": FaultPlan(
        name="flaky-rpc",
        rpc_failure_rate=0.25,
    ),
    "torn-reads": FaultPlan(
        name="torn-reads",
        torn_read_rate=0.2,
        corrupt_cell_rate=0.05,
    ),
    "lossy-control": FaultPlan(
        name="lossy-control",
        poll_drop_rate=0.15,
        poll_delay_rate=0.15,
        qm_drop_rate=0.1,
    ),
    "qm-regression": FaultPlan(
        name="qm-regression",
        qm_seq_regression_rate=0.3,
    ),
    "chaos": FaultPlan(
        name="chaos",
        poll_drop_rate=0.1,
        poll_delay_rate=0.1,
        torn_read_rate=0.15,
        corrupt_cell_rate=0.1,
        rpc_failure_rate=0.15,
        qm_drop_rate=0.1,
        qm_seq_regression_rate=0.1,
    ),
}


def profile(name: str) -> FaultPlan:
    """Look up a built-in profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; choose from {profile_names()}"
        ) from None


def profile_names() -> list:
    """The built-in profile names, sorted (CLI choices / error messages)."""
    return sorted(PROFILES)
