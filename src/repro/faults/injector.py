"""The fault injector: seeded outcome draws + register-read tampering.

One injector owns one ``random.Random`` seeded from its plan, so a run's
fault sequence is a pure function of (plan, event stream).  Draws happen
only at control-plane decision points — poll instants and read attempts —
which both ingest engines reach in the same order, so the scalar and
batched paths inject identical faults (the equivalence suite asserts it).

The injector also keeps the authoritative *injected* tally: every fault
it actually materialises increments ``injected[kind]`` (and the
``pq_faults_injected_total`` counter when a metrics registry is
attached).  The resilient poller's detection/quarantine counts are
recorded separately in its :class:`~repro.faults.resilience.FaultLog`,
so reports can reconcile "what was injected" against "what was caught".
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.filtering import FilteredWindow
from repro.faults.plan import FaultPlan
from repro.obs.metrics import Metrics

if TYPE_CHECKING:
    from repro.core.queuemonitor import QueueMonitorSnapshot

__all__ = ["FaultInjector", "as_injector"]

#: Outcome tags for poll / read-attempt draws.
OK = "ok"
DROP = "drop"
DELAY = "delay"
RPC_ERROR = "rpc_error"
TORN = "torn"
CORRUPT = "corrupt"
REGRESS = "regress"


class FaultInjector:
    """Draw fault outcomes and tamper register reads, deterministically."""

    def __init__(self, plan: FaultPlan, metrics: Optional[Metrics] = None) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.metrics = metrics
        #: authoritative injected-fault tally, by kind (always on).
        self.injected: Dict[str, int] = {}

    def _count(self, kind: str, n: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + n
        if self.metrics is not None:
            self.metrics.counter("pq_faults_injected_total", kind=kind).inc(n)

    # -- outcome draws (one rng draw per opportunity) ----------------------

    def poll_outcome(self) -> str:
        """Fate of one due periodic poll: ok / drop / delay."""
        plan = self.plan
        if plan.poll_drop_rate == 0.0 and plan.poll_delay_rate == 0.0:
            return OK
        u = self.rng.random()
        if u < plan.poll_drop_rate:
            self._count("polls_dropped")
            return DROP
        if u < plan.poll_drop_rate + plan.poll_delay_rate:
            self._count("polls_delayed")
            return DELAY
        return OK

    def read_attempt_outcome(self) -> str:
        """Fate of one register-read attempt: ok / rpc_error / torn / corrupt."""
        plan = self.plan
        if (
            plan.rpc_failure_rate == 0.0
            and plan.torn_read_rate == 0.0
            and plan.corrupt_cell_rate == 0.0
        ):
            return OK
        u = self.rng.random()
        if u < plan.rpc_failure_rate:
            self._count("rpc_failures")
            return RPC_ERROR
        if u < plan.rpc_failure_rate + plan.torn_read_rate:
            return TORN
        if u < (
            plan.rpc_failure_rate + plan.torn_read_rate + plan.corrupt_cell_rate
        ):
            return CORRUPT
        return OK

    def qm_poll_outcome(self) -> str:
        """Fate of one standalone queue-monitor poll: ok / drop / regress."""
        plan = self.plan
        if plan.qm_drop_rate == 0.0 and plan.qm_seq_regression_rate == 0.0:
            return OK
        u = self.rng.random()
        if u < plan.qm_drop_rate:
            self._count("qm_polls_dropped")
            return DROP
        if u < plan.qm_drop_rate + plan.qm_seq_regression_rate:
            return REGRESS
        return OK

    # -- read tampering ----------------------------------------------------

    def tamper_filtered(
        self, windows: List[FilteredWindow], k: int, kind: str
    ) -> Tuple[List[FilteredWindow], int]:
        """Damage one window of a filtered read; returns (copy, cells hit).

        ``kind == "torn"`` shifts a contiguous slice of cells one full
        window period into the past (stale cells from the previous
        cycle — a read that raced the ring-buffer wrap).  ``"corrupt"``
        rewrites the slice's TTS beyond the window's reference point
        (impossible cycle bits).  Both land outside the
        ``(reference - 2^k, reference]`` range Algorithm 3 guarantees,
        so snapshot validation detects every tampered cell.  The input
        windows are never mutated — retries re-tamper from pristine
        copies.  An all-empty read has nothing to damage; the fault is
        a no-op and is *not* counted as injected.
        """
        candidates = [i for i, fw in enumerate(windows) if fw.cells]
        if not candidates:
            return windows, 0
        wi = candidates[self.rng.randrange(len(candidates))]
        fw = windows[wi]
        n = len(fw.cells)
        m = min(n, 1 + self.rng.randrange(self.plan.max_affected_cells))
        start = self.rng.randrange(n - m + 1)
        tts = (
            fw.tts_array.copy()
            if fw.tts_array is not None
            else np.array([c[0] for c in fw.cells], dtype=np.int64)
        )
        if kind == TORN:
            tts[start : start + m] -= np.int64(1 << k)
        else:
            offset = 1 + self.rng.randrange(1 << k)
            tts[start : start + m] = np.int64(fw.reference_tts + offset)
        flows = (
            list(fw.cell_flows)
            if fw.cell_flows is not None
            else [c[1] for c in fw.cells]
        )
        tampered = FilteredWindow(
            fw.window_index,
            fw.shift,
            list(zip(tts.tolist(), flows)),
            fw.reference_tts,
            tts_array=tts,
            cell_flows=flows,
        )
        out = list(windows)
        out[wi] = tampered
        self._count("reads_torn" if kind == TORN else "reads_corrupt")
        self._count("cells_tampered", m)
        return out, m

    def regress_qm(self, snapshot: "QueueMonitorSnapshot", floor_seq: int) -> bool:
        """Regress a queue-monitor snapshot's sequence numbers.

        Rewrites every set entry so the snapshot's maximum sequence
        number falls *below* ``floor_seq`` (the largest the control
        plane has already accepted) — the anomaly the monotonicity
        validator exists for.  Returns False (fault not injected, not
        counted) when there is no prior floor to regress below or the
        snapshot holds no entries.
        """
        from repro.core.queuemonitor import _UNSET

        seqs = [s for s in snapshot.inc_seq if s != _UNSET]
        seqs += [s for s in snapshot.dec_seq if s != _UNSET]
        if not seqs or floor_seq <= 0:
            return False
        delta = max(seqs) - (floor_seq - 1)
        if delta <= 0:
            delta = 1 + self.rng.randrange(max(seqs))
        snapshot.inc_seq = [
            s if s == _UNSET else max(_UNSET, s - delta) for s in snapshot.inc_seq
        ]
        snapshot.dec_seq = [
            s if s == _UNSET else max(_UNSET, s - delta) for s in snapshot.dec_seq
        ]
        self._count("qm_seq_regressions")
        return True


def as_injector(
    faults: Union[str, FaultPlan, "FaultInjector"],
    metrics: Optional[Metrics] = None,
) -> FaultInjector:
    """Coerce a profile name / plan / injector into a ``FaultInjector``."""
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults, metrics=metrics)
    if isinstance(faults, str):
        from repro.faults.plan import profile

        return FaultInjector(profile(faults), metrics=metrics)
    raise TypeError(
        f"faults must be a profile name, FaultPlan, or FaultInjector; "
        f"got {type(faults).__name__}"
    )
