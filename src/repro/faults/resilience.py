"""The resilient control-plane read path: retry, validate, quarantine.

:class:`ResilientPoller` replaces a port's perfect-channel poll loop when
fault injection is attached.  Every control-plane read goes through the
same discipline:

1. **Bounded retry with exponential backoff** — failed RPCs and reads
   that fail validation are retried up to ``RetryPolicy.max_attempts``
   times; backoffs are modelled nanoseconds recorded in the log and the
   ``pq_fault_retry_backoff_ns`` histogram (they do not advance
   simulated time — the poll's read instant stays put).
2. **Snapshot validation** — every read is checked against the
   invariants Algorithm 3 guarantees: retained cell TTS values must lie
   in ``(reference − 2^k, reference]`` (cycle-ID consistency), and
   queue-monitor sequence numbers must never regress below what the
   control plane already accepted.
3. **Quarantine instead of crash** — cells that still fail validation
   after the retry budget are removed from the snapshot (recorded as
   :class:`QuarantineRecord`), so a corrupted read yields an honest
   undercount plus a ``degraded`` flag, never a wrong attribution or an
   exception.  Quarantining a *stored* snapshot goes through
   ``AnalysisProgram.quarantine_snapshot_windows`` so compiled-plan
   caches invalidate.
4. **Deadline-aware catch-up** — a delayed poll fires late but still
   reads its bank (nothing lost); a dropped poll's set period is gone
   and is recorded as a lost range so queries over it say so.

Everything here is reached only when a port is built with ``faults=``;
without it the port runs the original byte-for-byte poll path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.filtering import FilteredWindow
from repro.errors import (
    ConfigError,
    DataPlaneReadError,
    FaultInjected,
    RetryExhausted,
    SnapshotValidationError,
)
from repro.faults.injector import DELAY, DROP, OK, REGRESS, RPC_ERROR, FaultInjector
from repro.obs.metrics import Metrics

if TYPE_CHECKING:
    from repro.core.analysis import TimeWindowSnapshot
    from repro.core.printqueue import PrintQueuePort
    from repro.core.queuemonitor import QueueMonitorSnapshot

__all__ = [
    "RetryPolicy",
    "QuarantineRecord",
    "CoverageReport",
    "FaultLog",
    "ResilientPoller",
    "validate_filtered_windows",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for control-plane reads."""

    max_attempts: int = 4
    base_backoff_ns: int = 1_000
    multiplier: float = 2.0
    max_backoff_ns: int = 1_000_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_ns < 0:
            raise ConfigError("negative base_backoff_ns")
        if self.multiplier < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")

    def backoff_ns(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ConfigError(f"attempt is 1-based, got {attempt}")
        backoff = self.base_backoff_ns * self.multiplier ** (attempt - 1)
        return min(self.max_backoff_ns, int(backoff))

    def schedule(self) -> Tuple[int, ...]:
        """The full backoff schedule (one entry per possible retry)."""
        return tuple(
            self.backoff_ns(a) for a in range(1, self.max_attempts)
        )


@dataclass(frozen=True)
class QuarantineRecord:
    """Cells (or a whole monitor snapshot) removed by validation."""

    read_time_ns: int
    source: str  # "periodic" | "data-plane" | "queue-monitor"
    kind: str  # "torn" | "corrupt" | "rpc" | "qm-regression"
    window_index: Optional[int] = None
    cells: int = 0
    #: the [start, end) span the damaged window could have spoken for
    #: (None when unknown, e.g. an empty window or a monitor snapshot).
    span_ns: Optional[Tuple[int, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "read_time_ns": self.read_time_ns,
            "source": self.source,
            "kind": self.kind,
            "window_index": self.window_index,
            "cells": self.cells,
            "span_ns": list(self.span_ns) if self.span_ns else None,
        }


@dataclass(frozen=True)
class CoverageReport:
    """What a degraded query could *not* see.

    Attached to :class:`~repro.core.printqueue.QueryResult` when fault
    injection is active: ``lost_ns`` are the parts of the query interval
    whose polls were lost outright, ``quarantined`` the validation
    quarantines whose spans overlap it, and ``qm_lost_ns`` the lost
    queue-monitor poll instants that were closer to the query point than
    the snapshot actually used.
    """

    interval: Optional[Tuple[int, int]] = None
    lost_ns: Tuple[Tuple[int, int], ...] = ()
    quarantined: Tuple[QuarantineRecord, ...] = ()
    qm_lost_ns: Tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.lost_ns or self.quarantined or self.qm_lost_ns)

    @property
    def lost_total_ns(self) -> int:
        return sum(end - start for start, end in self.lost_ns)

    def describe(self) -> str:
        if not self.degraded:
            return "full coverage"
        parts = []
        if self.lost_ns:
            parts.append(
                f"{len(self.lost_ns)} lost range(s), {self.lost_total_ns} ns"
            )
        if self.quarantined:
            cells = sum(r.cells for r in self.quarantined)
            parts.append(
                f"{len(self.quarantined)} quarantine(s), {cells} cell(s)"
            )
        if self.qm_lost_ns:
            parts.append(f"{len(self.qm_lost_ns)} lost monitor poll(s)")
        return "degraded: " + "; ".join(parts)


def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return min(a[1], b[1]) > max(a[0], b[0])


@dataclass
class FaultLog:
    """What the resilient read path observed, detected, and recovered.

    The injector's ``injected`` tally says what went wrong; this log
    says what the control plane did about it.  Both are deterministic
    functions of (plan, event stream), identical across ingest engines,
    and exported under the RunReport ``faults`` section.
    """

    lost_ranges: List[Tuple[int, int]] = field(default_factory=list)
    quarantines: List[QuarantineRecord] = field(default_factory=list)
    qm_lost_ns: List[int] = field(default_factory=list)
    lost_polls: int = 0
    delayed_polls: int = 0
    retries: int = 0
    retry_backoff_ns_total: int = 0
    retry_exhausted: int = 0
    reads_recovered: int = 0
    qm_quarantined: int = 0
    dp_read_failures: int = 0

    @property
    def quarantined_cells(self) -> int:
        return sum(r.cells for r in self.quarantines)

    def coverage_for(self, start_ns: int, end_ns: int) -> CoverageReport:
        """Degradation report for a time-window query over [start, end)."""
        lost = tuple(
            (max(s, start_ns), min(e, end_ns))
            for s, e in self.lost_ranges
            if _overlaps((s, e), (start_ns, end_ns))
        )
        quarantined = tuple(
            r
            for r in self.quarantines
            if r.span_ns is not None and _overlaps(r.span_ns, (start_ns, end_ns))
        )
        return CoverageReport(
            interval=(start_ns, end_ns), lost_ns=lost, quarantined=quarantined
        )

    def dp_coverage_for(
        self, read_time_ns: int, start_ns: int, end_ns: int
    ) -> CoverageReport:
        """Degradation report for one accepted on-demand read.

        An on-demand query answers from exactly one fresh register read,
        so only quarantines from *that* read (matched by read time and
        source) can degrade it — historical lost polls are irrelevant.
        """
        quarantined = tuple(
            r
            for r in self.quarantines
            if r.source == "data-plane"
            and r.read_time_ns == read_time_ns
            and (
                r.span_ns is None
                or _overlaps(r.span_ns, (start_ns, end_ns))
            )
        )
        return CoverageReport(
            interval=(start_ns, end_ns), quarantined=quarantined
        )

    def qm_coverage_for(self, at_ns: int, used_time_ns: int) -> CoverageReport:
        """Degradation report for a queue-monitor query at ``at_ns``.

        The query answers from the snapshot nearest the query point, so
        it is degraded exactly when a *lost* monitor poll was strictly
        nearer than the snapshot actually used.
        """
        used_dist = abs(used_time_ns - at_ns)
        nearer = tuple(
            t for t in self.qm_lost_ns if abs(t - at_ns) < used_dist
        )
        return CoverageReport(interval=(at_ns, at_ns + 1), qm_lost_ns=nearer)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lost_polls": self.lost_polls,
            "delayed_polls": self.delayed_polls,
            "lost_ranges": [list(r) for r in self.lost_ranges],
            "lost_ns_total": sum(e - s for s, e in self.lost_ranges),
            "retries": self.retries,
            "retry_backoff_ns_total": self.retry_backoff_ns_total,
            "retry_exhausted": self.retry_exhausted,
            "reads_recovered": self.reads_recovered,
            "quarantined_windows": len(
                [r for r in self.quarantines if r.window_index is not None]
            ),
            "quarantined_cells": self.quarantined_cells,
            "quarantines": [r.to_dict() for r in self.quarantines],
            "qm_snapshots_quarantined": self.qm_quarantined,
            "qm_polls_lost": len(self.qm_lost_ns),
            "dp_read_failures": self.dp_read_failures,
        }


def validate_filtered_windows(
    windows: List[FilteredWindow], k: int, strict: bool = False
) -> Tuple[List[FilteredWindow], List[Tuple[int, int]]]:
    """Check Algorithm 3's cycle-ID/TTS invariant; quarantine violators.

    Every retained cell of window ``i`` must carry a TTS in
    ``(reference − 2^k, reference]``: anything below is a stale cell the
    filter should have removed (a torn read), anything above carries
    cycle bits from the future (corruption).  Returns the cleaned
    windows (violating cells removed, everything else untouched) and a
    ``(window_index, bad_cell_count)`` list; an empty list means the
    read validated and the input is returned as-is.  With ``strict`` a
    violation raises :class:`~repro.errors.SnapshotValidationError`
    instead of quarantining.
    """
    violations: List[Tuple[int, int]] = []
    cleaned = list(windows)
    for i, fw in enumerate(windows):
        if fw.reference_tts is None or not fw.cells:
            continue
        tts = (
            fw.tts_array
            if fw.tts_array is not None
            else np.array([c[0] for c in fw.cells], dtype=np.int64)
        )
        ref = fw.reference_tts
        bad = (tts <= ref - (1 << k)) | (tts > ref)
        n_bad = int(np.count_nonzero(bad))
        if n_bad == 0:
            continue
        keep = ~bad
        flows = (
            fw.cell_flows
            if fw.cell_flows is not None
            else [c[1] for c in fw.cells]
        )
        kept_tts = tts[keep]
        kept_flows = [f for f, ok in zip(flows, keep.tolist()) if ok]
        cleaned[i] = FilteredWindow(
            fw.window_index,
            fw.shift,
            list(zip(kept_tts.tolist(), kept_flows)),
            fw.reference_tts,
            tts_array=kept_tts,
            cell_flows=kept_flows,
        )
        violations.append((fw.window_index, n_bad))
    if strict and violations:
        raise SnapshotValidationError(
            f"cells outside (reference - 2^k, reference]: {violations}"
        )
    return cleaned, violations


class ResilientPoller:
    """Hardened poll / on-demand-read path for one ``PrintQueuePort``.

    Created by the port when ``faults=`` is passed; owns the injector,
    the retry policy, and the :class:`FaultLog`.  All methods are called
    at the exact logical instants the perfect-channel path would poll,
    from both ingest engines, so fault draws and outcomes are
    engine-independent.
    """

    def __init__(
        self,
        port: "PrintQueuePort",
        injector: FaultInjector,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: Optional[Metrics] = None,
        strict: bool = False,
    ) -> None:
        self.port = port
        self.injector = injector
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        self.log = FaultLog()
        self.metrics = metrics
        #: raise the typed errors instead of degrading (debug/test aid).
        self.strict = strict
        #: fire time of a delayed (pending) full poll, or None.
        self.pending_full_ns: Optional[int] = None
        #: the deadline the pending poll originally missed.
        self._pending_due_ns: Optional[int] = None
        #: largest queue-monitor sequence number accepted so far (the
        #: floor regressions are detected against).
        self.last_qm_max_seq = 0
        if metrics is not None:
            self._obs_backoff = metrics.histogram("pq_fault_retry_backoff_ns")
            self._obs_retries = metrics.counter("pq_faults_retries_total")
        else:
            self._obs_backoff = None
            self._obs_retries = None

    # -- retry bookkeeping -------------------------------------------------

    def _record_retry(self, attempt: int) -> None:
        backoff = self.retry.backoff_ns(attempt)
        self.log.retries += 1
        self.log.retry_backoff_ns_total += backoff
        if self._obs_retries is not None:
            self._obs_retries.inc()
            self._obs_backoff.observe(backoff)

    # -- periodic (full) polls ---------------------------------------------

    def poll_full(self, due_ns: int) -> None:
        """One due periodic poll, with drop/delay/read-fault handling."""
        outcome = self.injector.poll_outcome()
        if outcome == DROP:
            if self.strict:
                raise FaultInjected(f"periodic poll at {due_ns} ns dropped")
            self._drop_poll(due_ns)
            return
        if outcome == DELAY:
            config = self.port.config
            slip = (
                self.injector.plan.poll_delay_ns
                if self.injector.plan.poll_delay_ns is not None
                else config.set_period_ns // 2
            )
            slip = max(1, min(slip, config.set_period_ns - 1))
            self.pending_full_ns = due_ns + slip
            self._pending_due_ns = due_ns
            self.log.delayed_polls += 1
            return
        self._read_and_store(due_ns)

    def fire_pending(self) -> None:
        """Deadline-aware catch-up: run the delayed poll at its fire time."""
        fire = self.pending_full_ns
        assert fire is not None
        self.pending_full_ns = None
        self._pending_due_ns = None
        self._read_and_store(fire)

    def finalize(self, now_ns: int) -> None:
        """End of run: a still-pending delayed poll is subsumed by the
        operator-driven final flush (its bank never flipped, so the
        final ``periodic_poll`` reads everything it would have)."""
        self.pending_full_ns = None
        self._pending_due_ns = None

    def _drop_poll(self, due_ns: int) -> None:
        """A poll that missed its deadline entirely: the hardware flip
        cadence continues, the frozen content is overwritten unread —
        that set period of time-window data (and the monitor snapshot
        that rode along) is lost."""
        analysis = self.port.analysis
        lost_from = analysis._active_since_ns
        analysis.tw_banks.periodic_flip()
        analysis._active_since_ns = due_ns
        if due_ns > lost_from:
            self.log.lost_ranges.append((lost_from, due_ns))
        self.log.lost_polls += 1
        self.log.qm_lost_ns.append(due_ns)

    def _read_and_store(self, read_ns: int) -> None:
        """Flip + read the frozen bank with retry/validate/quarantine."""
        from repro.core.filtering import filter_windows

        analysis = self.port.analysis
        frozen = analysis.tw_banks.periodic_flip()
        pristine = filter_windows(
            frozen.snapshot(), analysis.config, stats=analysis.filter_stats
        )
        windows, failed_attempts = self._read_with_retries(
            pristine, read_ns, analysis._active_since_ns, source="periodic"
        )
        if windows is None:
            # every attempt failed at the RPC layer: the frozen bank is
            # overwritten by the next flip before a read lands.
            if self.strict:
                raise RetryExhausted(
                    f"periodic read at {read_ns} ns failed after "
                    f"{self.retry.max_attempts} attempts"
                )
            lost_from = analysis._active_since_ns
            analysis._active_since_ns = read_ns
            if read_ns > lost_from:
                self.log.lost_ranges.append((lost_from, read_ns))
            self.log.lost_polls += 1
            self.log.qm_lost_ns.append(read_ns)
            return
        if failed_attempts:
            self.log.reads_recovered += 1
        analysis.store_periodic_snapshot(read_ns, windows)
        # the stored snapshot carried a clean monitor read: advance the
        # sequence-number floor regressions are detected against.
        if analysis.qm_snapshots:
            self.note_stored_qm(analysis.qm_snapshots[-1])

    def _read_with_retries(
        self,
        pristine: List[FilteredWindow],
        read_ns: int,
        valid_from_ns: int,
        source: str,
    ) -> Tuple[Optional[List[FilteredWindow]], int]:
        """The shared attempt loop: returns (windows, failed_attempts).

        ``windows`` is the pristine read on a clean attempt, the
        quarantined remainder when the retry budget ran out on a
        torn/corrupt read, or ``None`` when every attempt failed at the
        RPC layer (nothing was read at all).
        """
        injector = self.injector
        k = self.port.config.k
        failed = 0
        last_error: Optional[str] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            outcome = injector.read_attempt_outcome()
            if outcome == OK:
                return pristine, failed
            failed += 1
            last_error = outcome
            if outcome == RPC_ERROR:
                if attempt < self.retry.max_attempts:
                    self._record_retry(attempt)
                continue
            # torn / corrupt: the read "succeeded" but validation fails.
            tampered, n_cells = injector.tamper_filtered(pristine, k, outcome)
            if n_cells == 0:
                # nothing to damage in an empty read — it validates.
                return pristine, failed - 1
            cleaned, violations = validate_filtered_windows(tampered, k)
            if attempt < self.retry.max_attempts:
                self._record_retry(attempt)
                continue
            # retry budget exhausted: quarantine what validation caught.
            if self.strict:
                raise SnapshotValidationError(
                    f"{source} read at {read_ns} ns still failed validation "
                    f"after {self.retry.max_attempts} attempts: {violations}"
                )
            self.log.retry_exhausted += 1
            for window_index, n_bad in violations:
                span = pristine[window_index].coverage_ns(k)
                if span is not None:
                    span = (max(span[0], valid_from_ns), span[1])
                self.log.quarantines.append(
                    QuarantineRecord(
                        read_time_ns=read_ns,
                        source=source,
                        kind=outcome,
                        window_index=window_index,
                        cells=n_bad,
                        span_ns=span,
                    )
                )
            return cleaned, failed
        # all attempts were RPC failures
        self.log.retry_exhausted += 1
        return None, failed

    # -- standalone queue-monitor polls --------------------------------------

    def poll_qm(self, due_ns: int) -> None:
        """One due standalone monitor poll, with drop/regression handling."""
        analysis = self.port.analysis
        outcome = self.injector.qm_poll_outcome()
        if outcome == DROP:
            if self.strict:
                raise FaultInjected(f"queue-monitor poll at {due_ns} ns dropped")
            self.log.qm_lost_ns.append(due_ns)
            return
        snapshot = analysis.queue_monitor.snapshot(due_ns)
        if outcome == REGRESS:
            if self.injector.regress_qm(snapshot, self.last_qm_max_seq):
                if not self._qm_validates(snapshot):
                    self.log.qm_quarantined += 1
                    self.log.qm_lost_ns.append(due_ns)
                    self.log.quarantines.append(
                        QuarantineRecord(
                            read_time_ns=due_ns,
                            source="queue-monitor",
                            kind="qm-regression",
                        )
                    )
                    return
        if not self._qm_validates(snapshot):
            # defensive: never store a snapshot that fails monotonicity.
            self.log.qm_quarantined += 1
            self.log.qm_lost_ns.append(due_ns)
            return
        self._accept_qm(snapshot)
        # Through the store, never the raw list: ingest and retention are
        # the store's job (the snapshot views are read-only).
        analysis.store.add_qm(snapshot)

    def _qm_validates(self, snapshot: "QueueMonitorSnapshot") -> bool:
        """Sequence numbers may only move forward (§5's monotone counter)."""
        from repro.core.queuemonitor import _UNSET

        seqs = [s for s in snapshot.inc_seq if s != _UNSET]
        seqs += [s for s in snapshot.dec_seq if s != _UNSET]
        if not seqs:
            return True
        return max(seqs) >= self.last_qm_max_seq

    def _accept_qm(self, snapshot: "QueueMonitorSnapshot") -> None:
        from repro.core.queuemonitor import _UNSET

        seqs = [s for s in snapshot.inc_seq if s != _UNSET]
        seqs += [s for s in snapshot.dec_seq if s != _UNSET]
        if seqs:
            self.last_qm_max_seq = max(self.last_qm_max_seq, max(seqs))

    def note_stored_qm(self, snapshot: "QueueMonitorSnapshot") -> None:
        """Advance the monotonicity floor for snapshots stored outside
        :meth:`poll_qm` (full polls and on-demand reads snapshot the
        monitor themselves, always cleanly)."""
        self._accept_qm(snapshot)

    # -- on-demand (data-plane triggered) reads ------------------------------

    def dp_read(self, now_ns: int) -> Optional["TimeWindowSnapshot"]:
        """Hardened on-demand read; returns the snapshot or ``None``.

        ``None`` means either the hardware cost model rejected the
        trigger (not a fault) or every read attempt failed at the RPC
        layer (``log.dp_read_failures`` tells them apart; the caller
        surfaces the latter as an ``accepted=False`` degraded result).
        A read that keeps failing validation is quarantined through
        ``AnalysisProgram.quarantine_snapshot_windows``, which bumps the
        snapshot-store version and drops the per-snapshot columnar memo
        so compiled-plan caches rebuild without the removed cells.
        """
        analysis = self.port.analysis
        snapshot = analysis.dp_read(now_ns)
        if snapshot is None:
            return None
        if analysis.model_dp_read_cost:
            # dp_read stored a monitor snapshot alongside; keep the floor.
            if analysis.qm_snapshots:
                self.note_stored_qm(analysis.qm_snapshots[-1])
        windows, failed_attempts = self._read_with_retries(
            snapshot.windows, now_ns, snapshot.valid_from_ns, source="data-plane"
        )
        if windows is None:
            if self.strict:
                raise DataPlaneReadError(
                    f"on-demand read at {now_ns} ns failed after "
                    f"{self.retry.max_attempts} attempts"
                )
            # the registers were frozen but no read ever completed:
            # quarantine the whole snapshot (it holds data the control
            # plane never actually received).
            k = self.port.config.k
            cells = sum(len(fw.cells) for fw in snapshot.windows)
            span = snapshot.coverage_ns(k)
            if span is not None:
                span = (max(span[0], snapshot.valid_from_ns), span[1])
            self.log.quarantines.append(
                QuarantineRecord(
                    read_time_ns=now_ns,
                    source="data-plane",
                    kind="rpc",
                    cells=cells,
                    span_ns=span,
                )
            )
            self.log.dp_read_failures += 1
            empty = [
                FilteredWindow(
                    fw.window_index,
                    fw.shift,
                    [],
                    None,
                    tts_array=np.empty(0, dtype=np.int64),
                    cell_flows=[],
                )
                for fw in snapshot.windows
            ]
            analysis.quarantine_snapshot_windows(snapshot, empty)
            return None
        if failed_attempts:
            self.log.reads_recovered += 1
        if windows is not snapshot.windows:
            analysis.quarantine_snapshot_windows(snapshot, windows)
        return snapshot
