"""Service-level objectives: latency targets and error-budget burn.

The tracker keeps an exact sliding window of recent request latencies
(for the degradation controller's p99 signal) alongside cumulative
tallies (for the error budget), and mirrors both into a
:class:`~repro.obs.metrics.Metrics` registry so the service section
rides the existing RunReport/Prometheus export path.

A request *violates* the SLO when it errors or exceeds the p99 latency
target; the error budget is the fraction of requests allowed to violate.
``burn_rate > 1`` means the service is spending budget faster than the
target allows — the signal an operator alerts on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.obs.metrics import Metrics


@dataclass(frozen=True)
class SLOTargets:
    """Latency/availability targets for the query front door."""

    p50_ms: float = 5.0
    p99_ms: float = 50.0
    #: fraction of requests allowed to violate (error or miss p99).
    error_budget: float = 0.01
    #: sliding-window size for the live percentile estimates.
    window: int = 512


class SLOTracker:
    """Observe per-request latencies against :class:`SLOTargets`."""

    def __init__(
        self, targets: Optional[SLOTargets] = None, metrics: Optional[Metrics] = None
    ) -> None:
        self.targets = targets or SLOTargets()
        self.metrics = metrics
        self._window: Deque[float] = deque(maxlen=self.targets.window)
        self.total = 0
        self.errors = 0
        self.violations = 0
        if metrics is not None:
            self._obs_latency = metrics.histogram("pq_service_latency_us")
            self._obs_requests = metrics.counter("pq_service_requests_total")
            self._obs_errors = metrics.counter("pq_service_errors_total")
            self._obs_violations = metrics.counter("pq_service_slo_violations_total")
        else:
            self._obs_latency = None
            self._obs_requests = None
            self._obs_errors = None
            self._obs_violations = None

    def observe(self, latency_ms: float, ok: bool = True) -> None:
        """Record one served request (errors count against the budget)."""
        self.total += 1
        self._window.append(latency_ms)
        violated = (not ok) or latency_ms > self.targets.p99_ms
        if not ok:
            self.errors += 1
        if violated:
            self.violations += 1
        if self._obs_requests is not None:
            self._obs_requests.inc()
            self._obs_latency.observe(max(0, int(latency_ms * 1000)))
            if not ok:
                self._obs_errors.inc()
            if violated:
                self._obs_violations.inc()

    def percentile(self, q: float) -> float:
        """Exact q-quantile (nearest-rank) over the sliding window."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.999999) - 1))
        return ordered[rank]

    @property
    def burn_rate(self) -> float:
        """Error-budget burn: observed violation fraction ÷ budget.

        1.0 means violations land exactly on budget; above 1 the budget
        is being spent faster than the target allows.
        """
        if self.total == 0:
            return 0.0
        frac = self.violations / self.total
        budget = max(self.targets.error_budget, 1e-9)
        return frac / budget

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view for status responses and bench records."""
        return {
            "total": self.total,
            "errors": self.errors,
            "violations": self.violations,
            "p50_ms": self.percentile(0.5),
            "p99_ms": self.percentile(0.99),
            "target_p50_ms": self.targets.p50_ms,
            "target_p99_ms": self.targets.p99_ms,
            "error_budget": self.targets.error_budget,
            "burn_rate": self.burn_rate,
        }
