"""Admission control: bounded queue depth fronted by a token bucket.

The front door never queues unboundedly.  A request is admitted only if
(a) the pending-request queue has room and (b) the token bucket grants a
token; otherwise a typed :class:`~repro.errors.ServiceOverloadError`
comes back *immediately* with a Retry-After hint — the "rapid signalling
under load" property the query path itself must keep (Briscoe, PAPERS.md).

The clock is injectable so admission decisions are testable without
wall-clock sleeps; the service passes the event loop's monotonic clock.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import ServiceOverloadError
from repro.obs.metrics import Metrics


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` sustained, ``burst`` capacity.

    ``rate_per_s <= 0`` disables rate limiting (always admits).
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst if burst is not None else max(1.0, rate_per_s / 10)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)

    def try_acquire(self) -> float:
        """Take one token; returns 0.0 if granted, else seconds-to-retry."""
        if self.rate_per_s <= 0:
            return 0.0
        now = self._clock()
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate_per_s


class AdmissionController:
    """Gate requests on queue depth and token-bucket rate."""

    def __init__(
        self,
        max_pending: int,
        rate_per_s: float = 0.0,
        burst: Optional[float] = None,
        metrics: Optional[Metrics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.bucket = TokenBucket(rate_per_s, burst, clock)
        self.metrics = metrics
        self.admitted = 0
        self.rejected = 0

    def admit(self, pending: int) -> None:
        """Admit one request or raise :class:`ServiceOverloadError`.

        ``pending`` is the current depth of the bounded request queue.
        Queue-full rejections hint half the queue's worth of service
        time; rate rejections hint the bucket's exact refill time.
        """
        if pending >= self.max_pending:
            self._reject("queue")
            raise ServiceOverloadError(
                f"request queue full ({pending}/{self.max_pending})",
                retry_after_ms=50.0,
            )
        wait_s = self.bucket.try_acquire()
        if wait_s > 0:
            self._reject("rate")
            raise ServiceOverloadError(
                f"rate limit exceeded ({self.bucket.rate_per_s:g}/s)",
                retry_after_ms=wait_s * 1000.0,
            )
        self.admitted += 1
        if self.metrics is not None:
            self.metrics.counter("pq_service_admitted_total").inc()

    def _reject(self, reason: str) -> None:
        self.rejected += 1
        if self.metrics is not None:
            self.metrics.counter("pq_service_overload_total", reason=reason).inc()
