"""The always-on diagnosis service: live ingest + concurrent serving.

:class:`DiagnosisService` owns one :class:`~repro.core.printqueue.PrintQueuePort`
being fed live by a supervised ingest task (chunked
:class:`~repro.engine.fused.FusedIngestPipeline` steps) while query
requests arrive over a local JSON-lines socket.  The request path:

    connection handler → admission (bounded queue + token bucket)
                       → bounded ``asyncio.Queue``
                       → single worker task → port query → response

Degradation stages change *how* a query is answered, never whether the
answer is honest:

* ``NORMAL`` — the full unified ``pq.query`` path;
* ``BATCH_ONLY`` — the compiled columnar batch plan (numerically
  identical estimates, cheapest per-query path; queue-monitor walks and
  on-demand data-plane reads are shed with a typed rejection);
* ``REDUCED`` — the batch plan over only the newest K periodic
  snapshots; the truncated history is reported per answer as a
  :class:`~repro.faults.CoverageReport` and the answer is flagged
  ``degraded`` — never a silent wrong answer.

:class:`ServiceHarness` runs the whole service on a daemon thread's
event loop, which is how the tests and the load driver embed it.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.config import PrintQueueConfig
from repro.core.printqueue import BatchQueryResult, PrintQueuePort
from repro.core.queries import QueryInterval
from repro.errors import (
    QueryError,
    ReproError,
    ServiceDegradedRejection,
    ServiceShuttingDown,
)
from repro.faults.resilience import CoverageReport
from repro.obs.metrics import Metrics
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.degrade import DegradationController, Stage, StageThreshold
from repro.service.ingest import IngestSupervisor, LiveIngest
from repro.service.slo import SLOTargets, SLOTracker
from repro.store.memory import MemoryStore


@dataclass
class ServiceConfig:
    """Everything one service instance needs, with serve-ready defaults."""

    # -- the live workload the ingest task replays ------------------------
    workload: str = "ws"
    duration_ns: int = 50_000_000
    load: float = 1.2
    seed: int = 1
    engine: str = "fused"  # "fused" or "batched"
    #: a fault-profile name, FaultPlan, or injector (see repro.faults).
    faults: Optional[object] = None
    pq_config: Optional[PrintQueueConfig] = None
    chunk_events: int = 8192

    # -- front door -------------------------------------------------------
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    max_pending: int = 64
    rate_limit_qps: float = 0.0  # <= 0 disables rate limiting
    burst: Optional[float] = None

    # -- degradation / SLO ------------------------------------------------
    slo: SLOTargets = field(default_factory=SLOTargets)
    thresholds: Optional[Dict[Stage, StageThreshold]] = None
    recover_frac: float = 0.5
    calm_hold: int = 3
    reduced_keep_snapshots: int = 4

    # -- supervision / shutdown ------------------------------------------
    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    drain_deadline_s: float = 5.0


class DiagnosisService:
    """One port, one supervised ingest task, one query front door."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[Metrics] = None,
        chaos_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or Metrics()
        self.chaos_hook = chaos_hook
        self.slo = SLOTracker(self.config.slo, metrics=self.metrics)
        self.admission = AdmissionController(
            self.config.max_pending,
            rate_per_s=self.config.rate_limit_qps,
            burst=self.config.burst,
            metrics=self.metrics,
        )
        self.degrade = DegradationController(
            thresholds=self.config.thresholds,
            recover_frac=self.config.recover_frac,
            calm_hold=self.config.calm_hold,
            metrics=self.metrics,
        )
        self.pq: Optional[PrintQueuePort] = None
        self.store = MemoryStore()
        self.supervisor: Optional[IngestSupervisor] = None
        self.ingest: Optional[LiveIngest] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: Optional["asyncio.Queue[Tuple[Dict[str, Any], float, asyncio.Future]]"] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._ingest_task: Optional[asyncio.Task] = None
        self._draining = False
        self.state = "idle"  # idle → serving → draining → stopped

    # -- build -------------------------------------------------------------

    def _build(self) -> None:
        """Generate the live log and wire up port + pipeline + supervisor.

        Deliberately mirrors :func:`repro.experiments.runner.simulate_workload`
        so a service run's snapshots are bit-identical to an offline run
        of the same (workload, seed, config) — the service adds a *drive
        cadence*, not new math.
        """
        from repro.experiments.runner import run_trace_through_fifo_batch
        from repro.traffic.distributions import distribution_by_name
        from repro.traffic.generator import PoissonWorkload, WorkloadConfig

        cfg = self.config
        generator = PoissonWorkload(
            distribution_by_name(cfg.workload),
            WorkloadConfig(load=cfg.load, duration_ns=cfg.duration_ns),
            seed=cfg.seed,
        )
        trace = generator.generate()
        records, _drops = run_trace_through_fifo_batch(trace)
        pq_config = cfg.pq_config or PrintQueueConfig()
        if len(records) >= 2:
            span = records[-1].deq_timestamp - records[0].deq_timestamp
            d_ns = span / (len(records) - 1)
        else:
            d_ns = float(pq_config.min_pkt_tx_delay_ns)
        self.pq = PrintQueuePort(
            pq_config,
            d_ns=d_ns,
            model_dp_read_cost=False,
            metrics=self.metrics,
            faults=cfg.faults,
            store=self.store,
        )
        if cfg.engine == "fused":
            from repro.engine.fused import FusedIngestPipeline

            pipeline: Any = FusedIngestPipeline(self.pq, records)
        elif cfg.engine == "batched":
            from repro.engine.ingest import IngestPipeline

            pipeline = IngestPipeline(self.pq, list(records))
        else:
            raise QueryError(f"unsupported service engine {cfg.engine!r}")
        self.ingest = LiveIngest(pipeline, chunk_events=cfg.chunk_events)
        self.supervisor = IngestSupervisor(
            self.ingest,
            max_restarts=cfg.max_restarts,
            backoff_base_s=cfg.backoff_base_s,
            backoff_cap_s=cfg.backoff_cap_s,
            metrics=self.metrics,
            chaos_hook=self.chaos_hook,
        )

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Build, bind, and start serving; returns the bound address."""
        if self.pq is None:
            self._build()
        assert self.supervisor is not None
        self._queue = asyncio.Queue(maxsize=self.config.max_pending)
        self._worker_task = asyncio.create_task(self._worker(), name="pq-worker")
        self._ingest_task = asyncio.create_task(
            self.supervisor.run(), name="pq-ingest"
        )
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.state = "serving"
        return host, port

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ServiceShuttingDown("service is not serving")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def shutdown(self) -> None:
        """Graceful stop: reject new work, drain in-flight, flush, close."""
        if self.state in ("stopped", "idle"):
            self.state = "stopped"
            return
        self.state = "draining"
        self._draining = True
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._server is not None:
            self._server.close()
        # Drain in-flight queries against the configured deadline; past
        # it, whatever is still queued gets cancelled rather than holding
        # the process hostage.
        if self._queue is not None:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=self.config.drain_deadline_s
                )
            except asyncio.TimeoutError:
                pass
        for task in (self._worker_task, self._ingest_task):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, ReproError):
                    pass
        if self._server is not None:
            await self._server.wait_closed()
        # Flush: a store backend with buffered state persists it here.
        self.store.close()
        self.state = "stopped"

    # -- request path --------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        try:
            request = protocol.decode(line)
            request_id = request.get("id")
            if self._draining:
                raise ServiceShuttingDown("service is draining")
            op = request.get("op")
            if op == "ping":
                result: Any = {"pong": True}
            elif op == "status":
                result = self.status()
            elif op == "query":
                result = await self._enqueue_query(request)
            else:
                raise QueryError(f"unknown op {op!r}")
            payload: Dict[str, Any] = {"ok": True, "result": result}
        except ReproError as exc:
            payload = {"ok": False, "error": protocol.error_payload(exc)}
        if request_id is not None:
            payload["id"] = request_id
        return payload

    async def _enqueue_query(self, request: Dict[str, Any]) -> Any:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        # admit() + put_nowait run without an intervening await, so the
        # depth check and the enqueue are atomic on the event loop.
        self.admission.admit(self._queue.qsize())
        future: asyncio.Future = loop.create_future()
        self._queue.put_nowait((request, loop.time(), future))
        if self.metrics is not None:
            self.metrics.gauge("pq_service_queue_depth").set_max(
                self._queue.qsize()
            )
        return await future

    async def _worker(self) -> None:
        """The single consumer of the bounded request queue."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            request, enqueued_at, future = await self._queue.get()
            ok = True
            try:
                result = self._execute(request)
                if not future.cancelled():
                    future.set_result(result)
            except ReproError as exc:
                ok = False
                if not future.cancelled():
                    future.set_exception(exc)
            finally:
                latency_ms = (loop.time() - enqueued_at) * 1000.0
                self.slo.observe(latency_ms, ok=ok)
                self.degrade.observe(
                    queue_frac=self._queue.qsize() / self.config.max_pending,
                    p99_ms=self.slo.percentile(0.99),
                )
                self._queue.task_done()
            # One cooperative yield per request keeps the ingest task fed
            # even under a request flood.
            await asyncio.sleep(0)

    # -- query execution -----------------------------------------------------

    def _interval_from(self, request: Dict[str, Any]) -> QueryInterval:
        args = request.get("args") or {}
        try:
            return QueryInterval(int(args["start_ns"]), int(args["end_ns"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"query needs integer start_ns/end_ns args: {exc!r}")

    def _execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        assert self.pq is not None
        interval = self._interval_from(request)
        stage = self.degrade.stage
        args = request.get("args") or {}
        if args.get("mode", "async") != "async":
            # On-demand data-plane reads mutate register banks; the
            # serving tier answers from snapshots only.
            raise ServiceDegradedRejection(
                "the service answers async (snapshot) queries only",
                stage=stage.name,
            )
        if stage == Stage.NORMAL:
            result = self.pq.query(interval=interval)
            estimate, degraded, coverage = result.estimate, result.degraded, result.coverage
        elif stage == Stage.BATCH_ONLY:
            batch = self.pq.query(intervals=[interval])
            assert isinstance(batch, BatchQueryResult)
            one = batch[0]
            estimate, degraded, coverage = one.estimate, one.degraded, one.coverage
        else:  # Stage.REDUCED
            estimate, coverage = self._reduced_answer(interval)
            degraded = True
        response: Dict[str, Any] = {
            "stage": stage.name,
            "degraded": bool(degraded),
            "estimate": {str(flow): value for flow, value in estimate.items()},
        }
        if coverage is not None:
            response["coverage"] = coverage.describe()
            response["lost_ns"] = [list(r) for r in coverage.lost_ns]
        return response

    def _reduced_answer(self, interval: QueryInterval):
        """Answer over only the newest K periodic snapshots, with honest
        coverage: history older than the kept snapshots is reported lost."""
        assert self.pq is not None
        analysis = self.pq.analysis
        keep_n = max(1, self.config.reduced_keep_snapshots)
        snaps = [s for s in analysis.tw_snapshots if s.source == "periodic"]
        keep = snaps[-keep_n:]
        if not keep:
            raise QueryError("no snapshots available; did the poller run?")
        estimates = analysis.query_time_windows_batch([interval], snapshots=keep)
        cutoff = min(s.valid_from_ns for s in keep)
        lost = []
        if interval.start_ns < cutoff:
            lost.append((interval.start_ns, min(interval.end_ns, cutoff)))
        # Fold in genuine fault-injection loss overlapping the interval,
        # so a faulted REDUCED answer names both kinds of blindness.
        poller = getattr(self.pq, "_poller", None)
        quarantined = ()
        qm_lost = ()
        if poller is not None:
            fault_cov = poller.log.coverage_for(interval.start_ns, interval.end_ns)
            lost.extend(fault_cov.lost_ns)
            quarantined = fault_cov.quarantined
            qm_lost = fault_cov.qm_lost_ns
        coverage = CoverageReport(
            interval=(interval.start_ns, interval.end_ns),
            lost_ns=tuple(lost),
            quarantined=quarantined,
            qm_lost_ns=qm_lost,
        )
        return estimates[0], coverage

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        queue_depth = self._queue.qsize() if self._queue is not None else 0
        ingest = self.ingest
        supervisor = self.supervisor
        return {
            "state": self.state,
            "stage": self.degrade.stage.name,
            "queue_depth": queue_depth,
            "max_pending": self.config.max_pending,
            "admitted": self.admission.admitted,
            "rejected": self.admission.rejected,
            "ingest": {
                "status": ingest.status if ingest is not None else "idle",
                "events": ingest.events_ingested if ingest is not None else 0,
                "chunks": ingest.chunks_ingested if ingest is not None else 0,
                "supervisor": supervisor.state if supervisor is not None else "idle",
                "restarts": supervisor.restarts if supervisor is not None else 0,
            },
            "snapshots": len(self.store.tw_view()),
            "faults": (
                self.config.faults
                if self.config.faults is None
                or isinstance(self.config.faults, str)
                else str(getattr(self.config.faults, "name", self.config.faults))
            ),
            "slo": self.slo.snapshot(),
        }


class ServiceHarness:
    """Run a :class:`DiagnosisService` on a daemon thread's event loop.

    The embedding surface for tests and the load driver: ``start()``
    blocks until the socket is bound and returns ``(host, port)``;
    ``stop()`` runs the graceful shutdown on the service loop and joins
    the thread.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[Metrics] = None,
        chaos_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = DiagnosisService(
            config=config, metrics=metrics, chaos_hook=chaos_hook
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self._address = loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surfaced to start()'s caller
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def start(self, timeout_s: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="pq-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise TimeoutError("service failed to start within the timeout")
        if self._startup_error is not None:
            raise self._startup_error
        assert self._address is not None
        return self._address

    def stop(self, timeout_s: float = 30.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return
        done = asyncio.run_coroutine_threadsafe(self.service.shutdown(), loop)
        try:
            done.result(timeout=timeout_s)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServiceHarness":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
