"""The service wire protocol: JSON lines over a local stream socket.

One request per line, one response per line, UTF-8 JSON with no
embedded newlines.  Requests carry ``op`` (``ping`` / ``status`` /
``query``) and an optional ``id`` echoed back verbatim.  Responses are
either ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
{...}}`` where the error object round-trips the service's typed
exception hierarchy — the client re-raises the same
:class:`~repro.errors.ServiceError` subclasses the server raised, with
``retry_after_ms`` / ``stage`` intact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Type

from repro.errors import (
    IngestFailed,
    QueryError,
    ReproError,
    ServiceDegradedRejection,
    ServiceError,
    ServiceOverloadError,
    ServiceShuttingDown,
)

#: Exception types that cross the wire by name (everything else is
#: flattened to the ``ServiceError`` base on the client side).
ERROR_TYPES: Dict[str, Type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ServiceOverloadError,
        ServiceDegradedRejection,
        ServiceShuttingDown,
        IngestFailed,
        QueryError,
        ServiceError,
    )
}


def encode(payload: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ``QueryError`` on malformed input."""
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise QueryError(f"malformed request line: {exc}") from exc
    if not isinstance(payload, dict):
        raise QueryError(f"request must be a JSON object, got {type(payload).__name__}")
    return payload


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Serialise an exception into the wire error object."""
    payload: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after_ms", None)
    if retry_after:
        payload["retry_after_ms"] = retry_after
    stage = getattr(exc, "stage", None)
    if stage:
        payload["stage"] = stage
    return payload


def raise_error(payload: Dict[str, Any]) -> None:
    """Re-raise a wire error object as its typed exception (client side)."""
    name = str(payload.get("type", "ServiceError"))
    message = str(payload.get("message", "service error"))
    cls = ERROR_TYPES.get(name, ServiceError)
    if cls is ServiceOverloadError:
        raise ServiceOverloadError(
            message, retry_after_ms=float(payload.get("retry_after_ms", 0.0))
        )
    if cls is ServiceDegradedRejection:
        raise ServiceDegradedRejection(
            message,
            stage=str(payload.get("stage", "")),
            retry_after_ms=float(payload.get("retry_after_ms", 0.0)),
        )
    raise cls(message)
