"""A small synchronous client for the diagnosis service.

Speaks the JSON-lines protocol over a TCP connection and re-raises the
server's typed errors (:class:`~repro.errors.ServiceOverloadError` with
its Retry-After hint, :class:`~repro.errors.ServiceShuttingDown`, ...)
so callers handle overload the same way in-process code would::

    with ServiceClient(host, port) as client:
        try:
            answer = client.query(start_ns, end_ns)
        except ServiceOverloadError as exc:
            time.sleep(exc.retry_after_ms / 1000)
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.service import protocol


class ServiceClient:
    """One connection, blocking request/response, typed errors."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._next_id = 0

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request/response ---------------------------------------------------

    def request(self, op: str, **args: Any) -> Any:
        """Send one request; returns the result or raises the typed error."""
        self.connect()
        assert self._sock is not None and self._rfile is not None
        self._next_id += 1
        payload: Dict[str, Any] = {"id": self._next_id, "op": op}
        if args:
            payload["args"] = args
        self._sock.sendall(protocol.encode(payload))
        line = self._rfile.readline()
        if not line:
            raise ServiceError("connection closed by the service")
        response = protocol.decode(line)
        if not response.get("ok"):
            protocol.raise_error(response.get("error") or {})
        return response.get("result")

    # -- convenience ops ----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def status(self) -> Dict[str, Any]:
        return dict(self.request("status"))

    def query(self, start_ns: int, end_ns: int) -> Dict[str, Any]:
        """An async time-window query; the result carries ``stage``,
        ``degraded``, the per-flow ``estimate``, and coverage when any
        history was invisible to the answer."""
        return dict(self.request("query", start_ns=start_ns, end_ns=end_ns))
