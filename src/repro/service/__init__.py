"""The always-on diagnosis service (PrintQueue §2's operating mode).

Everything the offline harness runs to completion, this package runs
*continuously*: live ingest (a :class:`~repro.engine.fused.FusedIngestPipeline`
driven chunk-by-chunk inside an asyncio task, snapshots landing in a
shared :class:`~repro.store.SnapshotStore`) concurrent with query
serving over a local socket.  The robustness core:

* **admission control** (:mod:`repro.service.admission`) — a bounded
  request queue fronted by a token bucket; over-limit requests get an
  immediate typed :class:`~repro.errors.ServiceOverloadError` with a
  Retry-After hint instead of queueing unboundedly;
* **backpressure & graceful degradation** (:mod:`repro.service.degrade`)
  — declared stages (full → batch-only → coverage-reduced), entered one
  step at a time on queue-depth/p99 pressure and left hysteretically;
  reduced answers are *flagged* via the PR 4 coverage machinery, never
  silently wrong;
* **fault-tolerant serving** (:mod:`repro.service.ingest`) — ingest runs
  under :class:`~repro.faults.FaultInjector` profiles via the resilient
  read path; a supervisor restarts a crashed ingest task with bounded
  exponential backoff; shutdown drains in-flight queries against a
  deadline and flushes the store;
* **SLO tracking** (:mod:`repro.service.slo`) — per-request latency
  feeds p50/p99 targets and an error-budget burn rate, exported through
  the existing metrics/Prometheus path.

Zero-overhead invariant: nothing here is imported by the offline paths;
with no service running, in-process runs are bit-identical to before.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.degrade import DegradationController, Stage, StageThreshold
from repro.service.ingest import IngestSupervisor, LiveIngest
from repro.service.slo import SLOTargets, SLOTracker
from repro.service.server import DiagnosisService, ServiceConfig, ServiceHarness

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "DegradationController",
    "Stage",
    "StageThreshold",
    "IngestSupervisor",
    "LiveIngest",
    "SLOTargets",
    "SLOTracker",
    "DiagnosisService",
    "ServiceConfig",
    "ServiceHarness",
]
