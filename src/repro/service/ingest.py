"""Live ingest: chunked pipeline driving plus a restarting supervisor.

:class:`LiveIngest` wraps an ingest pipeline's ``steps()`` generator
(:meth:`repro.engine.ingest.IngestPipeline.steps`, shared by the fused
tier) and pulls it in bounded chunks, so an asyncio task can interleave
ingest with query serving without ever blocking the loop for the whole
log.  :class:`IngestSupervisor` owns the drive loop and the restart
contract:

* a crash *around* the generator (the drive loop, a chaos hook, task
  plumbing) is **restartable**: the supervisor backs off exponentially
  (bounded) and resumes pulling from the same generator — no ingest
  state is lost;
* a crash *inside* the generator is **fail-stop**: a Python generator
  that raised is finished, and rebuilding mid-stream could not be
  bit-identical to an uninterrupted run, so the supervisor marks ingest
  ``failed`` and surfaces :class:`~repro.errors.IngestFailed` instead of
  serving silently wrong snapshots.  (Injected *read* faults never take
  this path — the resilient poller inside the pipeline degrades them to
  coverage loss, which is the point of running under fault profiles.)
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterator, Optional

from repro.errors import IngestFailed
from repro.obs.metrics import Metrics


class LiveIngest:
    """Chunked pull over a pipeline ``steps()`` generator."""

    def __init__(self, pipeline: object, chunk_events: int = 8192) -> None:
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        self.pipeline = pipeline
        self.chunk_events = chunk_events
        self._gen: Iterator[int] = pipeline.steps()  # type: ignore[attr-defined]
        #: ``idle`` → ``running`` → ``drained`` | ``failed``
        self.status = "idle"
        self.events_ingested = 0
        self.chunks_ingested = 0

    def step_chunk(self) -> bool:
        """Absorb roughly one chunk of events; False when the log is done.

        A generator-internal crash poisons this ingest permanently
        (fail-stop): the exception is wrapped in
        :class:`~repro.errors.IngestFailed` and every later call returns
        False with ``status == "failed"``.
        """
        if self.status in ("drained", "failed"):
            return False
        self.status = "running"
        absorbed = 0
        try:
            while absorbed < self.chunk_events:
                absorbed += next(self._gen)
        except StopIteration:
            self.status = "drained"
            return False
        except Exception as exc:
            self.status = "failed"
            raise IngestFailed(
                f"ingest pipeline crashed mid-stream: {exc!r}"
            ) from exc
        finally:
            if absorbed:
                self.events_ingested += absorbed
                self.chunks_ingested += 1
        return True


class IngestSupervisor:
    """Drive a :class:`LiveIngest` in an asyncio task; restart on crash.

    ``chaos_hook`` (tests, CI chaos profiles) runs before every chunk
    and may raise — exactly the restartable crash class.  The restart
    budget is ``max_restarts``; past it the supervisor gives up with
    :class:`~repro.errors.IngestFailed`.
    """

    def __init__(
        self,
        ingest: LiveIngest,
        max_restarts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        metrics: Optional[Metrics] = None,
        chaos_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.ingest = ingest
        self.max_restarts = max_restarts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.metrics = metrics
        self.chaos_hook = chaos_hook
        self.restarts = 0
        #: ``idle`` → ``running`` → ``drained`` | ``stopped`` | ``failed``
        self.state = "idle"
        self._stop = asyncio.Event()

    def stop(self) -> None:
        """Ask the drive loop to wind down after the current chunk."""
        self._stop.set()

    def next_backoff_s(self) -> float:
        """The bounded exponential delay before the next restart."""
        return min(self.backoff_cap_s, self.backoff_base_s * (2**self.restarts))

    async def run(self) -> None:
        """The supervised drive loop (the service's background task)."""
        self.state = "running"
        while True:
            try:
                while not self._stop.is_set():
                    if self.chaos_hook is not None:
                        self.chaos_hook()
                    if not self.ingest.step_chunk():
                        self.state = self.ingest.status  # drained or failed
                        return
                    # Yield to the event loop between chunks so query
                    # handlers run interleaved with ingest.
                    await asyncio.sleep(0)
                self.state = "stopped"
                return
            except asyncio.CancelledError:
                self.state = "stopped"
                raise
            except IngestFailed:
                # Fail-stop: the generator itself died (see module doc).
                self.state = "failed"
                raise
            except Exception:
                if self.restarts >= self.max_restarts:
                    self.state = "failed"
                    raise IngestFailed(
                        f"ingest task crashed past its restart budget "
                        f"({self.max_restarts})"
                    )
                delay = self.next_backoff_s()
                self.restarts += 1
                if self.metrics is not None:
                    self.metrics.counter("pq_service_ingest_restarts_total").inc()
                await asyncio.sleep(delay)
