"""Backpressure: a declared, hysteretic degradation state machine.

Stages are ordered and *declared up front*; under pressure the service
moves down the ladder one stage at a time, and climbs back up only
after the pressure signals have stayed well below the entry thresholds
for a hold period (hysteresis, so a noisy boundary load cannot flap the
service between modes).  Guarantees the property suite pins down:

* the stage index changes by at most one per observation — no stage is
  ever skipped in either direction;
* with sustained low load the controller always returns to ``NORMAL``;
* answers produced in a degraded stage are *flagged* as such by the
  serving layer (see ``DiagnosisService._execute``) — degradation is
  visible, never a silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import Metrics


class Stage(IntEnum):
    """The declared degradation ladder, in escalation order."""

    #: full service: rich per-query path (TW + queue-monitor context).
    NORMAL = 0
    #: answers restricted to the cheap compiled batch plan (exact, but
    #: no queue-monitor walks or on-demand data-plane reads).
    BATCH_ONLY = 1
    #: answers run against only the newest snapshots; truncated coverage
    #: is reported per answer via the PR 4 coverage machinery.
    REDUCED = 2


@dataclass(frozen=True)
class StageThreshold:
    """Entry condition for one stage: either signal crossing trips it."""

    queue_frac: float
    p99_ms: float


#: Default entry thresholds, keyed by the stage being *entered*.
DEFAULT_THRESHOLDS: Dict[Stage, StageThreshold] = {
    Stage.BATCH_ONLY: StageThreshold(queue_frac=0.5, p99_ms=50.0),
    Stage.REDUCED: StageThreshold(queue_frac=0.8, p99_ms=200.0),
}


class DegradationController:
    """Hysteretic stage controller driven by (queue_frac, p99_ms)."""

    def __init__(
        self,
        thresholds: Optional[Dict[Stage, StageThreshold]] = None,
        recover_frac: float = 0.5,
        calm_hold: int = 3,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self.thresholds = dict(thresholds or DEFAULT_THRESHOLDS)
        for stage in (Stage.BATCH_ONLY, Stage.REDUCED):
            if stage not in self.thresholds:
                raise ValueError(f"missing entry threshold for {stage.name}")
        if not 0.0 < recover_frac <= 1.0:
            raise ValueError(f"recover_frac must be in (0, 1], got {recover_frac}")
        if calm_hold < 1:
            raise ValueError(f"calm_hold must be >= 1, got {calm_hold}")
        self.recover_frac = recover_frac
        self.calm_hold = calm_hold
        self.metrics = metrics
        self.stage = Stage.NORMAL
        self._calm = 0
        #: audit trail of (from, to) transitions, in order.
        self.transitions: List[Tuple[Stage, Stage]] = []

    def _crossed(self, threshold: StageThreshold, queue_frac: float, p99_ms: float) -> bool:
        return queue_frac >= threshold.queue_frac or p99_ms >= threshold.p99_ms

    def _calm_enough(self, queue_frac: float, p99_ms: float) -> bool:
        """Both signals well below the *current* stage's entry threshold."""
        threshold = self.thresholds[self.stage]
        return (
            queue_frac < self.recover_frac * threshold.queue_frac
            and p99_ms < self.recover_frac * threshold.p99_ms
        )

    def observe(self, queue_frac: float, p99_ms: float) -> Stage:
        """Feed one pressure sample; returns the (possibly new) stage.

        Moves at most one stage per call, escalation taking priority
        over recovery.  Recovery needs ``calm_hold`` *consecutive* calm
        samples; any loud sample resets the hold.
        """
        if self.stage < Stage.REDUCED:
            entering = Stage(self.stage + 1)
            if self._crossed(self.thresholds[entering], queue_frac, p99_ms):
                self._transition(entering)
                self._calm = 0
                return self.stage
        if self.stage > Stage.NORMAL:
            if self._calm_enough(queue_frac, p99_ms):
                self._calm += 1
                if self._calm >= self.calm_hold:
                    self._transition(Stage(self.stage - 1))
                    self._calm = 0
            else:
                self._calm = 0
        return self.stage

    def _transition(self, to: Stage) -> None:
        self.transitions.append((self.stage, to))
        if self.metrics is not None:
            if to > self.stage:
                self.metrics.counter(
                    "pq_service_degradations_total", to=to.name
                ).inc()
            self.metrics.gauge("pq_service_stage").set(int(to))
        self.stage = to
