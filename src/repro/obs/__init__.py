"""Observability for the reproduction itself (``repro.obs``).

The paper's evaluation is entirely about *measuring the measurer*:
collision/pass rates inside the time windows, queue-monitor stack churn,
query accuracy and throughput.  This package makes those quantities
first-class outputs of every run instead of implicit by-products of the
benchmarks:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (fixed log₂ buckets) instruments and the
  :class:`Metrics` registry that instrumentation points publish into.
* :mod:`repro.obs.report` — :class:`RunReport`, which aggregates the
  always-on structure counters (plus an attached registry) into a JSON
  document or Prometheus-style text exposition.

The structure counters themselves live on the hot structures as plain
integers (see ``TimeWindowSet.level_passes``, ``QueueMonitor.pushes``,
``FilterStats``), maintained with identical semantics by the scalar and
batched ingest engines — so reports are comparable across engines and
metrics collection never changes a diagnosis result.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.report import RunReport, collect_port_counters

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "RunReport",
    "collect_port_counters",
]
