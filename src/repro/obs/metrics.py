"""Near-zero-overhead metric instruments and the :class:`Metrics` registry.

The hot structures (:class:`~repro.core.windowset.TimeWindowSet`,
:class:`~repro.core.queuemonitor.QueueMonitor`, the register banks) keep
their event counts as plain integer attributes, updated inline — that is
the data-plane half, cheap enough to stay on unconditionally, and the
reason the scalar and batched ingest paths can assert counter-for-counter
equality.  This module is the control-plane half: a registry of named
instruments that the instrumentation points *publish into* (query
latencies, batch sizes, ingest timings) or that collectors *pull* the
structure counters into at read time.

Three instrument kinds, mirroring the usual exposition conventions:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a point-in-time value (may go up or down).
* :class:`Histogram` — fixed log₂ buckets: an observation ``v`` lands in
  bucket ``v.bit_length()``, i.e. bucket ``b`` covers ``[2^(b-1), 2^b)``
  (bucket 0 holds zero/negative observations).  Fixed buckets keep
  ``observe`` allocation-free and make histograms mergeable across runs.

Instruments are identified by ``(name, labels)``; the registry
get-or-creates on access, so instrumentation points simply ask for what
they need.  :meth:`Metrics.to_prometheus` renders the whole registry in
the text exposition format; :meth:`Metrics.snapshot` returns a plain
JSON-ready dict.

Concurrency and ownership
-------------------------

A registry has exactly one *owner* surface (a port, a switch, a
diagnosis service) but may be written from several threads at once: the
always-on service shares one registry between its ingest task and its
query handlers, and load drivers observe latencies from client threads.
The contract:

* **Increment paths are thread-safe.**  ``Counter.inc``,
  ``Histogram.observe``, ``Gauge.set_max`` and registry get-or-create
  (``counter``/``gauge``/``histogram``) take a lock, so concurrent
  increments never lose updates.  ``Gauge.set`` is a single attribute
  store (atomic under the GIL) and stays lock-free.
* **Read paths are point-in-time.**  ``snapshot``/``to_prometheus`` may
  run concurrently with writers; each instrument's snapshot is
  internally consistent (taken under its lock) but the registry-wide
  view is not a global atomic cut — fine for exposition.
* **Structural operations are owner-only.**  ``merge`` and ``sample``
  must be called by the owner while the *other* registry is quiescent
  (the sharded driver merges worker registries only after their
  processes exited; the service merges nothing live).

The locks are per-instrument and uncontended on the hot paths (the
data-plane structure counters stay plain integer attributes on the
structures themselves; instruments tick per batch/query, not per
packet), so the overhead is unobservable in the ingest benchmarks.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MAX_LOG2_BUCKETS",
    "PARITY_EXEMPT_METRICS",
]

#: Histogram bucket count: bucket 63 absorbs anything >= 2^62, far beyond
#: any nanosecond latency or batch size this codebase can produce.
MAX_LOG2_BUCKETS = 64

#: Audited exceptions to the PQ003 engine-parity rule (pqlint): counter
#: names in the shared ingest namespace that are *definitionally*
#: one-path-only.  The scalar path has no batches, so the batch count
#: cannot tick there; everything else in ``pq_ingest_*`` must increment
#: on both the scalar and batched paths (or move here, with a reason).
PARITY_EXEMPT_METRICS = frozenset({"pq_ingest_batches_total"})

#: (name, sorted (key, value) label pairs) — the registry key.
_InstrumentKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: The three instrument kinds the registry can get-or-create.
_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("value", "_lock")

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        # `self.value += amount` is a read-modify-write; the lock keeps
        # concurrent ingest-task / query-handler increments from losing
        # updates (see the module docstring's ownership model).
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        return self.value

    # Locks don't pickle; the sharded driver ships fresh registries to
    # worker processes inside pickled ports, so every instrument drops
    # its lock on the way out and recreates it on the way back in.
    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, state: int) -> None:
        self.value = state
        self._lock = threading.Lock()


class Gauge:
    """A point-in-time value; ``set`` overwrites, ``set_max`` keeps peaks."""

    __slots__ = ("value", "_lock")

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        # Single attribute store: atomic under the GIL, lock-free.
        self.value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = value

    def snapshot(self) -> float:
        return self.value

    def __getstate__(self) -> float:
        return self.value

    def __setstate__(self, state: float) -> None:
        self.value = state
        self._lock = threading.Lock()


class Histogram:
    """Fixed log₂-bucket histogram of non-negative observations.

    Bucket ``b`` counts observations whose integer part has bit length
    ``b``: bucket 0 is exactly zero, bucket 1 is ``[1, 2)``, bucket 2 is
    ``[2, 4)``, …, so bucket upper bounds are ``2^b - 1``.  ``sum`` and
    ``count`` are tracked exactly, so means stay precise even though the
    distribution is quantised.
    """

    __slots__ = ("counts", "count", "sum", "_lock")

    kind = "histogram"

    def __init__(self) -> None:
        self.counts: List[int] = [0] * MAX_LOG2_BUCKETS
        self.count = 0
        self.sum = 0
        self._lock = threading.Lock()

    def observe(self, value: int) -> None:
        v = int(value)
        bucket = v.bit_length() if v > 0 else 0
        if bucket >= MAX_LOG2_BUCKETS:
            bucket = MAX_LOG2_BUCKETS - 1
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.sum += v

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the ``q`` quantile.

        Conservative (never underestimates) because buckets quantise to
        powers of two; exact enough for SLO tracking on log-scale
        latency targets.  Returns 0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0
        need = max(1, int(q * total + 0.999999))
        cumulative = 0
        for b, c in enumerate(counts):
            cumulative += c
            if cumulative >= need:
                return (1 << b) - 1
        return (1 << (MAX_LOG2_BUCKETS - 1)) - 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """``(upper_bound, count)`` for every occupied bucket, ascending."""
        return [
            ((1 << b) - 1, c) for b, c in enumerate(self.counts) if c
        ]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self.counts)
            count = self.count
            total = self.sum
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "buckets": {
                str((1 << b) - 1): c for b, c in enumerate(counts) if c
            },
        }

    def __getstate__(self) -> Tuple[List[int], int, int]:
        return (self.counts, self.count, self.sum)

    def __setstate__(self, state: Tuple[List[int], int, int]) -> None:
        self.counts, self.count, self.sum = state
        self._lock = threading.Lock()


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(pairs: Tuple[Tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


class Metrics:
    """A registry of named instruments with get-or-create access.

    One registry is owned per run surface (a :class:`PrintQueuePort`, a
    :class:`~repro.switch.switchsim.Switch`) and every instrumentation
    point publishes into it.  ``sample`` additionally records a named
    point-in-time snapshot (the poll-boundary timeline that
    :class:`~repro.obs.report.RunReport` serialises).
    """

    def __init__(self) -> None:
        self._instruments: Dict[_InstrumentKey, Any] = {}
        #: poll-boundary timeline: (time_ns, {counter name: value}).
        self.samples: List[Tuple[int, Dict[str, int]]] = []
        # Guards get-or-create; instrument *updates* use per-instrument
        # locks (module docstring: "Concurrency and ownership").
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = {
            "_instruments": self._instruments,
            "samples": self.samples,
        }
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._instruments = state["_instruments"]
        self.samples = state["samples"]
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Tuple[_InstrumentKey, Any]]:
        return iter(sorted(self._instruments.items()))

    def _get(
        self,
        cls: Type[_InstrumentT],
        name: str,
        labels: Dict[str, Any],
    ) -> _InstrumentT:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            # Lock only the create path: the dict lookup above is atomic
            # under the GIL, and setdefault keeps a concurrent creator's
            # instrument instead of clobbering it.
            with self._lock:
                instrument = self._instruments.setdefault(key, cls())
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def sample(self, time_ns: int, values: Dict[str, int]) -> None:
        """Record one poll-boundary snapshot of key counters."""
        # Poll-boundary frequency, so the lock is cheap — and it keeps
        # the timeline intact if a reader snapshots mid-append.
        with self._lock:
            self.samples.append((time_ns, values))

    def find(self, name: str, **labels: Any) -> Optional[Any]:
        """The instrument registered under (name, labels), if any."""
        return self._instruments.get((name, _label_key(labels)))

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's instruments into this one.

        Counters add, histograms add bucket-for-bucket (the fixed log₂
        buckets were chosen to make this exact), gauges take the other
        registry's value (last writer wins), and timeline samples extend
        in order.  The sharded ingest driver uses this to fold each
        worker's registry back into the caller's after adoption.
        """
        for (name, pairs), instrument in other._instruments.items():
            labels = dict(pairs)
            if isinstance(instrument, Counter):
                self._get(Counter, name, labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self._get(Gauge, name, labels).set(instrument.value)
            else:
                mine = self._get(Histogram, name, labels)
                with mine._lock:
                    for bucket, count in enumerate(instrument.counts):
                        if count:
                            mine.counts[bucket] += count
                    mine.count += instrument.count
                    mine.sum += instrument.sum
        with self._lock:
            self.samples.extend(other.samples)

    # -- exposition ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict: ``{name{labels}: value-or-histogram-dict}``."""
        out: Dict[str, Any] = {}
        for (name, pairs), instrument in self:
            out[name + _render_labels(pairs)] = instrument.snapshot()
        return out

    def to_prometheus(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for (name, pairs), instrument in self:
            if name not in seen_types:
                seen_types[name] = instrument.kind
                lines.append(f"# TYPE {name} {instrument.kind}")
            labels = _render_labels(pairs)
            if isinstance(instrument, Histogram):
                cumulative = 0
                for upper, count in instrument.nonzero_buckets():
                    cumulative += count
                    le = dict(pairs, le=str(upper))
                    lines.append(
                        f"{name}_bucket{_render_labels(_label_key(le))}"
                        f" {cumulative}"
                    )
                inf = dict(pairs, le="+Inf")
                lines.append(
                    f"{name}_bucket{_render_labels(_label_key(inf))}"
                    f" {instrument.count}"
                )
                lines.append(f"{name}_sum{labels} {instrument.sum}")
                lines.append(f"{name}_count{labels} {instrument.count}")
            else:
                lines.append(f"{name}{labels} {instrument.snapshot()}")
        return "\n".join(lines) + ("\n" if lines else "")
