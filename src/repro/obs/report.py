"""Exportable run reports: the evaluation's "measure the measurer" data.

The paper's §7 figures are statements about PrintQueue's *own* internals —
collision and pass rates in the time windows (the coefficient argument
behind Fig. 11), queue-monitor stack churn (Fig. 16's case study), query
accuracy and throughput (§7.1).  :class:`RunReport` makes every run
self-describing: it pulls the always-on structure counters out of a
:class:`~repro.core.printqueue.PrintQueuePort` (aggregated across all
three register banks), merges the attached :class:`~repro.obs.metrics.Metrics`
registry if one exists, and serialises the result to JSON or
Prometheus-style text exposition.

The counters are maintained identically by the scalar and batched ingest
engines, so two reports over the same trace differ only in their timing
histograms — the equivalence tests assert exactly that.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from repro.obs.metrics import Metrics

if TYPE_CHECKING:
    from repro.core.printqueue import PrintQueuePort

__all__ = ["RunReport", "collect_port_counters"]

#: Sections whose values are deterministic functions of the event stream
#: (identical between ingest engines and metrics-on/off runs).  "faults"
#: qualifies because every injector draw happens at a poll/read instant
#: both engines reach in the same order with the same seeded RNG.
DETERMINISTIC_SECTIONS = (
    "config",
    "packets",
    "time_windows",
    "banks",
    "filter",
    "queue_monitor",
    "samples",
    "faults",
    "store",
)


def _rate(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def collect_port_counters(pq: "PrintQueuePort") -> Dict[str, Any]:
    """Pull the structure-level counters out of one port (all banks)."""
    analysis = pq.analysis
    config = analysis.config
    banks = analysis.tw_banks

    t = config.T
    inserts = [0] * t
    passes = [0] * t
    drops = [0] * t
    occupancy = [0] * t
    updates = agg_passes = agg_drops = 0
    for bank in banks.banks:
        updates += bank.updates
        agg_passes += bank.passes
        agg_drops += bank.drops
        for i in range(t):
            inserts[i] += bank.level_inserts[i]
            passes[i] += bank.level_passes[i]
            drops[i] += bank.level_drops[i]
            occupancy[i] += bank.windows[i].occupancy()

    per_level = []
    for i in range(t):
        collisions = passes[i] + drops[i]
        per_level.append(
            {
                "level": i,
                "inserts": inserts[i],
                "collisions": collisions,
                "passes": passes[i],
                "drops": drops[i],
                "collision_rate": _rate(collisions, inserts[i]),
                "pass_rate": _rate(passes[i], collisions),
                "occupancy": occupancy[i],
            }
        )

    monitor = analysis.queue_monitor
    stats = analysis.filter_stats
    return {
        "config": {
            "m0": config.m0,
            "k": config.k,
            "alpha": config.alpha,
            "T": config.T,
            "describe": config.describe(),
        },
        "packets": {"seen": pq.packets_seen},
        "time_windows": {
            "updates": updates,
            "passes": agg_passes,
            "drops": agg_drops,
            "per_level": per_level,
        },
        "banks": {
            "periodic_flips": banks.periodic_flips,
            "dp_freezes": banks.dp_freezes,
            "dp_rejections": banks.dp_rejections,
        },
        "filter": {
            "cells_scanned": stats.cells_scanned,
            "cells_retained": stats.cells_retained,
            "cells_discarded": stats.cells_discarded,
        },
        "queue_monitor": {
            "pushes": monitor.pushes,
            "drains": monitor.drains,
            "events": monitor._seq,
            "high_water": monitor.high_water,
            "top": monitor.top,
            "overflows": monitor.overflows,
            "snapshots": len(analysis.qm_snapshots),
        },
        "queries": {
            "executed": analysis.queries_executed,
            "tw_snapshots": len(analysis.tw_snapshots),
            "batches": analysis.batch_queries,
            "plan_cache_hits": analysis.plan_cache_hits,
            "plan_cache_misses": analysis.plan_cache_misses,
            "snapshot_compile_hits": analysis.snapshot_compile_hits,
            "snapshot_compile_misses": analysis.snapshot_compile_misses,
        },
        "faults": _collect_faults(pq),
        # Backend-independent store counters: identical between a live
        # run and its replay, whatever tier either side used.
        "store": analysis.store.deterministic_stats(),
        # Tier-specific gauges (bytes, recording state): excluded from
        # the deterministic view — a memory run and its mmap replay
        # legitimately differ here.
        "store_backend": {
            "backend": analysis.store.backend,
            "tw_bytes": analysis.store.tw_bytes,
            "qm_bytes": analysis.store.qm_bytes,
            "bytes_total": analysis.store.tw_bytes + analysis.store.qm_bytes,
            "recording": int(analysis.store.recording),
            "replay_position": analysis.store.replay_position,
        },
    }


def _collect_faults(pq: "PrintQueuePort") -> Dict[str, Any]:
    """The fault-injection section: what was injected, what was done.

    ``injected`` is read straight off the injector's authoritative tally
    (the same object every injection incremented), so the report
    reconciles with the ``pq_faults_injected_total`` counters by
    construction.  A fault-free port reports ``{"enabled": False}`` —
    deterministic across engines, and old reports without the key still
    load fine.
    """
    injector = getattr(pq, "faults", None)
    if injector is None:
        return {"enabled": False}
    poller = getattr(pq, "_poller", None)
    return {
        "enabled": True,
        "profile": injector.plan.name,
        "seed": injector.plan.seed,
        "injected": dict(sorted(injector.injected.items())),
        "resilience": poller.log.to_dict() if poller is not None else None,
    }


class RunReport:
    """A serialisable snapshot of one run's observability data."""

    VERSION = 1

    def __init__(self, data: Dict[str, Any]) -> None:
        self.data = data

    @classmethod
    def from_port(
        cls,
        pq: "PrintQueuePort",
        metrics: Optional[Metrics] = None,
        num_records: Optional[int] = None,
        drops: Optional[int] = None,
    ) -> "RunReport":
        """Build a report from a port after (or during) a run.

        ``metrics`` defaults to the registry attached to the port;
        ``num_records``/``drops`` add trace-level context when the caller
        (the experiment runner) knows it.
        """
        data = collect_port_counters(pq)
        data["version"] = cls.VERSION
        if num_records is not None:
            data["packets"]["records"] = num_records
        if drops is not None:
            data["packets"]["fifo_drops"] = drops
        registry = metrics if metrics is not None else getattr(pq, "metrics", None)
        if registry is not None:
            data["metrics"] = registry.snapshot()
            data["samples"] = [
                {"time_ns": t, "counters": dict(values)}
                for t, values in registry.samples
            ]
        else:
            data["metrics"] = None
            data["samples"] = []
        return cls(data)

    # -- accessors -------------------------------------------------------

    def section(self, name: str) -> Any:
        return self.data.get(name)

    def deterministic_view(self) -> Dict[str, Any]:
        """The engine-independent slice (used by the equivalence tests)."""
        return {k: self.data[k] for k in DETERMINISTIC_SECTIONS if k in self.data}

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return self.data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        data = json.loads(Path(path).read_text())
        version = data.get("version")
        if version != cls.VERSION:
            raise ValueError(f"unsupported RunReport version: {version}")
        return cls(data)

    def to_metrics(self) -> Metrics:
        """Re-materialise the structural counters as a Metrics registry.

        Gives the report a single Prometheus exposition path shared with
        live registries; timing histograms from an attached registry are
        not round-tripped (they are exported live via
        ``Metrics.to_prometheus``).
        """
        registry = Metrics()
        tw = self.data["time_windows"]
        for row in tw["per_level"]:
            level = str(row["level"])
            registry.counter("pq_tw_inserts_total", level=level).inc(row["inserts"])
            registry.counter("pq_tw_collisions_total", level=level).inc(
                row["collisions"]
            )
            registry.counter("pq_tw_passes_total", level=level).inc(row["passes"])
            registry.counter("pq_tw_drops_total", level=level).inc(row["drops"])
            registry.gauge("pq_tw_occupancy", level=level).set(row["occupancy"])
        banks = self.data["banks"]
        registry.counter("pq_bank_periodic_flips_total").inc(banks["periodic_flips"])
        registry.counter("pq_bank_dp_freezes_total").inc(banks["dp_freezes"])
        registry.counter("pq_bank_dp_rejections_total").inc(banks["dp_rejections"])
        filt = self.data["filter"]
        registry.counter("pq_filter_cells_scanned_total").inc(filt["cells_scanned"])
        registry.counter("pq_filter_cells_retained_total").inc(
            filt["cells_retained"]
        )
        qm = self.data["queue_monitor"]
        registry.counter("pq_qm_pushes_total").inc(qm["pushes"])
        registry.counter("pq_qm_drains_total").inc(qm["drains"])
        registry.counter("pq_qm_overflows_total").inc(qm["overflows"])
        registry.gauge("pq_qm_high_water").set(qm["high_water"])
        registry.gauge("pq_qm_top").set(qm["top"])
        queries = self.data["queries"]
        registry.counter("pq_queries_executed_total").inc(queries["executed"])
        # .get(): reports saved before the columnar engine lack these keys.
        registry.counter("pq_query_batches_total").inc(queries.get("batches", 0))
        registry.counter("pq_plan_cache_hits_total").inc(
            queries.get("plan_cache_hits", 0)
        )
        registry.counter("pq_plan_cache_misses_total").inc(
            queries.get("plan_cache_misses", 0)
        )
        registry.counter("pq_snapshot_compile_hits_total").inc(
            queries.get("snapshot_compile_hits", 0)
        )
        registry.counter("pq_snapshot_compile_misses_total").inc(
            queries.get("snapshot_compile_misses", 0)
        )
        registry.counter("pq_packets_seen_total").inc(
            self.data["packets"]["seen"]
        )
        # .get(): reports saved before the snapshot store lack these
        # sections; the memory backend still exports its byte estimates.
        store = self.data.get("store")
        if store:
            registry.counter("pq_store_tw_added_total").inc(
                store.get("tw_added", 0)
            )
            registry.counter("pq_store_qm_added_total").inc(
                store.get("qm_added", 0)
            )
            registry.counter("pq_store_evictions_total", kind="tw").inc(
                store.get("tw_evictions", 0)
            )
            registry.counter("pq_store_evictions_total", kind="qm").inc(
                store.get("qm_evictions", 0)
            )
            registry.counter("pq_store_thinned_total").inc(
                store.get("tw_thinned", 0)
            )
            registry.counter("pq_store_quarantine_replacements_total").inc(
                store.get("quarantine_replacements", 0)
            )
            registry.gauge("pq_store_version").set(store.get("version", 0))
            registry.gauge("pq_store_tw_snapshots").set(
                store.get("tw_snapshots", 0)
            )
            registry.gauge("pq_store_qm_snapshots").set(
                store.get("qm_snapshots", 0)
            )
        backend = self.data.get("store_backend")
        if backend:
            tier = str(backend.get("backend", "memory"))
            registry.gauge("pq_store_bytes", tier=tier, kind="tw").set(
                backend.get("tw_bytes", 0)
            )
            registry.gauge("pq_store_bytes", tier=tier, kind="qm").set(
                backend.get("qm_bytes", 0)
            )
            registry.gauge("pq_store_recording").set(
                backend.get("recording", 0)
            )
            registry.gauge("pq_store_replay_position").set(
                backend.get("replay_position", 0)
            )
        # .get(): reports saved before the fault-injection layer lack
        # the section; fault-free runs export no pq_faults_* series.
        faults = self.data.get("faults")
        if faults and faults.get("enabled"):
            for kind, count in sorted(faults.get("injected", {}).items()):
                registry.counter("pq_faults_injected_total", kind=kind).inc(
                    count
                )
            res = faults.get("resilience") or {}
            registry.counter("pq_faults_retries_total").inc(
                res.get("retries", 0)
            )
            registry.counter("pq_faults_retry_exhausted_total").inc(
                res.get("retry_exhausted", 0)
            )
            registry.counter("pq_faults_reads_recovered_total").inc(
                res.get("reads_recovered", 0)
            )
            registry.counter("pq_faults_lost_polls_total").inc(
                res.get("lost_polls", 0)
            )
            registry.counter("pq_faults_delayed_polls_total").inc(
                res.get("delayed_polls", 0)
            )
            registry.counter("pq_faults_quarantined_cells_total").inc(
                res.get("quarantined_cells", 0)
            )
            registry.counter("pq_faults_qm_polls_lost_total").inc(
                res.get("qm_polls_lost", 0)
            )
            registry.counter("pq_faults_dp_read_failures_total").inc(
                res.get("dp_read_failures", 0)
            )
            registry.gauge("pq_faults_retry_backoff_ns_total").set(
                res.get("retry_backoff_ns_total", 0)
            )
        return registry

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the structural counters."""
        return self.to_metrics().to_prometheus()

    # -- presentation ----------------------------------------------------

    def summary(self) -> str:
        """A short human-readable digest (used by ``repro stats``)."""
        tw = self.data["time_windows"]
        qm = self.data["queue_monitor"]
        filt = self.data["filter"]
        lines = [
            f"config: {self.data['config']['describe']}",
            f"packets seen: {self.data['packets']['seen']}",
            "time windows:",
        ]
        for row in tw["per_level"]:
            lines.append(
                f"  w{row['level']}: inserts={row['inserts']} "
                f"collisions={row['collisions']} "
                f"(rate {row['collision_rate']:.3f}) "
                f"passes={row['passes']} (pass rate {row['pass_rate']:.3f})"
            )
        lines.append(
            f"stale filter: scanned={filt['cells_scanned']} "
            f"retained={filt['cells_retained']} "
            f"discarded={filt['cells_discarded']}"
        )
        lines.append(
            f"queue monitor: pushes={qm['pushes']} drains={qm['drains']} "
            f"high-water={qm['high_water']} overflows={qm['overflows']}"
        )
        queries = self.data["queries"]
        lines.append(
            f"queries executed: {queries['executed']}; "
            f"snapshots stored: {queries['tw_snapshots']}"
        )
        if queries.get("batches"):
            lines.append(
                f"batch queries: {queries['batches']}; "
                f"plan cache {queries.get('plan_cache_hits', 0)} hits / "
                f"{queries.get('plan_cache_misses', 0)} misses; "
                f"snapshot compiles {queries.get('snapshot_compile_misses', 0)} "
                f"({queries.get('snapshot_compile_hits', 0)} reused)"
            )
        store = self.data.get("store")
        backend = self.data.get("store_backend") or {}
        if store:
            line = (
                f"snapshot store ({backend.get('backend', 'memory')}): "
                f"version={store.get('version', 0)} "
                f"tw={store.get('tw_snapshots', 0)} "
                f"qm={store.get('qm_snapshots', 0)} "
                f"evicted={store.get('tw_evictions', 0)}+"
                f"{store.get('qm_evictions', 0)} "
                f"thinned={store.get('tw_thinned', 0)} "
                f"bytes={backend.get('bytes_total', 0)}"
            )
            if backend.get("recording"):
                line += " [recording]"
            if backend.get("replay_position"):
                line += f" [replayed {backend['replay_position']} records]"
            lines.append(line)
        faults = self.data.get("faults")
        if faults and faults.get("enabled"):
            injected = sum(faults.get("injected", {}).values())
            res = faults.get("resilience") or {}
            lines.append(
                f"faults ({faults['profile']}, seed {faults['seed']}): "
                f"{injected} injected; "
                f"lost polls={res.get('lost_polls', 0)} "
                f"delayed={res.get('delayed_polls', 0)} "
                f"retries={res.get('retries', 0)} "
                f"recovered={res.get('reads_recovered', 0)} "
                f"quarantined cells={res.get('quarantined_cells', 0)}"
            )
        return "\n".join(lines)
