"""Arrival-process models beyond plain Poisson.

The paper's traces use Poisson flow/packet arrivals, but congestion
regimes in production networks are shaped by *burstiness* — the on/off
behaviour that produces the microbursts of reference [35].  This module
provides pluggable inter-arrival generators:

* :class:`PoissonArrivals` — exponential gaps (the default),
* :class:`OnOffArrivals` — a two-state Markov-modulated process: ON
  periods emit packets back-to-back-ish at a high rate, OFF periods are
  silent; heavy-tailed (Pareto) period lengths yield self-similar-ish
  aggregates,
* :class:`ConstantArrivals` — CBR gaps (used by the scenario builders).

All generators are deterministic for a given numpy Generator and produce
integer-nanosecond gap arrays for a vector of packet sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.units import NS_PER_SEC


class ArrivalProcess:
    """Produces inter-packet gaps (ns) for a train of packet sizes."""

    def gaps_ns(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ConstantArrivals(ArrivalProcess):
    """CBR: each packet's gap is exactly its serialization at ``rate``."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"non-positive rate: {rate_bps}")
        self.rate_bps = rate_bps

    def gaps_ns(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        gaps = sizes * 8 * (NS_PER_SEC / self.rate_bps)
        out = gaps.astype(np.int64)
        if len(out):
            out[0] = 0
        return out


class PoissonArrivals(ArrivalProcess):
    """Exponential gaps with mean = serialization time at ``rate``."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"non-positive rate: {rate_bps}")
        self.rate_bps = rate_bps

    def gaps_ns(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        mean_gap = sizes * 8 * (NS_PER_SEC / self.rate_bps)
        gaps = rng.exponential(1.0, len(sizes)) * mean_gap
        out = gaps.astype(np.int64)
        if len(out):
            out[0] = 0
        return out


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated on/off bursts with Pareto-distributed periods.

    During ON, packets are paced at ``burst_rate_bps``; OFF inserts a
    silent gap.  Mean throughput is
    ``burst_rate * mean_on / (mean_on + mean_off)``.

    Parameters
    ----------
    burst_rate_bps:
        Pacing rate inside a burst.
    mean_on_ns / mean_off_ns:
        Mean period lengths.
    pareto_shape:
        Tail index of the period-length distribution; values in (1, 2]
        give long-range-dependent aggregates.  ``None`` uses exponential
        periods (classic MMPP).
    """

    def __init__(
        self,
        burst_rate_bps: float,
        mean_on_ns: float = 20_000,
        mean_off_ns: float = 60_000,
        pareto_shape: Optional[float] = 1.5,
    ) -> None:
        if burst_rate_bps <= 0:
            raise ValueError(f"non-positive burst rate: {burst_rate_bps}")
        if mean_on_ns <= 0 or mean_off_ns <= 0:
            raise ValueError("period means must be positive")
        if pareto_shape is not None and pareto_shape <= 1.0:
            raise ValueError(f"pareto shape must exceed 1, got {pareto_shape}")
        self.burst_rate_bps = burst_rate_bps
        self.mean_on_ns = mean_on_ns
        self.mean_off_ns = mean_off_ns
        self.pareto_shape = pareto_shape

    @property
    def mean_rate_bps(self) -> float:
        duty = self.mean_on_ns / (self.mean_on_ns + self.mean_off_ns)
        return self.burst_rate_bps * duty

    def _period(self, rng: np.random.Generator, mean_ns: float) -> float:
        if self.pareto_shape is None:
            return rng.exponential(mean_ns)
        # Pareto with mean = xm * a / (a - 1)  =>  xm = mean * (a-1)/a.
        a = self.pareto_shape
        xm = mean_ns * (a - 1) / a
        return xm * (1.0 + rng.pareto(a))

    def gaps_ns(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        n = len(sizes)
        gaps = np.zeros(n, dtype=np.int64)
        if n == 0:
            return gaps
        on_left = self._period(rng, self.mean_on_ns)
        for i in range(1, n):
            gap = sizes[i] * 8 * NS_PER_SEC / self.burst_rate_bps
            on_left -= gap
            while on_left <= 0:
                # Burst exhausted: insert an OFF gap, start a new burst.
                gap += self._period(rng, self.mean_off_ns)
                on_left += self._period(rng, self.mean_on_ns)
            gaps[i] = int(gap)
        return gaps
