"""Flow-size distributions used by the paper's workloads.

Two of the paper's traces are synthesized from published flow-size CDFs:

* **Web search** (``WS``) — the DCTCP production cluster distribution
  (Alizadeh et al., SIGCOMM 2010).
* **Data mining** (``DM``) — the VL2 cluster distribution (Greenberg et
  al., SIGCOMM 2009).

The third trace is the University of Wisconsin data-center capture
(Benson et al., IMC 2010), which we cannot redistribute; per the
substitution rule, :class:`UWLikeDistribution` matches the properties the
paper's evaluation actually leans on (Section 7.1): ~100-byte packets,
~9.1 Mpps at 10 Gbps, and an extreme long tail where the 100th-largest
flow carries under 1 % of the largest flow's packets.

All distributions are expressed as empirical CDFs over flow size in bytes
with log-linear interpolation between knots, a standard way such published
CDFs are consumed by simulators.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class FlowSizeDistribution:
    """Base class: sample flow sizes (bytes) and packet sizes (bytes)."""

    #: Typical on-wire packet size for this workload, used for line-rate math.
    typical_packet_bytes: int = 1500

    def sample_flow_bytes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raise NotImplementedError

    def sample_packet_bytes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Per-packet sizes; default = all typical-sized."""
        return np.full(n, self.typical_packet_bytes, dtype=np.int64)

    def mean_flow_bytes(self, rng: np.random.Generator, samples: int = 20000) -> float:
        """Monte-Carlo mean flow size, used to size Poisson arrival rates."""
        return float(np.mean(self.sample_flow_bytes(rng, samples)))


class EmpiricalCdfDistribution(FlowSizeDistribution):
    """A flow-size distribution given as CDF knots ``(bytes, probability)``.

    Sampling inverts the CDF with log-space interpolation between knots,
    which is the conventional treatment of the heavy-tailed published CDFs.
    """

    def __init__(
        self,
        knots: Sequence[Tuple[float, float]],
        typical_packet_bytes: int = 1500,
        name: str = "empirical",
    ) -> None:
        if len(knots) < 2:
            raise ValueError("need at least two CDF knots")
        sizes = [k[0] for k in knots]
        probs = [k[1] for k in knots]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise ValueError("CDF knots must be non-decreasing")
        if probs[-1] != 1.0:
            raise ValueError("CDF must end at probability 1.0")
        if min(sizes) <= 0:
            raise ValueError("flow sizes must be positive")
        self._log_sizes = np.log(np.asarray(sizes, dtype=float))
        self._probs = np.asarray(probs, dtype=float)
        self.typical_packet_bytes = typical_packet_bytes
        self.name = name

    def sample_flow_bytes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        log_size = np.interp(u, self._probs, self._log_sizes)
        return np.maximum(1, np.exp(log_size)).astype(np.int64)

    def __repr__(self) -> str:
        return f"EmpiricalCdfDistribution({self.name!r})"


class WebSearchDistribution(EmpiricalCdfDistribution):
    """DCTCP web-search flow sizes; near-MTU packets (paper: ~1500 B)."""

    # Knots follow the widely used web-search CDF: ~50% of flows under
    # ~100 KB but most bytes in multi-MB flows.
    _KNOTS: List[Tuple[float, float]] = [
        (6_000, 0.00),
        (10_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 1.00),
    ]

    def __init__(self) -> None:
        super().__init__(self._KNOTS, typical_packet_bytes=1500, name="websearch")


class DataMiningDistribution(EmpiricalCdfDistribution):
    """VL2 data-mining flow sizes; near-MTU packets, very heavy tail."""

    _KNOTS: List[Tuple[float, float]] = [
        (100, 0.00),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (1_870, 0.60),
        (3_160, 0.70),
        (10_000, 0.80),
        (400_000, 0.90),
        (3_160_000, 0.95),
        (100_000_000, 0.98),
        (1_000_000_000, 1.00),
    ]

    def __init__(self) -> None:
        super().__init__(self._KNOTS, typical_packet_bytes=1460, name="datamining")

    def sample_packet_bytes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # The VL2 trace mixes small control packets with full-MTU data;
        # the paper characterizes DM as near-MTU, so bias heavily to MTU.
        sizes = np.where(rng.random(n) < 0.05, 64, self.typical_packet_bytes)
        return sizes.astype(np.int64)


class UWLikeDistribution(EmpiricalCdfDistribution):
    """Synthetic stand-in for the UW data-center trace.

    Matched properties (Section 7.1 of the paper):

    * packets around 100 bytes → ~9.1 Mpps at 10 Gbps line rate,
    * extreme long tail: the 100th-largest flow has < 1 % of the packets
      of the largest flow (validated by a unit test),
    * flow population in the thousands per window period.
    """

    _KNOTS: List[Tuple[float, float]] = [
        (100, 0.00),
        (200, 0.45),
        (400, 0.65),
        (1_000, 0.78),
        (5_000, 0.88),
        (30_000, 0.94),
        (300_000, 0.975),
        (5_000_000, 0.995),
        (30_000_000, 0.999),
        (2_000_000_000, 1.00),
    ]

    def __init__(self) -> None:
        super().__init__(self._KNOTS, typical_packet_bytes=100, name="uw-like")

    def sample_packet_bytes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Small packets with modest variation around 100 B (64..196 B).
        sizes = 64 + rng.integers(0, 133, n)
        return sizes.astype(np.int64)


def distribution_by_name(name: str) -> FlowSizeDistribution:
    """Look up one of the paper's three workloads: 'ws', 'dm', or 'uw'."""
    table = {
        "ws": WebSearchDistribution,
        "websearch": WebSearchDistribution,
        "dm": DataMiningDistribution,
        "datamining": DataMiningDistribution,
        "uw": UWLikeDistribution,
        "uw-like": UWLikeDistribution,
    }
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown workload {name!r}; expected ws/dm/uw")
    return table[key]()
