"""The trace container: a columnar batch of packets.

Traces are stored as parallel numpy arrays (arrival time, size, flow
index, priority) plus a flow table mapping flow indices to
:class:`~repro.switch.packet.FlowKey` objects.  This keeps generation and
the FIFO fast path vectorised while still materializing ``Packet`` objects
for the event-driven simulator when needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.switch.packet import FlowKey, Packet


@dataclass
class Trace:
    """A packet trace sorted by arrival time."""

    arrival_ns: np.ndarray  # int64
    size_bytes: np.ndarray  # int64
    flow_index: np.ndarray  # int64 indices into `flows`
    flows: List[FlowKey]
    priority: Optional[np.ndarray] = None  # int64; None = all zero
    name: str = "trace"

    def __post_init__(self) -> None:
        n = len(self.arrival_ns)
        if len(self.size_bytes) != n or len(self.flow_index) != n:
            raise ValueError("trace arrays must have equal length")
        if self.priority is not None and len(self.priority) != n:
            raise ValueError("priority array length mismatch")
        if n and np.any(np.diff(self.arrival_ns) < 0):
            raise ValueError("trace must be sorted by arrival time")
        if n and (self.flow_index.min() < 0 or self.flow_index.max() >= len(self.flows)):
            raise ValueError("flow_index out of range")

    def __len__(self) -> int:
        return len(self.arrival_ns)

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    @property
    def duration_ns(self) -> int:
        if len(self) == 0:
            return 0
        return int(self.arrival_ns[-1] - self.arrival_ns[0])

    def total_bytes(self) -> int:
        return int(self.size_bytes.sum())

    def offered_load_bps(self) -> float:
        """Average offered bit rate over the trace duration."""
        duration = self.duration_ns
        if duration == 0:
            return 0.0
        return self.total_bytes() * 8 / (duration / 1e9)

    def packets(self) -> Iterator[Packet]:
        """Materialize ``Packet`` objects in arrival order (lazy)."""
        priority = self.priority
        for i in range(len(self)):
            yield Packet(
                flow=self.flows[int(self.flow_index[i])],
                size_bytes=int(self.size_bytes[i]),
                arrival_ns=int(self.arrival_ns[i]),
                priority=int(priority[i]) if priority is not None else 0,
                seq=i,
            )

    def flow_packet_counts(self) -> Dict[FlowKey, int]:
        """Total per-flow packet counts over the whole trace."""
        counts = np.bincount(self.flow_index, minlength=len(self.flows))
        return {
            self.flows[i]: int(counts[i]) for i in range(len(self.flows)) if counts[i]
        }

    def slice_time(self, start_ns: int, end_ns: int) -> "Trace":
        """Sub-trace of packets arriving in ``[start_ns, end_ns)``."""
        lo = int(np.searchsorted(self.arrival_ns, start_ns, side="left"))
        hi = int(np.searchsorted(self.arrival_ns, end_ns, side="left"))
        return Trace(
            arrival_ns=self.arrival_ns[lo:hi].copy(),
            size_bytes=self.size_bytes[lo:hi].copy(),
            flow_index=self.flow_index[lo:hi].copy(),
            flows=self.flows,
            priority=None if self.priority is None else self.priority[lo:hi].copy(),
            name=f"{self.name}[{start_ns}:{end_ns}]",
        )

    @staticmethod
    def merge(traces: Sequence["Trace"], name: str = "merged") -> "Trace":
        """Merge traces by arrival time, remapping flow tables."""
        if not traces:
            raise ValueError("nothing to merge")
        flows: List[FlowKey] = []
        flow_map: Dict[FlowKey, int] = {}
        parts_idx = []
        for trace in traces:
            remap = np.empty(len(trace.flows), dtype=np.int64)
            for j, key in enumerate(trace.flows):
                if key not in flow_map:
                    flow_map[key] = len(flows)
                    flows.append(key)
                remap[j] = flow_map[key]
            parts_idx.append(remap[trace.flow_index])
        arrival = np.concatenate([t.arrival_ns for t in traces])
        order = np.argsort(arrival, kind="stable")
        size = np.concatenate([t.size_bytes for t in traces])[order]
        index = np.concatenate(parts_idx)[order]
        if any(t.priority is not None for t in traces):
            prio = np.concatenate(
                [
                    t.priority
                    if t.priority is not None
                    else np.zeros(len(t), dtype=np.int64)
                    for t in traces
                ]
            )[order]
        else:
            prio = None
        return Trace(arrival[order], size, index, flows, prio, name=name)

    # -- persistence --------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Save to an ``.npz`` file (flow keys flattened to columns)."""
        flow_cols = np.array(
            [
                (k.src_ip, k.dst_ip, k.src_port, k.dst_port, k.proto)
                for k in self.flows
            ],
            dtype=np.int64,
        ).reshape(len(self.flows), 5)
        np.savez_compressed(
            Path(path),
            arrival_ns=self.arrival_ns,
            size_bytes=self.size_bytes,
            flow_index=self.flow_index,
            flow_tuples=flow_cols,
            priority=(
                self.priority
                if self.priority is not None
                else np.zeros(0, dtype=np.int64)
            ),
            name=np.array(self.name),
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            flows = [
                FlowKey(int(r[0]), int(r[1]), int(r[2]), int(r[3]), int(r[4]))
                for r in data["flow_tuples"]
            ]
            priority = data["priority"]
            return Trace(
                arrival_ns=data["arrival_ns"],
                size_bytes=data["size_bytes"],
                flow_index=data["flow_index"],
                flows=flows,
                priority=None if priority.size == 0 else priority,
                name=str(data["name"]),
            )
