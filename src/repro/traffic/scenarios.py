"""Scenario builders for the paper's named experiments.

* :func:`microburst_scenario` — a short, intense burst on top of light
  background traffic (the Section 2 motivating regime).
* :func:`incast_scenario` — N synchronized senders converging on one port
  (the "indirect culprits" motivation).
* :func:`udp_burst_case_study` — the Section 7.2 queue-monitor case study:
  a ~9 Gbps TCP background flow, a 10 000-datagram UDP burst at 4 Gbps,
  then a late, low-rate TCP flow whose packets become the victims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.switch.packet import PROTO_TCP, PROTO_UDP, FlowKey
from repro.traffic.trace import Trace
from repro.units import DEFAULT_LINK_RATE_BPS, GBPS, NS_PER_SEC


def _cbr_arrivals(
    start_ns: int,
    rate_bps: float,
    packet_bytes: int,
    count: int,
    rng: Optional[np.random.Generator] = None,
    jitter_ns: int = 0,
) -> np.ndarray:
    """Constant-bit-rate arrival times with optional jitter."""
    gap_ns = packet_bytes * 8 * NS_PER_SEC / rate_bps
    arrivals = start_ns + (np.arange(count) * gap_ns).astype(np.int64)
    if jitter_ns and rng is not None:
        arrivals = arrivals + rng.integers(0, jitter_ns + 1, count)
        arrivals.sort()
    return arrivals


def _single_flow_trace(
    flow: FlowKey,
    arrivals: np.ndarray,
    packet_bytes: int,
    name: str,
    priority: int = 0,
) -> Trace:
    n = len(arrivals)
    return Trace(
        arrival_ns=np.asarray(arrivals, dtype=np.int64),
        size_bytes=np.full(n, packet_bytes, dtype=np.int64),
        flow_index=np.zeros(n, dtype=np.int64),
        flows=[flow],
        priority=None if priority == 0 else np.full(n, priority, dtype=np.int64),
        name=name,
    )


def microburst_scenario(
    burst_flows: int = 8,
    burst_packets_per_flow: int = 250,
    packet_bytes: int = 1500,
    burst_start_ns: int = 1_000_000,
    burst_rate_bps: int = 40 * GBPS,
    background_rate_bps: int = 5 * GBPS,
    duration_ns: int = 5_000_000,
    seed: int = 7,
) -> Trace:
    """A microburst lasting 10s-100s of microseconds over light background.

    ``burst_flows`` flows each blast ``burst_packets_per_flow`` MTU packets
    at an aggregate rate well above the 10 Gbps drain, creating the classic
    short-lived queue spike of Section 2 / reference [35].
    """
    rng = np.random.default_rng(seed)
    traces: List[Trace] = []
    bg_flow = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
    bg_count = int(background_rate_bps * duration_ns / NS_PER_SEC / (packet_bytes * 8))
    traces.append(
        _single_flow_trace(
            bg_flow,
            _cbr_arrivals(0, background_rate_bps, packet_bytes, bg_count, rng, 800),
            packet_bytes,
            "background",
        )
    )
    per_flow_rate = burst_rate_bps / burst_flows
    for i in range(burst_flows):
        flow = FlowKey.from_strings("10.0.1.%d" % (i + 1), "10.1.0.1", 6000 + i, 80)
        arrivals = _cbr_arrivals(
            burst_start_ns,
            per_flow_rate,
            packet_bytes,
            burst_packets_per_flow,
            rng,
            400,
        )
        traces.append(
            _single_flow_trace(flow, arrivals, packet_bytes, f"burst-{i}")
        )
    return Trace.merge(traces, name="microburst")


def incast_scenario(
    fan_in: int = 32,
    response_bytes: int = 64_000,
    packet_bytes: int = 1500,
    start_ns: int = 100_000,
    sender_rate_bps: int = 1 * GBPS,
    sync_spread_ns: int = 20_000,
    seed: int = 11,
) -> Trace:
    """TCP-incast-like synchronized responses from ``fan_in`` servers.

    All senders begin within ``sync_spread_ns`` of each other, modelling
    the barrier-synchronized partition/aggregate pattern; the union of the
    responses forms one congestion regime consisting almost entirely of a
    single application's traffic (the "indirect culprit" showcase).
    """
    rng = np.random.default_rng(seed)
    traces: List[Trace] = []
    packets_per_sender = max(1, response_bytes // packet_bytes)
    for i in range(fan_in):
        flow = FlowKey.from_strings(
            "10.2.%d.%d" % (i // 256, i % 256 + 1), "10.1.0.1", 7000 + i, 443
        )
        jittered_start = start_ns + int(rng.integers(0, sync_spread_ns + 1))
        arrivals = _cbr_arrivals(
            jittered_start, sender_rate_bps, packet_bytes, packets_per_sender, rng, 300
        )
        traces.append(_single_flow_trace(flow, arrivals, packet_bytes, f"incast-{i}"))
    return Trace.merge(traces, name="incast")


@dataclass
class BurstCaseStudy:
    """The composed Section 7.2 case-study trace and its named flows."""

    trace: Trace
    background_flow: FlowKey
    burst_flow: FlowKey
    new_tcp_flow: FlowKey
    burst_start_ns: int
    new_tcp_start_ns: int


def udp_burst_case_study(
    link_rate_bps: int = DEFAULT_LINK_RATE_BPS,
    background_fraction: float = 0.9,
    burst_datagrams: int = 10_000,
    burst_rate_bps: int = 4 * GBPS,
    new_tcp_rate_bps: float = 0.5 * GBPS,
    packet_bytes: int = 1500,
    burst_start_ns: int = 2_000_000,
    new_tcp_delay_ns: int = 3_000_000,
    duration_ns: int = 60_000_000,
    seed: int = 23,
) -> BurstCaseStudy:
    """Build the queue-monitor case study of Section 7.2.

    One server sends a TCP background flow limited to ~90 % of the link
    (9 Gbps).  Another sends a burst of 10 000 datagrams at 4 Gbps — which
    drives the queue far above its steady level — then, after a short
    delay, starts a low-rate (0.5 Gbps) TCP flow whose packets are the
    victims to diagnose.
    """
    rng = np.random.default_rng(seed)
    background_rate = background_fraction * link_rate_bps

    background_flow = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5001, 80, PROTO_TCP)
    burst_flow = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5002, 9999, PROTO_UDP)
    new_tcp_flow = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5003, 443, PROTO_TCP)

    bg_count = int(background_rate * duration_ns / NS_PER_SEC / (packet_bytes * 8))
    background = _single_flow_trace(
        background_flow,
        _cbr_arrivals(0, background_rate, packet_bytes, bg_count, rng, 600),
        packet_bytes,
        "tcp-background",
    )
    burst = _single_flow_trace(
        burst_flow,
        _cbr_arrivals(
            burst_start_ns, burst_rate_bps, packet_bytes, burst_datagrams, rng, 200
        ),
        packet_bytes,
        "udp-burst",
    )
    new_tcp_start = burst_start_ns + new_tcp_delay_ns
    new_tcp_count = int(
        new_tcp_rate_bps
        * (duration_ns - new_tcp_start)
        / NS_PER_SEC
        / (packet_bytes * 8)
    )
    new_tcp = _single_flow_trace(
        new_tcp_flow,
        _cbr_arrivals(
            new_tcp_start, new_tcp_rate_bps, packet_bytes, new_tcp_count, rng, 600
        ),
        packet_bytes,
        "new-tcp",
    )
    trace = Trace.merge([background, burst, new_tcp], name="udp-burst-case-study")
    return BurstCaseStudy(
        trace=trace,
        background_flow=background_flow,
        burst_flow=burst_flow,
        new_tcp_flow=new_tcp_flow,
        burst_start_ns=burst_start_ns,
        new_tcp_start_ns=new_tcp_start,
    )
