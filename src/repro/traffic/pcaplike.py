"""A minimal binary packet-record format ("pqtrace").

The paper's artifact ships pcap handling for its replayed traces; this
reproduction defines a compact, self-describing binary format so traces
can move between tools and runs without pulling in a pcap dependency.

Layout (little-endian):

    header:  magic "PQTR" | u16 version | u16 reserved | u64 count
    record:  u64 arrival_ns | u32 size_bytes | u32 src_ip | u32 dst_ip
             | u16 src_port | u16 dst_port | u8 proto | u8 priority
             | u16 padding

Records are fixed-width (28 bytes) so readers can seek and slice.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.errors import DecodeError
from repro.switch.packet import FlowKey
from repro.traffic.trace import Trace

MAGIC = b"PQTR"
VERSION = 1
_HEADER = struct.Struct("<4sHHQ")
_RECORD = struct.Struct("<QIIIHHBBH")
RECORD_BYTES = _RECORD.size


def write_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Serialize a trace; returns the number of records written."""
    path = Path(path)
    priority = trace.priority
    with open(path, "wb") as out:
        out.write(_HEADER.pack(MAGIC, VERSION, 0, len(trace)))
        for i in range(len(trace)):
            flow = trace.flows[int(trace.flow_index[i])]
            out.write(
                _RECORD.pack(
                    int(trace.arrival_ns[i]),
                    int(trace.size_bytes[i]),
                    flow.src_ip,
                    flow.dst_ip,
                    flow.src_port,
                    flow.dst_port,
                    flow.proto,
                    int(priority[i]) if priority is not None else 0,
                    0,
                )
            )
    return len(trace)


def read_trace(path: Union[str, Path], name: str = "pqtrace") -> Trace:
    """Deserialize a trace written by :func:`write_trace`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise DecodeError(f"{path}: truncated header")
    magic, version, _reserved, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise DecodeError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise DecodeError(f"{path}: unsupported version {version}")
    expected = _HEADER.size + count * RECORD_BYTES
    if len(data) < expected:
        raise DecodeError(
            f"{path}: truncated body ({len(data)} bytes, expected {expected})"
        )

    arrival = np.empty(count, dtype=np.int64)
    sizes = np.empty(count, dtype=np.int64)
    flow_index = np.empty(count, dtype=np.int64)
    priority = np.zeros(count, dtype=np.int64)
    flows: List[FlowKey] = []
    flow_ids: Dict[tuple, int] = {}
    offset = _HEADER.size
    for i in range(count):
        (
            arrival_ns,
            size_bytes,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            prio,
            _pad,
        ) = _RECORD.unpack_from(data, offset)
        offset += RECORD_BYTES
        key = (src_ip, dst_ip, src_port, dst_port, proto)
        if key not in flow_ids:
            flow_ids[key] = len(flows)
            flows.append(FlowKey(src_ip, dst_ip, src_port, dst_port, proto))
        arrival[i] = arrival_ns
        sizes[i] = size_bytes
        flow_index[i] = flow_ids[key]
        priority[i] = prio

    return Trace(
        arrival_ns=arrival,
        size_bytes=sizes,
        flow_index=flow_index,
        flows=flows,
        priority=priority if priority.any() else None,
        name=name,
    )


def trace_file_bytes(num_records: int) -> int:
    """On-disk size of a trace with ``num_records`` packets."""
    if num_records < 0:
        raise ValueError(f"negative record count: {num_records}")
    return _HEADER.size + num_records * RECORD_BYTES
