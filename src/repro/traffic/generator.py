"""Poisson workload generator.

Reproduces the trace synthesis of Section 7.1: "Flows and packets arrive
according to Poisson processes", with flow sizes drawn from a configured
distribution, scaled so that the offered load on the bottleneck port
oscillates around (and during bursts above) the 10 Gbps drain rate —
the condition under which the paper's queue depths of 1k-20k+ build up.

Within a flow, packets are spaced by an exponential inter-packet gap whose
mean corresponds to the flow's pacing rate; every packet also receives a
small random jitter, modelling the end-host/link randomization the paper
relies on for near-random entry into time-window cells (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.switch.packet import PROTO_TCP, FlowKey
from repro.traffic.arrivals import ArrivalProcess, PoissonArrivals
from repro.traffic.distributions import FlowSizeDistribution
from repro.traffic.trace import Trace
from repro.units import DEFAULT_LINK_RATE_BPS, NS_PER_SEC

if TYPE_CHECKING:
    from repro.switch.records import RecordBatch


@dataclass
class WorkloadConfig:
    """Parameters of a Poisson workload.

    Attributes
    ----------
    load:
        Average offered load as a fraction of ``link_rate_bps``.  Values
        near or above 1.0 create the sustained congestion regimes the
        paper studies.
    flow_pacing_rate_bps:
        Mean sending rate of an individual flow.  Smaller values spread a
        flow's packets over time; larger values make flows burstier.
    jitter_ns:
        Uniform per-packet arrival jitter amplitude.
    duration_ns:
        Trace length (arrival horizon).
    """

    load: float = 1.1
    link_rate_bps: int = DEFAULT_LINK_RATE_BPS
    duration_ns: int = 20_000_000  # 20 ms
    flow_pacing_rate_bps: int = 2_000_000_000  # 2 Gbps per active flow
    jitter_ns: int = 500
    subnet: int = 0x0A000000  # 10.0.0.0/8
    proto: int = PROTO_TCP
    priority: int = 0
    #: Per-flow inter-packet arrival model.  None = Poisson gaps at the
    #: flow pacing rate; pass e.g. an OnOffArrivals for bursty flows.
    arrival_process: Optional[ArrivalProcess] = None

    def __post_init__(self) -> None:
        if self.load <= 0:
            raise ValueError(f"non-positive load: {self.load}")
        if self.duration_ns <= 0:
            raise ValueError(f"non-positive duration: {self.duration_ns}")
        if self.flow_pacing_rate_bps <= 0:
            raise ValueError("non-positive flow pacing rate")


class PoissonWorkload:
    """Generates traces with Poisson flow arrivals.

    Parameters
    ----------
    distribution:
        The flow-size / packet-size distribution (WS, DM, UW-like...).
    config:
        Load and timing parameters.
    seed:
        RNG seed; identical seeds give identical traces.
    """

    def __init__(
        self,
        distribution: FlowSizeDistribution,
        config: Optional[WorkloadConfig] = None,
        seed: int = 1,
    ) -> None:
        self.distribution = distribution
        self.config = config or WorkloadConfig()
        self.seed = seed

    #: Safety cap on the number of flows one trace may contain.
    MAX_FLOWS = 500_000

    def generate(self) -> Trace:
        """Build a trace whose in-window offered load matches the target.

        With heavy-tailed flow sizes, the sample mean of a small flow
        population sits far below the distribution mean, so fixing the
        flow count from the analytic arrival rate badly under-loads short
        traces.  Instead, flows (with uniform start times, the conditional
        distribution of Poisson arrivals) are added until the byte budget
        ``load * link_rate * duration`` is reached.  Packet trains are
        trimmed at the horizon — a long-lived elephant only contributes
        the bytes its pacing rate fits into the window, as in a real
        capture.
        """
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        target_bytes = cfg.load * cfg.link_rate_bps * cfg.duration_ns / NS_PER_SEC / 8

        flows: List[FlowKey] = []
        arrival_parts: List[np.ndarray] = []
        size_parts: List[np.ndarray] = []
        index_parts: List[np.ndarray] = []
        total_bytes = 0.0
        while total_bytes < target_bytes and len(flows) < self.MAX_FLOWS:
            start_ns = int(rng.integers(0, cfg.duration_ns))
            flow_bytes = int(self.distribution.sample_flow_bytes(rng, 1)[0])
            sizes = self._packetize(rng, flow_bytes, cfg.duration_ns - start_ns)
            if len(sizes) == 0:
                continue
            gaps = self._inter_packet_gaps(rng, sizes)
            arrivals = start_ns + np.cumsum(gaps)
            if cfg.jitter_ns > 0:
                arrivals = arrivals + rng.integers(0, cfg.jitter_ns + 1, len(sizes))
            in_window = arrivals < cfg.duration_ns
            if not in_window.any():
                continue
            arrivals = arrivals[in_window]
            sizes = sizes[in_window]
            index = len(flows)
            flows.append(self._flow_key(rng, index))
            arrival_parts.append(arrivals.astype(np.int64))
            size_parts.append(sizes)
            index_parts.append(np.full(len(sizes), index, dtype=np.int64))
            total_bytes += float(sizes.sum())

        arrival = np.concatenate(arrival_parts)
        order = np.argsort(arrival, kind="stable")
        trace = Trace(
            arrival_ns=arrival[order],
            size_bytes=np.concatenate(size_parts)[order],
            flow_index=np.concatenate(index_parts)[order],
            flows=flows,
            priority=None,
            name=f"poisson-{getattr(self.distribution, 'name', 'flows')}",
        )
        return trace

    def generate_records(
        self,
        rate_bps: Optional[int] = None,
        capacity_pkts: Optional[int] = None,
    ) -> "Tuple[Trace, RecordBatch, int]":
        """Generate a trace and queue it, columnar end to end.

        Convenience front door for the fused ingest tier: the generated
        trace's arrival/size/flow-index columns flow straight through the
        vectorised FIFO (:func:`repro.switch.fastpath.fifo_record_batch`)
        into a structured :class:`~repro.switch.records.RecordBatch` —
        no per-packet Python object is built anywhere on the way.
        Returns ``(trace, batch, drops)``.
        """
        from repro.switch.fastpath import fifo_record_batch

        trace = self.generate()
        rate = self.config.link_rate_bps if rate_bps is None else rate_bps
        batch, drops = fifo_record_batch(trace, rate, capacity_pkts)
        return trace, batch, drops

    # -- helpers -------------------------------------------------------------

    def _flow_key(self, rng: np.random.Generator, index: int) -> FlowKey:
        cfg = self.config
        src = cfg.subnet | int(rng.integers(1, 1 << 16))
        dst = cfg.subnet | (1 << 23) | int(rng.integers(1, 1 << 16))
        sport = int(rng.integers(1024, 65536))
        dport = int(rng.integers(1, 1024))
        return FlowKey(src, dst, sport, dport, cfg.proto)

    def _packetize(
        self,
        rng: np.random.Generator,
        flow_bytes: int,
        horizon_ns: Optional[int] = None,
    ) -> np.ndarray:
        """Split a flow's bytes into on-wire packets.

        ``horizon_ns`` bounds how many packets the flow's pacing rate can
        emit before the trace ends, so elephant flows do not materialize
        packet trains far beyond the window just to throw them away.
        """
        typical = self.distribution.typical_packet_bytes
        est_packets = max(1, -(-flow_bytes // typical))
        if horizon_ns is not None:
            pacing_bytes = self.config.flow_pacing_rate_bps * horizon_ns / NS_PER_SEC / 8
            # Factor 2 of slack: exponential gaps undershoot half the time.
            cap = max(1, int(2 * pacing_bytes / typical))
            est_packets = min(est_packets, cap)
        sizes = self.distribution.sample_packet_bytes(rng, est_packets)
        # Trim so the byte total roughly matches the flow size.
        total = np.cumsum(sizes)
        cut = int(np.searchsorted(total, flow_bytes, side="left")) + 1
        return sizes[:cut]

    def _inter_packet_gaps(
        self, rng: np.random.Generator, sizes: np.ndarray
    ) -> np.ndarray:
        """Per-flow inter-packet gaps from the configured arrival model."""
        process = self.config.arrival_process
        if process is None:
            process = PoissonArrivals(self.config.flow_pacing_rate_bps)
        return process.gaps_ns(rng, sizes)
