"""Closed-loop (TCP-like) sources, co-simulated with the switch.

The paper's case study (§7.2) runs a real TCP background flow, whose
congestion control keeps the bottleneck queue *standing* long after the
UDP burst ends — that feedback is why their queuing persists 76x the
burst length, where an open-loop model drains within a few burst
lengths.

:class:`ClosedLoopSender` implements window-based AIMD congestion
control over the event-driven simulator: a fixed propagation RTT, one
MSS-sized packet per send, acknowledgements delivered half an RTT after
the packet dequeues (via an egress hook), additive increase per ACK,
multiplicative decrease on drop.  It is a rate-dynamics model, not a
byte-exact TCP — exactly the fidelity the case study's queue behaviour
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.switch.packet import FlowKey, Packet
from repro.switch.port import EgressPort
from repro.switch.switchsim import Switch


@dataclass
class SenderStats:
    sent: int = 0
    acked: int = 0
    lost: int = 0
    cwnd_max: float = 0.0


class ClosedLoopSender:
    """One AIMD flow injecting into a switch port.

    Parameters
    ----------
    switch / port:
        The simulator and the egress port the flow traverses (the ACK
        path hooks this port's egress pipeline).
    flow:
        The sender's 5-tuple.
    rtt_ns:
        Two-way propagation delay, excluding queuing.
    cwnd_limit:
        Cap on the congestion window in packets.  The paper's background
        flow is "limited to ~90% of the link capacity"; capping the
        window at ``0.9 * rtt * rate / (8 * mss)`` achieves that.
    """

    def __init__(
        self,
        switch: Switch,
        port: EgressPort,
        flow: FlowKey,
        rtt_ns: int = 100_000,
        mss_bytes: int = 1500,
        initial_cwnd: float = 10.0,
        cwnd_limit: Optional[float] = None,
        ssthresh: float = 64.0,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        priority: int = 0,
    ) -> None:
        if rtt_ns <= 0:
            raise ValueError(f"non-positive RTT: {rtt_ns}")
        if mss_bytes <= 0:
            raise ValueError(f"non-positive MSS: {mss_bytes}")
        if initial_cwnd < 1:
            raise ValueError(f"cwnd must be >= 1, got {initial_cwnd}")
        if cwnd_limit is not None and cwnd_limit < 1:
            raise ValueError(f"cwnd limit must be >= 1, got {cwnd_limit}")
        self.switch = switch
        self.port = port
        self.flow = flow
        self.rtt_ns = rtt_ns
        self.mss_bytes = mss_bytes
        self.cwnd = initial_cwnd
        self.cwnd_limit = cwnd_limit
        self.ssthresh = ssthresh
        self.start_ns = start_ns
        self.stop_ns = stop_ns
        self.priority = priority
        self.in_flight = 0
        self.stats = SenderStats()
        self._seq = 0
        self._started = False
        port.add_egress_hook(self._egress_hook)

    # -- wiring -----------------------------------------------------------

    def start(self) -> None:
        """Arm the sender; call before Switch.run()."""
        if self._started:
            raise RuntimeError("sender already started")
        self._started = True
        self.switch.events.schedule(
            self.start_ns, lambda: self._fill_window(self.start_ns)
        )

    def _active(self, now_ns: int) -> bool:
        return now_ns >= self.start_ns and (
            self.stop_ns is None or now_ns < self.stop_ns
        )

    # -- the AIMD loop ------------------------------------------------------

    def _effective_cwnd(self) -> float:
        if self.cwnd_limit is not None:
            return min(self.cwnd, self.cwnd_limit)
        return self.cwnd

    def _fill_window(self, now_ns: int) -> None:
        if not self._active(now_ns):
            return
        while self.in_flight < int(self._effective_cwnd()):
            self._send_one(now_ns)

    def _send_one(self, now_ns: int) -> None:
        packet = Packet(
            self.flow,
            self.mss_bytes,
            now_ns,
            priority=self.priority,
            seq=self._seq,
        )
        packet.egress_spec = self.port.port_id
        self._seq += 1
        self.in_flight += 1
        self.stats.sent += 1
        self.switch.events.schedule(now_ns, lambda p=packet: self._deliver(p))

    def _deliver(self, packet: Packet) -> None:
        self.switch.stats.rx_packets += 1
        if not self.port.receive(packet, packet.arrival_ns, self.switch.events):
            self.switch.stats.drops += 1
            # Loss detected one RTT after the drop (timeout model).
            self.switch.events.schedule(
                packet.arrival_ns + self.rtt_ns,
                lambda: self._on_loss(packet.arrival_ns + self.rtt_ns),
            )

    def _egress_hook(self, packet: Packet) -> None:
        """ACK path: fires half an RTT after our packet dequeues."""
        if packet.flow is not self.flow and packet.flow != self.flow:
            return
        ack_time = packet.deq_timestamp + self.rtt_ns // 2
        self.switch.events.schedule(ack_time, lambda: self._on_ack(ack_time))

    def _on_ack(self, now_ns: int) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        self.stats.acked += 1
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0  # slow start
        else:
            self.cwnd += 1.0 / max(self.cwnd, 1.0)  # congestion avoidance
        if self.cwnd > self.stats.cwnd_max:
            self.stats.cwnd_max = self.cwnd
        self._fill_window(now_ns)

    def _on_loss(self, now_ns: int) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        self.stats.lost += 1
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = max(2.0, self.cwnd / 2)  # multiplicative decrease
        self._fill_window(now_ns)

    # -- derived quantities ---------------------------------------------------

    def bdp_packets(self, link_rate_bps: int) -> float:
        """Bandwidth-delay product of the path in MSS-sized packets."""
        return link_rate_bps * self.rtt_ns / 1e9 / (8 * self.mss_bytes)
