"""Workload generation: the traces the paper evaluates on.

The paper drives its Tofino testbed with the University of Wisconsin data
center trace (UW) plus two synthetic traces modelled after well-known flow
size distributions — web search (DCTCP) and data mining (VL2) — with
Poisson flow/packet arrivals.  This package provides synthetic equivalents
of all three, plus the scenario builders used in the microburst, incast,
and queue-monitor case-study experiments.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    ConstantArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.traffic.closedloop import ClosedLoopSender
from repro.traffic.distributions import (
    DataMiningDistribution,
    EmpiricalCdfDistribution,
    FlowSizeDistribution,
    UWLikeDistribution,
    WebSearchDistribution,
)
from repro.traffic.generator import PoissonWorkload, WorkloadConfig
from repro.traffic.scenarios import (
    BurstCaseStudy,
    incast_scenario,
    microburst_scenario,
    udp_burst_case_study,
)
from repro.traffic.trace import Trace

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "ClosedLoopSender",
    "FlowSizeDistribution",
    "WebSearchDistribution",
    "DataMiningDistribution",
    "UWLikeDistribution",
    "EmpiricalCdfDistribution",
    "PoissonWorkload",
    "WorkloadConfig",
    "Trace",
    "microburst_scenario",
    "incast_scenario",
    "udp_burst_case_study",
    "BurstCaseStudy",
]
