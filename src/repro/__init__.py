"""PrintQueue reproduction: performance diagnosis via queue measurement.

A pure-Python reproduction of *PrintQueue* (SIGCOMM 2022), including the
simulated programmable-switch substrate, the time-window and queue-monitor
data structures, the control-plane analysis program, the workload
generators, and the baseline systems (HashPipe, FlowRadar, linear-storage
telemetry) the paper compares against.

Quickstart::

    from repro import simulate_workload, PrintQueueConfig, QueryInterval

    run = simulate_workload("ws", duration_ns=20_000_000, load=1.2)
    victim = max(run.records, key=lambda r: r.queuing_delay)
    result = run.pq.query(
        interval=QueryInterval.for_victim(
            victim.enq_timestamp, victim.deq_timestamp
        )
    )
    for flow, count in result.estimate.top(5):
        print(flow, count)
"""

from repro.core import (
    AnalysisProgram,
    BatchQueryResult,
    ClassedQueueMonitor,
    CulpritReport,
    CulpritTaxonomy,
    Diagnoser,
    FlowEstimate,
    PrintQueue,
    PrintQueueConfig,
    PrintQueuePort,
    QueryInterval,
    QueryResult,
    QueueMonitor,
    TimeWindowSet,
)
from repro.engine import (
    CompiledQueryPlan,
    FusedIngestPipeline,
    IngestPipeline,
    ParallelSweep,
    SweepCell,
)
from repro.errors import QueryError
from repro.experiments import simulate_workload
from repro.faults import (
    CoverageReport,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.faults import profile as fault_profile
from repro.faults import profile_names as fault_profile_names
from repro.obs import Metrics, RunReport
from repro.store import (
    CompressedStore,
    MemoryStore,
    MmapStore,
    Recorder,
    RetentionPolicy,
    SnapshotStore,
    replay_analysis,
)
from repro.switch import FlowKey, Packet, RecordBatch, Switch
from repro.traffic import PoissonWorkload, Trace, WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "PrintQueueConfig",
    "PrintQueue",
    "PrintQueuePort",
    "AnalysisProgram",
    "TimeWindowSet",
    "QueueMonitor",
    "CulpritTaxonomy",
    "CulpritReport",
    "Diagnoser",
    "ClassedQueueMonitor",
    "FlowEstimate",
    "QueryInterval",
    "QueryResult",
    "BatchQueryResult",
    "QueryError",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "CoverageReport",
    "fault_profile",
    "fault_profile_names",
    "CompiledQueryPlan",
    "FusedIngestPipeline",
    "IngestPipeline",
    "Metrics",
    "ParallelSweep",
    "RunReport",
    "SweepCell",
    "SnapshotStore",
    "MemoryStore",
    "MmapStore",
    "CompressedStore",
    "RetentionPolicy",
    "Recorder",
    "replay_analysis",
    "FlowKey",
    "Packet",
    "RecordBatch",
    "Switch",
    "Trace",
    "PoissonWorkload",
    "WorkloadConfig",
    "simulate_workload",
    "__version__",
]
