"""Units, constants, and conversions used throughout the reproduction.

All simulation timestamps are integer nanoseconds, matching the
nanosecond-granularity clock of the Tofino switch that PrintQueue's
bit-shift arithmetic (trimmed timestamps, cycle IDs) assumes.

Rates are expressed in bits per second.  Transmission delays are computed
with exact integer arithmetic at picosecond resolution internally and
rounded to nanoseconds only when a timestamp is emitted, so long
simulations stay deterministic and drift-free.
"""

from __future__ import annotations

# --- Time -----------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000
PS_PER_NS = 1_000

# --- Rates ----------------------------------------------------------------

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000

#: Default link rate used throughout the paper's evaluation (Section 7.1).
DEFAULT_LINK_RATE_BPS = 10 * GBPS

# --- Packet sizes ---------------------------------------------------------

#: Minimum Ethernet frame size, used for ``min_pkt_tx_delay`` (Section 4.2).
MIN_PACKET_BYTES = 64
#: Conventional MTU-sized payload packet.
MTU_BYTES = 1500

# --- Hardware budget constants (documented model assumptions) --------------
#
# These constants only anchor the *percentages and ratios* reported by the
# overhead figures (Fig. 13-15); the paper reports relative numbers, so any
# consistent budget reproduces the shapes.

#: SRAM budget available to a Tofino pipeline for stateful structures, in
#: bytes.  Tofino-1 exposes roughly 120 Mbit of match/stateful SRAM per
#: pipe; we round to 15 MiB.
TOFINO_PIPE_SRAM_BYTES = 15 * 1024 * 1024

#: Sustainable control-plane register read throughput over PCIe in entries
#: per second.  The paper plots a "data exchange limit" line (Fig. 13); this
#: constant calibrates it (their analysis-program front end reads register
#: entries via the Tofino driver at a few million entries/s).
PCIE_REGISTER_READS_PER_SEC = 4_000_000

#: Bytes transferred per polled register entry (entry payload + descriptor
#: overhead on the PCIe transaction), used to express overhead in MB/s.
PCIE_BYTES_PER_ENTRY = 16


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, rounding up."""
    return (bits + 7) // 8


def tx_delay_ps(size_bytes: int, rate_bps: int) -> int:
    """Exact transmission delay of ``size_bytes`` at ``rate_bps``, in ps.

    Uses integer arithmetic: ``ps = bytes * 8 * 1e12 / rate``.  The result
    is exact whenever ``rate_bps`` divides the numerator, which holds for
    all the round link rates used in the paper (10/40 Gbps).
    """
    if size_bytes < 0:
        raise ValueError(f"negative packet size: {size_bytes}")
    if rate_bps <= 0:
        raise ValueError(f"non-positive link rate: {rate_bps}")
    return (size_bytes * 8 * 1_000_000_000_000) // rate_bps


def tx_delay_ns(size_bytes: int, rate_bps: int) -> int:
    """Transmission delay in integer nanoseconds, rounded half-up."""
    ps = tx_delay_ps(size_bytes, rate_bps)
    return (ps + PS_PER_NS // 2) // PS_PER_NS


def min_pkt_tx_delay_ns(rate_bps: int, min_packet_bytes: int = MIN_PACKET_BYTES) -> int:
    """Transmission delay of a minimum-sized packet — the ``d`` of Theorem 3."""
    return max(1, tx_delay_ns(min_packet_bytes, rate_bps))


def ns_to_sec(ns: int) -> float:
    """Convert integer nanoseconds to float seconds (for reporting only)."""
    return ns / NS_PER_SEC


def pps(rate_bps: int, packet_bytes: int) -> float:
    """Packets per second for back-to-back packets of a given size."""
    if packet_bytes <= 0:
        raise ValueError(f"non-positive packet size: {packet_bytes}")
    return rate_bps / (packet_bytes * 8)
