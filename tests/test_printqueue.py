"""Tests for PrintQueuePort / PrintQueue orchestration (Figure 3)."""

import pytest

from repro.core.config import PrintQueueConfig
from repro.core.printqueue import (
    PrintQueue,
    PrintQueuePort,
    delay_threshold_trigger,
    depth_threshold_trigger,
)
from repro.core.queries import QueryInterval
from repro.errors import ConfigError
from repro.switch.packet import FlowKey, Packet
from repro.switch.port import EgressPort
from repro.switch.switchsim import Switch
from repro.units import GBPS

FLOW_A = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
FLOW_B = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5001, 80)


def small_config():
    return PrintQueueConfig(m0=4, k=6, alpha=1, T=3)


class TestHooks:
    def test_attach_to_switch(self):
        config = small_config()
        pq = PrintQueue(config, port_ids=[0])
        port = EgressPort(0, 10 * GBPS)
        switch = Switch([port])
        pq.attach(switch.ports.values())
        packets = [Packet(FLOW_A, 1500, 0) for _ in range(10)]
        switch.run_trace(packets)
        assert pq.port(0).packets_seen == 10
        # All updates landed in some bank (polls may have flipped mid-run).
        total_updates = sum(b.updates for b in pq.port(0).analysis.tw_banks.banks)
        assert total_updates == 10
        assert pq.port(0).analysis.queue_monitor.top >= 0

    def test_unconfigured_port_ignored(self):
        config = small_config()
        pq = PrintQueue(config, port_ids=[1])  # only port 1 enabled
        ports = [EgressPort(0, 10 * GBPS), EgressPort(1, 10 * GBPS)]
        switch = Switch(ports)
        pq.attach(switch.ports.values())
        packets = [Packet(FLOW_A, 1500, 0) for _ in range(5)]
        for p in packets:
            p.egress_spec = 0
        switch.run_trace(packets)
        assert pq.port(1).packets_seen == 0

    def test_queue_monitor_sees_rises_and_drains(self):
        config = small_config()
        pq = PrintQueue(config, port_ids=[0])
        port = EgressPort(0, 10 * GBPS)
        switch = Switch([port])
        pq.attach(switch.ports.values())
        # 5 simultaneous arrivals build depth 5, then fully drain.
        switch.run_trace([Packet(FLOW_A, 1500, 0) for _ in range(5)])
        qm = pq.port(0).analysis.queue_monitor
        assert qm.top == 0  # fully drained
        assert qm.snapshot(0).walk() == []


class TestTriggers:
    def test_delay_threshold(self):
        trig = delay_threshold_trigger(1000)
        p = Packet(FLOW_A, 100, 0)
        p.deq_timedelta = 500
        assert not trig(p)
        p.deq_timedelta = 1500
        assert trig(p)

    def test_depth_threshold(self):
        trig = depth_threshold_trigger(3)
        p = Packet(FLOW_A, 100, 0)
        p.enq_qdepth = 2
        assert not trig(p)
        p.enq_qdepth = 3
        assert trig(p)

    def test_trigger_fires_dp_query(self):
        config = small_config()
        pq_port = PrintQueuePort(
            config,
            trigger=depth_threshold_trigger(3),
            model_dp_read_cost=False,
        )
        port = EgressPort(0, 10 * GBPS)
        port.add_enqueue_hook(pq_port.on_enqueue)
        port.add_egress_hook(pq_port.on_dequeue)
        switch = Switch([port])
        switch.run_trace([Packet(FLOW_A, 1500, 0) for _ in range(6)])
        # Packets with enq_qdepth in {3, 4, 5} triggered queries.
        assert len(pq_port.dp_results) == 3
        result = pq_port.dp_results[0]
        assert result.estimate.total > 0


class TestEventStreamInterface:
    def test_polls_fire_on_schedule(self):
        config = small_config()  # set period = 2^(4+6)+2^(5+6)+2^(6+6)
        pq = PrintQueuePort(config)
        set_period = config.set_period_ns
        for i in range(10):
            pq.process_dequeue(FLOW_A, i * set_period // 2, depth_after=0)
        assert len(pq.analysis.tw_snapshots) >= 3

    def test_finish_flushes(self):
        pq = PrintQueuePort(small_config())
        pq.process_dequeue(FLOW_A, 100, depth_after=0)
        assert pq.analysis.tw_snapshots == []
        pq.finish(200)
        assert len(pq.analysis.tw_snapshots) >= 1
        estimate = pq.query(interval=QueryInterval(0, 200)).estimate
        assert estimate[FLOW_A] == pytest.approx(1.0)


class TestMultiPort:
    def test_rounded_ports(self):
        config = small_config()
        assert PrintQueue(config, port_ids=[1, 2, 3]).rounded_ports == 4
        assert PrintQueue(config, port_ids=[0]).rounded_ports == 1
        assert PrintQueue(config, port_ids=list(range(5))).rounded_ports == 8

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            PrintQueue(small_config(), port_ids=[1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            PrintQueue(small_config(), port_ids=[])

    def test_ports_tracked_independently(self):
        config = small_config()
        pq = PrintQueue(config, port_ids=[0, 1])
        ports = [EgressPort(0, 10 * GBPS), EgressPort(1, 10 * GBPS)]
        switch = Switch(ports)
        pq.attach(switch.ports.values())
        a = Packet(FLOW_A, 1500, 0)
        a.egress_spec = 0
        b1 = Packet(FLOW_B, 1500, 0)
        b1.egress_spec = 1
        b2 = Packet(FLOW_B, 1500, 0)
        b2.egress_spec = 1
        switch.run_trace([a, b1, b2])
        assert pq.port(0).packets_seen == 1
        assert pq.port(1).packets_seen == 2
