"""End-to-end integration tests across the full stack.

These cover the paths the module-level tests cannot: the event-driven
switch feeding PrintQueue through real hooks, non-FIFO scheduling under
the time windows (the paper's scheduling-agnostic claim), the queue
monitor against the taxonomy oracle on real traffic, and the equivalence
of the fast-path harness with the event-driven pipeline.
"""

import numpy as np
import pytest

from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueue, PrintQueuePort
from repro.core.queries import QueryInterval
from repro.core.taxonomy import CulpritTaxonomy
from repro.experiments.runner import (
    drive_printqueue,
    run_trace_through_fifo,
    simulate_workload,
)
from repro.metrics.accuracy import precision_recall
from repro.switch.packet import FlowKey, Packet
from repro.switch.port import EgressPort
from repro.switch.queue import EgressQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.switchsim import Switch
from repro.switch.telemetry import GroundTruthRecorder
from repro.traffic.scenarios import incast_scenario, microburst_scenario
from repro.units import GBPS


def ws_config(**kw):
    defaults = dict(m0=10, k=10, alpha=1, T=3, min_packet_bytes=1500)
    defaults.update(kw)
    return PrintQueueConfig(**defaults)


class TestEventDrivenPipeline:
    def test_switch_hooks_to_query(self):
        """Microburst through the real switch; an async query over a
        victim's interval matches ground truth closely."""
        config = ws_config()
        pq = PrintQueue(config, port_ids=[0], d_ns=1200.0)
        recorder = GroundTruthRecorder()
        port = EgressPort(0, 10 * GBPS)
        switch = Switch([port])
        pq.attach(switch.ports.values())
        port.add_egress_hook(recorder.hook)

        trace = microburst_scenario(burst_packets_per_flow=100)
        switch.run_trace(trace.packets())
        end = recorder.records[-1].deq_timestamp + 1
        pq.finish(end)

        victim = max(recorder.records, key=lambda r: r.queuing_delay)
        interval = QueryInterval.for_victim(
            victim.enq_timestamp, victim.deq_timestamp
        )
        estimate = pq.port(0).query(interval=interval).estimate
        truth = CulpritTaxonomy(list(recorder.records)).direct(victim)
        score = precision_recall(estimate, truth)
        assert score.precision > 0.7
        assert score.recall > 0.7

    def test_fastpath_harness_matches_event_pipeline(self):
        """The offline driver and the event-driven hooks produce the same
        time-window state for the same trace."""
        config = ws_config()
        trace = incast_scenario(fan_in=8, response_bytes=30_000)

        # Path A: event-driven.
        pq_a = PrintQueue(config, port_ids=[0], d_ns=1200.0)
        recorder = GroundTruthRecorder()
        port = EgressPort(0, 10 * GBPS)
        switch = Switch([port])
        pq_a.attach(switch.ports.values())
        port.add_egress_hook(recorder.hook)
        switch.run_trace(trace.packets())
        end = recorder.records[-1].deq_timestamp + 1
        pq_a.finish(end)

        # Path B: offline fast path.
        records, _ = run_trace_through_fifo(trace)
        pq_b = PrintQueuePort(config, d_ns=1200.0, model_dp_read_cost=False)
        drive_printqueue(records, pq_b)

        interval = QueryInterval(0, end)
        est_a = pq_a.port(0).query(interval=interval).estimate
        est_b = pq_b.query(interval=interval).estimate
        assert est_a.as_dict() == pytest.approx(est_b.as_dict())


class TestSchedulingAgnostic:
    def test_time_windows_under_strict_priority(self):
        """Section 4: time windows consume only dequeue timestamps, so
        they work unchanged under non-FIFO scheduling."""
        config = ws_config()
        queues = [EgressQueue(), EgressQueue()]
        sched = StrictPriorityScheduler(queues)
        port = EgressPort(0, 10 * GBPS, scheduler=sched)
        pq = PrintQueue(config, port_ids=[0], d_ns=1200.0)
        recorder = GroundTruthRecorder()
        switch = Switch([port])
        pq.attach(switch.ports.values())
        port.add_egress_hook(recorder.hook)

        flows = [
            FlowKey.from_strings("10.0.0.%d" % (i + 1), "10.1.0.1", 5000 + i, 80)
            for i in range(2)
        ]
        packets = []
        for i in range(400):
            # Low-priority bulk + high-priority interleave, oversubscribed.
            packets.append(Packet(flows[0], 1500, i * 600, priority=1))
            if i % 4 == 0:
                packets.append(Packet(flows[1], 1500, i * 600 + 10, priority=0))
        switch.run_trace(packets)
        end = recorder.records[-1].deq_timestamp + 1
        pq.finish(end)

        victim = max(recorder.records, key=lambda r: r.queuing_delay)
        assert victim.flow == flows[0]  # low priority suffers
        interval = QueryInterval.for_victim(
            victim.enq_timestamp, victim.deq_timestamp
        )
        estimate = pq.port(0).query(interval=interval).estimate
        truth = CulpritTaxonomy(list(recorder.records)).direct(victim)
        score = precision_recall(estimate, truth)
        assert score.recall > 0.6
        # High-priority traffic is correctly implicated as a direct culprit.
        assert estimate[flows[1]] > 0


class TestQueueMonitorOnRealTraffic:
    def test_matches_taxonomy_oracle(self):
        """Queue monitor survivors == taxonomy monotone-stack oracle at
        poll instants (granularity 1, lossless levels)."""
        run = simulate_workload(
            "ws", duration_ns=6_000_000, load=1.3, config=ws_config(), seed=13
        )
        analysis = run.pq.analysis
        snap = analysis.qm_snapshots[-1]
        got = analysis.original_culprits(snap.time_ns)
        want = run.taxonomy.original(snap.time_ns)
        score = precision_recall(got, want)
        assert score.precision > 0.95
        assert score.recall > 0.95


class TestAccuracyRegression:
    """Coarse accuracy bounds that lock in the reproduction's behaviour;
    failures here mean a core algorithm regressed."""

    def test_ws_async_band(self):
        run = simulate_workload(
            "ws", duration_ns=12_000_000, load=1.3, config=ws_config(), seed=3
        )
        victims = [
            i for i, r in enumerate(run.records) if r.enq_qdepth >= 1000
        ][:30]
        assert victims, "workload failed to build a 1k queue"
        from repro.experiments.evaluation import evaluate_async_queries

        scores = evaluate_async_queries(run.pq, run.taxonomy, run.records, victims)
        mean_p = np.mean([s.precision for s in scores])
        mean_r = np.mean([s.recall for s in scores])
        assert mean_p > 0.75
        assert mean_r > 0.6
