"""Tests for the Count-Min / Count sketch substrates."""

import random

import pytest

from repro.baselines.sketches import CountMinSketch, CountSketch
from repro.switch.packet import FlowKey


def flow(i):
    return FlowKey.from_strings(
        "10.0.%d.%d" % (i // 250, i % 250 + 1), "10.1.0.1", 5000 + (i % 60000), 80
    )


class TestCountMin:
    def test_exact_when_sparse(self):
        cms = CountMinSketch(width=1024, depth=4)
        cms.update(flow(0), 10)
        cms.update(flow(1), 20)
        assert cms.estimate(flow(0)) == 10
        assert cms.estimate(flow(1)) == 20

    def test_never_underestimates(self):
        cms = CountMinSketch(width=64, depth=3)
        rng = random.Random(1)
        truth = {}
        for _ in range(3000):
            f = flow(rng.randrange(400))
            truth[f] = truth.get(f, 0) + 1
            cms.update(f)
        for f, count in truth.items():
            assert cms.estimate(f) >= count

    def test_reset(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.update(flow(0))
        cms.reset()
        assert cms.estimate(flow(0)) == 0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)


class TestCountSketch:
    def test_exact_when_sparse(self):
        cs = CountSketch(width=1024, depth=5)
        cs.update(flow(0), 42)
        assert cs.estimate(flow(0)) == 42

    def test_small_bias_under_load(self):
        """The median estimator is unbiased: averaged over many flows the
        signed collisions roughly cancel."""
        cs = CountSketch(width=128, depth=5)
        rng = random.Random(2)
        truth = {}
        for _ in range(5000):
            f = flow(rng.randrange(300))
            truth[f] = truth.get(f, 0) + 1
            cs.update(f)
        errors = [cs.estimate(f) - c for f, c in truth.items()]
        mean_error = sum(errors) / len(errors)
        assert abs(mean_error) < 3.0

    def test_reset(self):
        cs = CountSketch(width=64, depth=3)
        cs.update(flow(0))
        cs.reset()
        assert cs.estimate(flow(0)) == 0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            CountSketch(width=0)
