"""Tests for the configuration advisor."""


from repro.core.advisor import Advice, Severity, advise, worst_severity
from repro.core.config import PrintQueueConfig


def codes(advice):
    return {a.code for a in advice}


class TestWorkloadMismatch:
    def test_paper_uw_config_clean(self):
        config = PrintQueueConfig(m0=6, k=12, alpha=2, T=4, min_packet_bytes=64)
        advice = advise(config, packet_interval_ns=110)
        assert "deep-windows-starved" not in codes(advice)
        assert worst_severity(advice) is not Severity.ERROR

    def test_paper_wsdm_config_clean(self):
        config = PrintQueueConfig(m0=10, k=12, alpha=1, T=4, min_packet_bytes=1500)
        advice = advise(config, packet_interval_ns=1200)
        assert worst_severity(advice) is not Severity.ERROR

    def test_starved_deep_windows_flagged(self):
        """The exact misconfiguration found during development: m0=6 with
        MTU packets at 10 Gbps (d = 1200 ns) starves windows 1..T-1."""
        config = PrintQueueConfig(m0=6, k=12, alpha=1, T=4)
        advice = advise(config, packet_interval_ns=1200)
        assert "deep-windows-starved" in codes(advice)
        assert worst_severity(advice) is Severity.ERROR

    def test_too_coarse_m0_flagged(self):
        config = PrintQueueConfig(m0=14, k=12, alpha=1, T=4)
        advice = advise(config, packet_interval_ns=110)
        assert "m0-too-coarse" in codes(advice)

    def test_tiny_coefficient_flagged(self):
        config = PrintQueueConfig(m0=6, k=12, alpha=3, T=6, min_packet_bytes=64)
        advice = advise(config, packet_interval_ns=300)
        assert "deep-coefficient-tiny" in codes(advice)


class TestResourceChecks:
    def test_infeasible_polling_flagged(self):
        config = PrintQueueConfig(m0=4, k=6, alpha=1, T=1)
        advice = advise(config)
        assert "polling-infeasible" in codes(advice)

    def test_sram_over_budget_flagged(self):
        config = PrintQueueConfig(m0=6, k=16, alpha=1, T=10, num_ports=16)
        advice = advise(config)
        assert "sram-over-budget" in codes(advice)

    def test_qm_overflow_flagged(self):
        config = PrintQueueConfig(qm_levels=1024)
        advice = advise(config, expected_max_depth=100_000)
        assert "qm-overflow" in codes(advice)

    def test_qm_granularity_considered(self):
        config = PrintQueueConfig(qm_levels=1024, qm_granularity=128)
        advice = advise(config, expected_max_depth=100_000)
        assert "qm-overflow" not in codes(advice)

    def test_horizon_info(self):
        config = PrintQueueConfig(m0=6, k=12, alpha=2, T=4)
        advice = advise(config, query_horizon_ns=10 * config.set_period_ns)
        assert "horizon-spans-snapshots" in codes(advice)


class TestSeverity:
    def test_worst_severity_ordering(self):
        advice = [
            Advice(Severity.INFO, "a", ""),
            Advice(Severity.ERROR, "b", ""),
            Advice(Severity.WARNING, "c", ""),
        ]
        assert worst_severity(advice) is Severity.ERROR
        assert worst_severity([]) is None

    def test_str_rendering(self):
        a = Advice(Severity.WARNING, "code-x", "something odd")
        assert "warning" in str(a) and "code-x" in str(a)
