"""Tests for the pqtrace binary format."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.traffic import pcaplike
from repro.traffic.distributions import WebSearchDistribution
from repro.traffic.generator import PoissonWorkload, WorkloadConfig
from repro.traffic.trace import Trace
from repro.switch.packet import FlowKey


def small_trace():
    flows = [
        FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80),
        FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5001, 80, 17),
    ]
    return Trace(
        arrival_ns=np.array([0, 100, 250], dtype=np.int64),
        size_bytes=np.array([64, 1500, 100], dtype=np.int64),
        flow_index=np.array([0, 1, 0], dtype=np.int64),
        flows=flows,
        priority=np.array([0, 3, 0], dtype=np.int64),
        name="small",
    )


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.pqtrace"
        count = pcaplike.write_trace(trace, path)
        assert count == 3
        loaded = pcaplike.read_trace(path)
        assert np.array_equal(loaded.arrival_ns, trace.arrival_ns)
        assert np.array_equal(loaded.size_bytes, trace.size_bytes)
        for i in range(3):
            assert (
                loaded.flows[loaded.flow_index[i]]
                == trace.flows[trace.flow_index[i]]
            )
        assert list(loaded.priority) == [0, 3, 0]

    def test_priority_omitted_when_all_zero(self, tmp_path):
        trace = small_trace()
        trace.priority = None
        path = tmp_path / "t.pqtrace"
        pcaplike.write_trace(trace, path)
        assert pcaplike.read_trace(path).priority is None

    def test_generated_workload_round_trip(self, tmp_path):
        workload = PoissonWorkload(
            WebSearchDistribution(),
            WorkloadConfig(load=0.8, duration_ns=2_000_000),
            seed=3,
        )
        trace = workload.generate()
        path = tmp_path / "ws.pqtrace"
        pcaplike.write_trace(trace, path)
        loaded = pcaplike.read_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.num_flows == trace.num_flows
        assert np.array_equal(loaded.arrival_ns, trace.arrival_ns)

    def test_file_size_formula(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.pqtrace"
        pcaplike.write_trace(trace, path)
        assert path.stat().st_size == pcaplike.trace_file_bytes(3)


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pqtrace"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(DecodeError):
            pcaplike.read_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.pqtrace"
        path.write_bytes(b"PQ")
        with pytest.raises(DecodeError):
            pcaplike.read_trace(path)

    def test_truncated_body(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.pqtrace"
        pcaplike.write_trace(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(DecodeError):
            pcaplike.read_trace(path)

    def test_bad_version(self, tmp_path):
        import struct

        path = tmp_path / "v9.pqtrace"
        path.write_bytes(struct.pack("<4sHHQ", b"PQTR", 9, 0, 0))
        with pytest.raises(DecodeError):
            pcaplike.read_trace(path)

    def test_negative_count_formula(self):
        with pytest.raises(ValueError):
            pcaplike.trace_file_bytes(-1)
