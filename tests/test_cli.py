"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.report import RunReport


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "ws"
        assert args.load == 1.2

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nonexistent"])


class TestOverheadCommand:
    def test_prints_budget(self, capsys):
        assert main(["overhead", "--ports", "4"]) == 0
        out = capsys.readouterr().out
        assert "SRAM" in out
        assert "feasible" in out

    def test_infeasible_config_flagged(self, capsys):
        # A tiny set period (small k, T=1) overwhelms the polling budget.
        assert main(["overhead", "--k", "6", "--T", "1", "--m0", "4"]) == 0
        assert "INFEASIBLE" in capsys.readouterr().out


class TestRunCommand:
    def test_end_to_end(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "ws",
                "--duration-ms",
                "6",
                "--load",
                "1.3",
                "--victims",
                "1",
                "--k",
                "10",
                "--T",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "direct culprits" in out
        assert "original culprits" in out


class TestScenarioCommand:
    def test_microburst_with_plot(self, capsys):
        code = main(
            ["scenario", "microburst", "--plot", "--victims", "1", "--k", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queue depth over time" in out
        assert "direct culprits" in out


class TestAdviseCommand:
    def test_clean_config(self, capsys):
        code = main(
            ["advise", "--m0", "10", "--packet-interval", "1200"]
        )
        assert code == 0
        assert "looks sound" in capsys.readouterr().out

    def test_bad_config_nonzero_exit(self, capsys):
        # m0=6 with MTU packet spacing starves the deep windows: error.
        code = main(["advise", "--m0", "6", "--packet-interval", "1200"])
        assert code == 1
        assert "deep-windows-starved" in capsys.readouterr().out

    def test_depth_and_horizon_flags(self, capsys):
        code = main(
            [
                "advise",
                "--m0",
                "10",
                "--packet-interval",
                "1200",
                "--max-depth",
                "100000",
                "--horizon-ms",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qm-overflow" in out
        assert "horizon-spans-snapshots" in out


class TestStatsCommand:
    ARGS = ["--workload", "ws", "--duration-ms", "2", "--k", "10"]

    def test_summary_format(self, capsys):
        assert main(["stats", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "time windows" in out
        assert "queue monitor" in out

    def test_json_counters_identical_across_engines(self, capsys):
        reports = {}
        for engine in ("scalar", "batched"):
            code = main(
                ["stats", *self.ARGS, "--format", "json", "--engine", engine]
            )
            assert code == 0
            reports[engine] = json.loads(capsys.readouterr().out)
        # Window-level collision/pass counters must not depend on the
        # ingest engine (only the timing metrics may differ).
        assert (
            reports["scalar"]["time_windows"] == reports["batched"]["time_windows"]
        )
        assert reports["scalar"]["queue_monitor"] == reports["batched"]["queue_monitor"]
        assert reports["scalar"]["filter"] == reports["batched"]["filter"]

    def test_prometheus_format(self, capsys):
        assert main(["stats", *self.ARGS, "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE pq_tw_inserts_total counter" in out
        assert 'pq_tw_inserts_total{level="0"}' in out

    def test_metrics_out_writes_loadable_report(self, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        assert main(["stats", *self.ARGS, "--metrics-out", path]) == 0
        report = RunReport.load(path)
        assert report.section("packets")["seen"] > 0

    def test_replays_saved_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.pqtrace")
        assert main(["trace", trace_path, "--duration-ms", "2"]) == 0
        capsys.readouterr()
        assert main(["stats", trace_path, "--k", "10"]) == 0
        assert "packets seen" in capsys.readouterr().out


class TestMetricsOutFlag:
    def test_run_metrics_out(self, tmp_path, capsys):
        path = str(tmp_path / "run-report.json")
        code = main(
            [
                "run",
                "--workload",
                "ws",
                "--duration-ms",
                "2",
                "--k",
                "10",
                "--metrics-out",
                path,
            ]
        )
        assert code == 0
        assert "wrote RunReport" in capsys.readouterr().out
        report = RunReport.load(path)
        # The attached registry's poll samples are serialised too.
        assert report.section("metrics") is not None

    def test_scenario_metrics_out(self, tmp_path, capsys):
        path = str(tmp_path / "scenario-report.json")
        code = main(
            ["scenario", "microburst", "--k", "10", "--metrics-out", path]
        )
        assert code == 0
        assert RunReport.load(path).section("packets")["seen"] > 0


class TestTraceCommand:
    def test_generate_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "t.pqtrace")
        assert main(
            ["trace", path, "--workload", "ws", "--duration-ms", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["trace", path, "--inspect"]) == 0
        out = capsys.readouterr().out
        assert "packets" in out and "Gbps" in out
