"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "ws"
        assert args.load == 1.2

    def test_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "nonexistent"])


class TestOverheadCommand:
    def test_prints_budget(self, capsys):
        assert main(["overhead", "--ports", "4"]) == 0
        out = capsys.readouterr().out
        assert "SRAM" in out
        assert "feasible" in out

    def test_infeasible_config_flagged(self, capsys):
        # A tiny set period (small k, T=1) overwhelms the polling budget.
        assert main(["overhead", "--k", "6", "--T", "1", "--m0", "4"]) == 0
        assert "INFEASIBLE" in capsys.readouterr().out


class TestRunCommand:
    def test_end_to_end(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "ws",
                "--duration-ms",
                "6",
                "--load",
                "1.3",
                "--victims",
                "1",
                "--k",
                "10",
                "--T",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "direct culprits" in out
        assert "original culprits" in out


class TestScenarioCommand:
    def test_microburst_with_plot(self, capsys):
        code = main(
            ["scenario", "microburst", "--plot", "--victims", "1", "--k", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queue depth over time" in out
        assert "direct culprits" in out


class TestAdviseCommand:
    def test_clean_config(self, capsys):
        code = main(
            ["advise", "--m0", "10", "--packet-interval", "1200"]
        )
        assert code == 0
        assert "looks sound" in capsys.readouterr().out

    def test_bad_config_nonzero_exit(self, capsys):
        # m0=6 with MTU packet spacing starves the deep windows: error.
        code = main(["advise", "--m0", "6", "--packet-interval", "1200"])
        assert code == 1
        assert "deep-windows-starved" in capsys.readouterr().out

    def test_depth_and_horizon_flags(self, capsys):
        code = main(
            [
                "advise",
                "--m0",
                "10",
                "--packet-interval",
                "1200",
                "--max-depth",
                "100000",
                "--horizon-ms",
                "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qm-overflow" in out
        assert "horizon-spans-snapshots" in out


class TestTraceCommand:
    def test_generate_and_inspect(self, tmp_path, capsys):
        path = str(tmp_path / "t.pqtrace")
        assert main(
            ["trace", path, "--workload", "ws", "--duration-ms", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["trace", path, "--inspect"]) == 0
        out = capsys.readouterr().out
        assert "packets" in out and "Gbps" in out
