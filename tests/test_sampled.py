"""Tests for the sampled-telemetry baseline."""

import pytest

from repro.baselines.sampled import SampledTelemetry
from repro.core.queries import QueryInterval
from repro.switch.packet import FlowKey

A = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
B = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5001, 80)


class TestSampling:
    def test_rate_one_captures_everything(self):
        tel = SampledTelemetry(sample_rate=1)
        for t in range(10):
            tel.update(A, t)
        assert tel.samples == 10
        assert tel.query(QueryInterval(0, 10))[A] == 10

    def test_deterministic_every_nth(self):
        tel = SampledTelemetry(sample_rate=4)
        for t in range(16):
            tel.update(A, t)
        assert tel.samples == 4

    def test_scaling_recovers_totals(self):
        tel = SampledTelemetry(sample_rate=10)
        for t in range(1000):
            tel.update(A, t)
        estimate = tel.query(QueryInterval(0, 1000))
        assert estimate[A] == pytest.approx(1000, rel=0.02)

    def test_bernoulli_mode_near_rate(self):
        tel = SampledTelemetry(sample_rate=8, deterministic=False, seed=3)
        for t in range(8000):
            tel.update(A, t)
        assert tel.samples == pytest.approx(1000, rel=0.15)

    def test_short_interval_misses_small_flows(self):
        """The paper's critique: at coarse sampling, short query
        intervals see no samples of small flows at all."""
        tel = SampledTelemetry(sample_rate=100)
        # B sends 20 packets inside a 20-tick interval among A's traffic.
        t = 0
        for i in range(5000):
            tel.update(A, t)
            t += 1
        for _ in range(20):
            tel.update(B, t)
            t += 1
        estimate = tel.query(QueryInterval(5000, 5020))
        # Either zero (missed entirely) or a 100x-quantized overestimate.
        assert estimate[B] in (0.0, 100.0)

    def test_interval_slicing(self):
        tel = SampledTelemetry(sample_rate=1)
        for t in [10, 20, 30, 40]:
            tel.update(A, t)
        assert tel.query(QueryInterval(15, 35)).total == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledTelemetry(sample_rate=0)
        with pytest.raises(ValueError):
            SampledTelemetry(sample_rate=1, record_bytes=0)


class TestStorage:
    def test_storage_scales_inversely_with_rate(self):
        heavy = SampledTelemetry(sample_rate=1)
        light = SampledTelemetry(sample_rate=100)
        for t in range(0, 100_000, 10):
            heavy.update(A, t)
            light.update(A, t)
        assert heavy.exported_bytes == 100 * light.exported_bytes

    def test_storage_mbps_measured(self):
        tel = SampledTelemetry(sample_rate=1, record_bytes=16)
        for i in range(1001):
            tel.update(A, i * 1000)  # 1 Mpps for 1 ms
        assert tel.storage_mbps() == pytest.approx(16.0, rel=0.02)

    def test_flow_counts_and_reset(self):
        tel = SampledTelemetry(sample_rate=2)
        for t in range(8):
            tel.update(A if t % 2 else B, t)
        counts = tel.flow_counts()
        assert sum(counts.values()) == 8
        tel.reset()
        assert tel.samples == 0
        assert tel.flow_counts() == {}
