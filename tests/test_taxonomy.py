"""Tests for the Section-2 culprit taxonomy oracle.

Scenarios are hand-crafted so the direct / indirect / original sets are
known exactly, including the Figure-1 single-burst regime.
"""


from repro.core.taxonomy import CulpritTaxonomy
from repro.switch.telemetry import DequeueRecord
from repro.switch.packet import FlowKey

A = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
B = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5001, 80)
C = FlowKey.from_strings("10.0.0.3", "10.1.0.1", 5002, 80)


def rec(flow, enq, deq, depth=0):
    return DequeueRecord(flow, 100, enq, deq, depth)


def build(records):
    return CulpritTaxonomy(sorted(records, key=lambda r: r.deq_timestamp))


class TestDirect:
    def test_dequeued_within_interval(self):
        victim = rec(C, 50, 100)
        records = [
            rec(A, 0, 40),  # before enqueue: not direct
            rec(A, 10, 60),  # within [50, 100]: direct
            rec(B, 20, 100),  # at the victim's dequeue instant: direct
            victim,
            rec(B, 90, 140),  # after: not direct
        ]
        direct = build(records).direct(victim)
        assert direct.as_dict() == {A: 1, B: 1}

    def test_victim_excluded_from_own_culprits(self):
        victim = rec(A, 0, 100)
        records = [victim, rec(A, 10, 50)]
        direct = build(records).direct(victim)
        assert direct[A] == 1  # only the other A packet

    def test_empty_when_no_queuing(self):
        victim = rec(A, 100, 100)
        records = [rec(B, 0, 10), victim]
        assert build(records).direct(victim).total == 0


class TestIndirect:
    def test_requires_unbroken_occupancy(self):
        # A dequeues at 55 and the queue sits empty until the victim
        # enqueues at 60: A is NOT indirectly culpable (the depth must be
        # positive throughout [t2', t1] per Section 2).
        victim = rec(C, 60, 100)
        records = [rec(A, 50, 55), victim]
        assert build(records).indirect(victim).total == 0

    def test_bridged_occupancy_included(self):
        # A dequeues before the victim enqueues, but B keeps the queue
        # non-empty across the gap: A is indirect, B is direct.
        victim = rec(C, 60, 100)
        records = [rec(A, 50, 55), rec(B, 52, 70), victim]
        tax = build(records)
        indirect = tax.indirect(victim)
        assert indirect.as_dict() == {A: 1}
        assert tax.direct(victim).as_dict() == {B: 1}

    def test_packet_that_emptied_queue_excluded(self):
        # B's dequeue at t=30 empties the queue: B predates the regime.
        # A1 dequeues inside the regime before the victim's enqueue while
        # A2 keeps the queue occupied.
        victim = rec(C, 40, 80)
        records = [rec(B, 0, 30), rec(A, 31, 38), rec(A, 33, 50), victim]
        tax = build(records)
        assert tax.regime_start(40) == 30
        indirect = tax.indirect(victim)
        assert B not in indirect
        assert indirect[A] == 1  # only the packet dequeued at 38

    def test_direct_union_indirect_covers_regime(self):
        victim = rec(C, 60, 100)
        records = [
            rec(A, 50, 55),
            rec(B, 52, 70),
            rec(A, 58, 90),
            victim,
        ]
        tax = build(records)
        union = tax.direct(victim).merge(tax.indirect(victim))
        # All three non-victim packets belong to the regime.
        assert union.total == 3


class TestOriginal:
    def test_simple_buildup(self):
        # A, B, C enqueue back-to-back; none dequeued yet by t=25.
        records = [
            rec(A, 10, 100),
            rec(B, 12, 200),
            rec(C, 14, 300),
        ]
        original = build(records).original(25)
        assert original.as_dict() == {A: 1, B: 1, C: 1}

    def test_drain_pops_levels(self):
        # Depth: 1,2 (A,B enq) then A leaves -> depth 1; C enq -> 2.
        records = [
            rec(A, 0, 20),
            rec(B, 5, 40),
            rec(C, 30, 60),
        ]
        original = build(records).original(35)
        # At t=35: A gone (its level-1 slot now...); monotone stack keeps
        # the first packet still standing at each level: A left at 20, so
        # level 1 is B's? No: the stack pops levels above current depth.
        # Replay: enq A (d1), enq B (d2), deq A (d1, pops level-2 entry B),
        # enq C (d2). Survivors: level1=A... A dequeued but the *level*
        # survives: stack holds (1, A), (2, C).
        assert original.as_dict() == {A: 1, C: 1}

    def test_figure1_burst(self):
        """Figure-1-style burst: early packets that raised the queue are
        the original culprits even after they depart."""
        # Burst of 3 at t=0..2 raising depth to 3; drain holds depth as
        # new packets keep arriving one-for-one.
        records = [
            rec(A, 0, 10),
            rec(A, 1, 20),
            rec(A, 2, 30),
            rec(B, 11, 40),  # arrives as one leaves: depth oscillates 2-3
            rec(B, 21, 50),
            rec(C, 31, 60),
        ]
        original = build(records).original(35)
        total = original.total
        assert total == 3  # queue depth is 3-ish; three standing levels
        assert original[A] >= 1  # the burst is still implicated

    def test_at_time_zero(self):
        records = [rec(A, 0, 10)]
        assert build(records).original(0).total == 0


class TestRegimeStart:
    def test_no_prior_empty_returns_zero(self):
        records = [rec(A, 5, 50), rec(B, 6, 80)]
        assert build(records).regime_start(40) == 0

    def test_congestion_regime_span(self):
        victim = rec(C, 60, 100)
        records = [rec(B, 0, 30), rec(A, 50, 65), victim]
        tax = build(records)
        assert tax.congestion_regime(victim) == (30, 100)
