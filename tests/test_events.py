"""Unit tests for the deterministic event queue."""

import pytest

from repro.switch.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        log = []
        q.schedule(30, lambda: log.append("c"))
        q.schedule(10, lambda: log.append("a"))
        q.schedule(20, lambda: log.append("b"))
        q.run_all()
        assert log == ["a", "b", "c"]

    def test_stable_tie_break(self):
        q = EventQueue()
        log = []
        for name in "abcde":
            q.schedule(5, lambda n=name: log.append(n))
        q.run_all()
        assert log == list("abcde")

    def test_run_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda: log.append(10))
        q.schedule(20, lambda: log.append(20))
        q.schedule(30, lambda: log.append(30))
        last = q.run_until(20)
        assert log == [10, 20]
        assert last == 20
        assert len(q) == 1

    def test_callbacks_can_reschedule(self):
        q = EventQueue()
        log = []

        def tick(t):
            log.append(t)
            if t < 50:
                q.schedule(t + 10, lambda: tick(t + 10))

        q.schedule(10, lambda: tick(10))
        q.run_all()
        assert log == [10, 20, 30, 40, 50]

    def test_rescheduled_within_horizon_honoured(self):
        q = EventQueue()
        log = []
        q.schedule(10, lambda: q.schedule(15, lambda: log.append("inner")))
        q.run_until(20)
        assert log == ["inner"]

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-1, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        q.schedule(42, lambda: None)
        assert q.peek_time() == 42

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_runaway_guard(self):
        q = EventQueue()

        def forever():
            q.schedule(q.peek_time() + 1 if len(q) else 1, forever)

        q.schedule(0, forever)
        with pytest.raises(RuntimeError):
            q.run_all(max_events=100)
