"""The fused record-array ingest tier: bit-identical to both other tiers.

DESIGN.md §14's contract, asserted end to end: for any dequeue log the
fused tier (:class:`repro.engine.FusedIngestPipeline` over a
:class:`~repro.switch.records.RecordBatch`) leaves every register bank,
counter, snapshot, and query result in exactly the state the scalar walk
and the batched tier produce — including the store encoding, which must
stay byte-identical so PQSTORE1 recordings are engine-independent.
"""

import numpy as np
import pytest

from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueuePort
from repro.core.queries import QueryInterval
from repro.core.windowset import TimeWindowSet
from repro.engine import FusedIngestPipeline, FusedTimeWindowSet, FusedWindow
from repro.errors import SimulationError
from repro.experiments.runner import (
    drive_printqueue,
    run_trace_through_fifo,
    run_trace_through_fifo_batch,
    simulate_workload,
)
from repro.obs.metrics import Metrics
from repro.obs.report import RunReport
from repro.store import MmapStore
from repro.switch.packet import FlowKey
from repro.switch.records import (
    PACKET_RECORD_DTYPE,
    FlowColumn,
    RecordBatch,
    as_record_batch,
)
from repro.traffic.distributions import distribution_by_name
from repro.traffic.generator import PoissonWorkload, WorkloadConfig

# ---------------------------------------------------------------------------
# state signatures (materialised, so array- and list-backed states compare)


def _windowset_state(ws):
    return (
        [
            (
                tuple(int(c) for c in w.cycle_ids),
                tuple(w.flows[i] for i in range(1 << w.k)),
            )
            for w in ws.windows
        ],
        (ws.updates, ws.passes, ws.drops),
        tuple(ws.level_inserts),
        tuple(ws.level_passes),
        tuple(ws.level_drops),
    )


def _port_state(pq):
    analysis = pq.analysis
    banks = analysis.tw_banks
    qm = analysis.queue_monitor
    return (
        pq.packets_seen,
        banks.active_index,
        banks.periodic_flips,
        banks.dp_freezes,
        banks.dp_rejections,
        [_windowset_state(bank) for bank in banks.banks],
        (qm.top, qm._seq, qm.overflows, qm.pushes, qm.drains, qm.high_water),
        (tuple(qm.inc_seq), tuple(qm.inc_flow), tuple(qm.dec_seq)),
        [
            (s.read_time_ns, s.source, s.valid_from_ns, list(s.windows))
            for s in analysis.tw_snapshots
        ],
        [
            (s.time_ns, s.top, tuple(s.inc_seq), tuple(s.inc_flow))
            for s in analysis.qm_snapshots
        ],
    )


def _flow(i: int) -> FlowKey:
    return FlowKey.from_strings(
        f"10.0.{(i >> 8) & 255}.{i & 255}", "10.1.0.1", 5000 + i % 37, 80
    )


def _run(engine, config, seed, duration_ns=2_000_000, triggers=None, **kw):
    return simulate_workload(
        "ws",
        duration_ns=duration_ns,
        load=1.3,
        config=config,
        seed=seed,
        dp_trigger_indices=triggers,
        engine=engine,
        **kw,
    )


# ---------------------------------------------------------------------------
# end-to-end equivalence across all three tiers


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_fused_matches_scalar_and_batched_end_to_end(seed):
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    triggers = {5, 60, 200}
    scalar = _run("scalar", config, seed, triggers=triggers)
    batched = _run("batched", config, seed, triggers=triggers)
    fused = _run("fused", config, seed, triggers=triggers)
    assert len(fused.records) == len(scalar.records) > 100
    assert _port_state(fused.pq) == _port_state(scalar.pq)
    assert _port_state(fused.pq) == _port_state(batched.pq)
    assert fused.dp_results.keys() == scalar.dp_results.keys()
    for idx, result in scalar.dp_results.items():
        other = fused.dp_results[idx]
        assert result.trigger_time_ns == other.trigger_time_ns
        assert result.interval == other.interval
        assert result.estimate._counts == other.estimate._counts


def test_fused_matches_scalar_collision_heavy():
    # 16-cell windows: nearly every insert collides, so the fused pass
    # stream (head + mid evictions, recompressed TTS) is fully exercised.
    config = PrintQueueConfig(m0=4, k=4, alpha=1, T=3, qm_levels=256)
    scalar = _run("scalar", config, 3, duration_ns=400_000)
    fused = _run("fused", config, 3, duration_ns=400_000)
    assert _port_state(scalar.pq) == _port_state(fused.pq)
    bank = fused.pq.analysis.tw_banks.active
    assert bank.drops + bank.passes > 0


def test_fused_queries_match_scalar_queries():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    scalar = _run("scalar", config, 7, duration_ns=1_500_000)
    fused = _run("fused", config, 7, duration_ns=1_500_000)
    victim = max(scalar.records, key=lambda r: r.queuing_delay)
    interval = QueryInterval.for_victim(victim.enq_timestamp, victim.deq_timestamp)
    assert (
        scalar.pq.query(interval=interval).estimate._counts
        == fused.pq.query(interval=interval).estimate._counts
    )
    assert (
        scalar.pq.query(at_ns=victim.enq_timestamp).estimate._counts
        == fused.pq.query(at_ns=victim.enq_timestamp).estimate._counts
    )


def test_fused_metrics_on_equals_metrics_off():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    plain = _run("fused", config, 13)
    metered = _run("fused", config, 13, metrics=Metrics())
    assert _port_state(plain.pq) == _port_state(metered.pq)


def test_fused_report_counter_parity():
    """RunReport deterministic views agree across all three engines."""
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    views = [
        RunReport.from_port(_run(engine, config, 17).pq).deterministic_view()
        for engine in ("scalar", "batched", "fused")
    ]
    assert views[0] == views[1] == views[2]


# ---------------------------------------------------------------------------
# kernel-level randomized equivalence


@pytest.mark.parametrize("k,alpha,T", [(4, 1, 3), (6, 2, 4), (8, 1, 2)])
def test_fused_absorb_matches_scalar_randomized(k, alpha, T):
    config = PrintQueueConfig(m0=4, k=k, alpha=alpha, T=T)
    rng = np.random.default_rng(k * 100 + alpha * 10 + T)
    gaps = rng.integers(1, 1 << (config.m0 + 2), size=600)
    timestamps = np.cumsum(gaps).astype(np.int64)
    flow_ids = rng.integers(0, 40, size=600)
    table = [_flow(i) for i in range(40)]
    flows = [table[int(i)] for i in flow_ids]

    reference = TimeWindowSet(config)
    for flow, ts in zip(flows, timestamps.tolist()):
        reference.update(flow, ts)

    # Indexed fast path: a FlowColumn over the set's own table.
    fused = FusedTimeWindowSet(config, list(table))
    fused.absorb_batch(
        FlowColumn(fused.flow_table, flow_ids.astype(np.int64)), timestamps
    )
    assert _windowset_state(fused) == _windowset_state(reference)

    # Object fallback: any other flow sequence is interned first.
    interned = FusedTimeWindowSet(config, [])
    interned.absorb_batch(flows, timestamps)
    assert _windowset_state(interned) == _windowset_state(reference)

    # Scalar entry point on the array registers.
    scalar = FusedTimeWindowSet(config, [])
    for flow, ts in zip(flows, timestamps.tolist()):
        scalar.update(flow, ts)
    assert _windowset_state(scalar) == _windowset_state(reference)


def test_fused_window_latest_cell_matches_scalar():
    config = PrintQueueConfig(m0=4, k=5, alpha=1, T=2)
    rng = np.random.default_rng(5)
    timestamps = np.cumsum(rng.integers(1, 64, size=300)).astype(np.int64)
    flow_ids = rng.integers(0, 8, size=300)
    table = [_flow(i) for i in range(8)]

    reference = TimeWindowSet(config)
    fused = FusedTimeWindowSet(config, list(table))
    for fid, ts in zip(flow_ids.tolist(), timestamps.tolist()):
        reference.update(table[fid], int(ts))
        fused.update(table[fid], int(ts))
    for ref_w, fused_w in zip(reference.windows, fused.windows):
        a = ref_w.latest_cell()
        b = fused_w.latest_cell()
        assert (a is None) == (b is None)
        if a is not None:
            assert (a.index, a.cycle_id, a.flow) == (b.index, b.cycle_id, b.flow)
            assert isinstance(b.index, int) and isinstance(b.cycle_id, int)


def test_fused_window_snapshot_is_frozen():
    table = [_flow(0), _flow(1)]
    w = FusedWindow(4, table)
    ws = FusedTimeWindowSet(PrintQueueConfig(m0=2, k=4, alpha=1, T=1), table)
    ws.update(table[0], 100)
    frozen = ws.windows[0].snapshot()
    before = frozen.occupancy()
    ws.update(table[1], 999_999)
    assert frozen.occupancy() == before
    assert w.occupancy() == 0


def test_absorb_indexed_length_mismatch_raises():
    ws = FusedTimeWindowSet(PrintQueueConfig(m0=2, k=4, alpha=1, T=1), [])
    with pytest.raises(SimulationError):
        ws.absorb_indexed(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64))


def test_fused_pipeline_requires_fresh_port():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3)
    run = _run("scalar", config, 3, duration_ns=300_000)
    batch = as_record_batch(list(run.records))
    pq = PrintQueuePort(config, d_ns=100.0, model_dp_read_cost=False)
    pq.process_dequeue(_flow(1), 1000, 0)
    with pytest.raises(SimulationError):
        FusedIngestPipeline(pq, batch)


# ---------------------------------------------------------------------------
# RecordBatch / FlowColumn carriers


def _small_batch():
    workload = PoissonWorkload(
        distribution_by_name("ws"),
        WorkloadConfig(load=1.2, duration_ns=500_000),
        seed=5,
    )
    trace = workload.generate()
    records, drops = run_trace_through_fifo(trace)
    batch, drops2 = run_trace_through_fifo_batch(trace)
    assert drops == drops2
    return records, batch


def test_record_batch_matches_object_records():
    records, batch = _small_batch()
    assert len(batch) == len(records)
    assert batch.data.dtype == PACKET_RECORD_DTYPE
    assert batch.to_records() == records
    assert batch[0] == records[0]
    assert batch[-1] == records[-1]
    sliced = batch[10:20]
    assert isinstance(sliced, RecordBatch)
    assert sliced.to_records() == records[10:20]


def test_record_batch_round_trip_through_objects():
    records, _ = _small_batch()
    batch = RecordBatch.from_records(records)
    assert batch.to_records() == records
    assert as_record_batch(batch) is batch


def test_record_batch_rejects_wrong_dtype():
    with pytest.raises(ValueError):
        RecordBatch(np.zeros(3, dtype=np.int64), [])


def test_flow_column_narrowing_and_iteration():
    table = [_flow(i) for i in range(4)]
    idx = np.array([0, 3, 1, 3, 2], dtype=np.int64)
    col = FlowColumn(table, idx)
    assert len(col) == 5
    assert col[1] is table[3]
    assert list(col) == [table[0], table[3], table[1], table[3], table[2]]
    narrowed = col[np.array([1, 3])]
    assert isinstance(narrowed, FlowColumn)
    assert narrowed.table is table
    assert list(narrowed) == [table[3], table[3]]
    assert list(col[1:3]) == [table[3], table[1]]


def test_generate_records_matches_generate():
    workload = PoissonWorkload(
        distribution_by_name("ws"),
        WorkloadConfig(load=1.2, duration_ns=400_000),
        seed=9,
    )
    trace, batch, drops = workload.generate_records()
    records, drops2 = run_trace_through_fifo(trace)
    assert drops == drops2
    assert batch.to_records() == records


# ---------------------------------------------------------------------------
# store bridge: byte identity + zero-copy replay


def test_store_encoding_is_engine_independent(tmp_path):
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    paths = {}
    for engine in ("batched", "fused"):
        path = tmp_path / f"{engine}.pqstore"
        run = _run(engine, config, 11, store=MmapStore(path))
        run.pq.analysis.store.close()
        paths[engine] = path
    assert paths["batched"].read_bytes() == paths["fused"].read_bytes()


def test_mmap_replay_compiles_and_queries_zero_copy(tmp_path):
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    path = tmp_path / "run.pqstore"
    # Reference run against the in-memory store (identical poll stream).
    live = _run("fused", config, 11)
    live_snapshots = list(live.pq.analysis.tw_snapshots)
    victim = max(live.records, key=lambda r: r.queuing_delay)
    interval = QueryInterval.for_victim(victim.enq_timestamp, victim.deq_timestamp)
    live_estimate = live.pq.query(interval=interval).estimate._counts
    # Recording run: same workload, snapshots land in the PQSTORE1 file.
    recording = _run("fused", config, 11, store=MmapStore(path))
    recording.pq.analysis.store.close()

    replay = MmapStore.open(path)
    snapshots = list(replay.tw_view())
    assert len(snapshots) == len(live_snapshots)
    for stored, original in zip(snapshots, live_snapshots):
        # Equality is on the materialised cells, independent of carrier.
        assert list(stored.windows) == list(original.windows)
    # The decoded windows are index-based views straight off the mmap:
    # no per-cell objects were built to satisfy the equality above having
    # been the only materialisation, and the arrays do not own memory.
    fw = next(w for s in snapshots for w in s.windows if w.cell_count)
    assert fw.flow_idx is not None
    assert fw.flow_table is not None
    assert not fw.tts_array.flags.owndata
    assert not fw.flow_idx.flags.owndata

    # An analysis program rebound to the replayed store answers queries
    # identically to the live run.
    from repro.core.analysis import AnalysisProgram

    analysis = AnalysisProgram(
        config,
        d_ns=live.mean_packet_interval_ns,
        model_dp_read_cost=False,
        store=replay,
    )
    estimate = analysis.query_time_windows(interval)._counts
    assert estimate == live_estimate


def test_filtered_window_representations_agree():
    """cells / columnar / indexed constructions are interchangeable."""
    from repro.core.filtering import FilteredWindow

    table = [_flow(i) for i in range(3)]
    tts = np.array([10, 11, 13], dtype=np.int64)
    idx = np.array([2, 0, 1], dtype=np.int64)
    cells = [(10, table[2]), (11, table[0]), (13, table[1])]

    by_cells = FilteredWindow(0, 4, list(cells), 13)
    by_columns = FilteredWindow(
        0, 4, None, 13, tts_array=tts.copy(), cell_flows=[c[1] for c in cells]
    )
    by_index = FilteredWindow(
        0, 4, None, 13, tts_array=tts.copy(), flow_idx=idx, flow_table=table
    )
    assert by_cells == by_columns == by_index
    assert by_index.cells == cells
    assert by_index.cell_flows == [c[1] for c in cells]
    assert by_index.cell_count == 3
    assert np.array_equal(by_cells.tts_array, tts)
    assert repr(by_index) == repr(by_cells)
