"""Tests for wrap-safe time windows (finite-width hardware clocks)."""

import pytest

from repro.core.config import PrintQueueConfig
from repro.core.filtering import filter_windows
from repro.core.windowset import TimeWindowSet
from repro.core.wrapping import WrappedTimeWindowSet, unwrap
from repro.errors import ConfigError
from repro.switch.packet import FlowKey

FLOWS = [
    FlowKey.from_strings("10.0.0.%d" % (i + 1), "10.1.0.1", 5000 + i, 80)
    for i in range(8)
]


class TestUnwrap:
    def test_no_wrap_needed(self):
        assert unwrap(5, 4, 21) == 21  # 21 = 0b10101, low 4 bits = 5

    def test_wraps_backwards(self):
        # reference 16 (0b10000), wrapped low-4 = 9 -> candidate 25 > 16,
        # so step one wrap period back: 9.
        assert unwrap(9, 4, 16) == 9

    def test_exact_reference(self):
        assert unwrap(0, 4, 16) == 16

    def test_before_time_zero(self):
        assert unwrap(9, 4, 3) < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            unwrap(16, 4, 100)  # wrapped exceeds width
        with pytest.raises(ValueError):
            unwrap(1, 0, 100)
        with pytest.raises(ValueError):
            unwrap(1, 4, -1)


def tiny_config(**kw):
    defaults = dict(m0=0, k=2, alpha=1, T=3)
    defaults.update(kw)
    return PrintQueueConfig(**defaults)


class TestConstruction:
    def test_too_narrow_clock_rejected(self):
        with pytest.raises(ConfigError):
            WrappedTimeWindowSet(tiny_config(k=10, m0=6), timestamp_bits=16)

    def test_set_period_must_fit_wrap(self):
        # 2^16 ns wrap with a multi-ms set period is ambiguous.
        config = PrintQueueConfig(m0=6, k=12, alpha=2, T=4)
        with pytest.raises(ConfigError):
            WrappedTimeWindowSet(config, timestamp_bits=20)


class TestEquivalenceBelowWrap:
    def test_matches_unwrapped_set(self):
        """Before any wrap occurs, the wrapped structure behaves exactly
        like the reference TimeWindowSet."""
        config = tiny_config(k=3, T=3)
        plain = TimeWindowSet(config)
        wrapped = WrappedTimeWindowSet(config, timestamp_bits=16)
        import random

        rng = random.Random(3)
        t = 0
        for i in range(300):
            t += rng.randrange(0, 4)
            plain.update(FLOWS[i % 8], t)
            wrapped.update(FLOWS[i % 8], t)
        assert plain.passes == wrapped.passes
        assert plain.drops == wrapped.drops
        for w_plain, w_wrapped in zip(plain.windows, wrapped.windows):
            assert w_plain.flows == w_wrapped.flows


class TestAcrossTheWrap:
    def test_passing_rule_survives_wrap(self):
        """A cycle boundary that crosses the clock wrap still passes:
        (0 - max_cycle) mod 2^bits == 1."""
        config = tiny_config(k=2, T=2, m0=0)
        bits = 8  # wraps at 256 ns; cycle bits in window 0 = 6
        ws = WrappedTimeWindowSet(config, timestamp_bits=bits)
        ws.update(FLOWS[0], 252)  # wrapped tts 252: cycle 63, index 0
        ws.update(FLOWS[1], 256)  # wrapped ts 0: cycle 0, index 0
        # (0 - 63) mod 64 == 1 -> FLOWS[0] is passed, not dropped.
        assert ws.passes == 1
        assert ws.windows[1].occupancy() == 1

    def test_unwrapped_snapshot_filters_cleanly(self):
        """Driving the structure across several wraps and unwrapping at
        poll time yields windows the standard filter accepts, with the
        newest data retained."""
        config = tiny_config(k=3, T=3, m0=0)
        bits = 10  # wraps every 1024 ns; set period = 8+16+32 << 1024
        ws = WrappedTimeWindowSet(config, timestamp_bits=bits)
        t = 0
        for i in range(3000):  # crosses the wrap ~3 times
            ws.update(FLOWS[i % 8], t)
            t += 1
        poll = t - 1
        absolute = ws.to_absolute(poll)
        filtered = filter_windows(absolute, config)
        # The newest cell unwraps to the actual last timestamp's TTS.
        assert filtered[0].reference_tts == poll
        assert len(filtered[0].cells) > 0
        for fw in filtered:
            for tts, _flow in fw.cells:
                assert (tts << fw.shift) <= poll

    def test_to_absolute_drops_pre_epoch_cells(self):
        config = tiny_config(k=2, T=1, m0=0)
        ws = WrappedTimeWindowSet(config, timestamp_bits=8)
        ws.update(FLOWS[0], 200)
        # Poll very early: a cell whose only consistent unwrapping
        # precedes time zero is discarded.
        absolute = ws.to_absolute(10)
        assert absolute[0].occupancy() == 0

    def test_to_absolute_validation(self):
        ws = WrappedTimeWindowSet(tiny_config(), timestamp_bits=12)
        with pytest.raises(ValueError):
            ws.to_absolute(-5)
