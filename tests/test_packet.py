"""Unit tests for FlowKey and Packet."""

import pytest

from repro.switch.packet import PROTO_TCP, PROTO_UDP, FlowKey, Packet


class TestFlowKey:
    def test_from_strings_roundtrip(self):
        key = FlowKey.from_strings("10.0.0.1", "192.168.1.2", 1234, 80)
        assert key.src_ip == (10 << 24) | 1
        assert key.dst_ip == (192 << 24) | (168 << 16) | (1 << 8) | 2
        assert key.src_port == 1234
        assert key.dst_port == 80
        assert key.proto == PROTO_TCP

    def test_str_formats_dotted_quad(self):
        key = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        assert str(key) == "10.0.0.1:5000->10.1.0.1:80/6"

    def test_malformed_address(self):
        with pytest.raises(ValueError):
            FlowKey.from_strings("10.0.0", "10.0.0.1", 1, 2)
        with pytest.raises(ValueError):
            FlowKey.from_strings("10.0.0.256", "10.0.0.1", 1, 2)

    def test_out_of_range_fields(self):
        with pytest.raises(ValueError):
            FlowKey(1 << 32, 0, 0, 0)
        with pytest.raises(ValueError):
            FlowKey(0, 0, 70000, 0)
        with pytest.raises(ValueError):
            FlowKey(0, 0, 0, 0, proto=300)

    def test_flow_id_deterministic(self):
        a = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        b = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        assert a.flow_id() == b.flow_id()

    def test_flow_id_distinguishes_fields(self):
        base = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        variants = [
            FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5000, 80),
            FlowKey.from_strings("10.0.0.1", "10.1.0.2", 5000, 80),
            FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5001, 80),
            FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 81),
            FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80, PROTO_UDP),
        ]
        for variant in variants:
            assert variant.flow_id() != base.flow_id()

    def test_flow_id_64_bit(self):
        key = FlowKey.from_strings("1.2.3.4", "5.6.7.8", 9, 10)
        assert 0 <= key.flow_id() < (1 << 64)

    def test_hashable_and_equal(self):
        a = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        b = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        assert a == b
        assert len({a, b}) == 1

    def test_reversed(self):
        key = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        rev = key.reversed()
        assert rev.src_ip == key.dst_ip
        assert rev.dst_port == key.src_port
        assert rev.reversed() == key

    def test_to_bytes_is_13_bytes(self):
        key = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        assert len(key.to_bytes()) == 13


class TestPacket:
    def _flow(self):
        return FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)

    def test_basic_construction(self):
        pkt = Packet(self._flow(), 1500, 100)
        assert pkt.size_bytes == 1500
        assert pkt.arrival_ns == 100
        assert not pkt.queued

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Packet(self._flow(), 0, 100)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Packet(self._flow(), 100, -1)

    def test_deq_timestamp_requires_queuing(self):
        pkt = Packet(self._flow(), 100, 0)
        with pytest.raises(ValueError):
            _ = pkt.deq_timestamp

    def test_deq_timestamp_sum(self):
        pkt = Packet(self._flow(), 100, 0)
        pkt.enq_timestamp = 50
        pkt.deq_timedelta = 30
        assert pkt.deq_timestamp == 80
        assert pkt.queued

    def test_flow_id_cached(self):
        pkt = Packet(self._flow(), 100, 0)
        assert pkt.flow_id == pkt.flow.flow_id()
        assert pkt._flow_id is not None
