"""The sharded multi-port ingest driver: bit-identical to fused per port.

The sharded tier's contract extends the engine-equivalence invariant
across process boundaries: partitioning a trace by egress port and
driving each shard's :class:`~repro.core.printqueue.PrintQueuePort`
through a pool worker must leave every port in exactly the state a
single-process fused run over the same per-port sub-trace produces —
deterministic reports, query answers, counters, and the PQSTORE1 byte
stream all engine-independent, whether the pool ran or the in-process
fallback took over.
"""

import numpy as np
import pytest

from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueuePort
from repro.core.queries import QueryInterval
from repro.engine import (
    FusedIngestPipeline,
    Shard,
    ShardedIngestPipeline,
    ShardRunner,
    intern_config,
    partition_trace_by_port,
)
from repro.engine.sharded import INPROCESS_ENV
from repro.experiments.runner import (
    drive_printqueue,
    run_trace_through_fifo_batch,
    simulate_workload,
)
from repro.obs.metrics import Metrics
from repro.obs.report import RunReport
from repro.store import MmapStore
from repro.traffic.distributions import distribution_by_name
from repro.traffic.generator import PoissonWorkload, WorkloadConfig

CONFIG = PrintQueueConfig(m0=6, k=10, alpha=2, T=3, qm_levels=4096)


def _trace(seed=3, duration_ns=8_000_000):
    generator = PoissonWorkload(
        distribution_by_name("uw"),
        WorkloadConfig(load=1.2, duration_ns=duration_ns),
        seed=seed,
    )
    return generator.generate()


def _port_for(records, store=None, metrics=None):
    if len(records) >= 2:
        span = records[-1].deq_timestamp - records[0].deq_timestamp
        d_ns = span / (len(records) - 1)
    else:
        d_ns = float(CONFIG.min_pkt_tx_delay_ns)
    return PrintQueuePort(
        CONFIG,
        d_ns=d_ns,
        model_dp_read_cost=False,
        metrics=metrics,
        store=store,
    )


def _build_shards(trace, num_ports, stores=None):
    shards = []
    for i, sub in enumerate(partition_trace_by_port(trace, num_ports)):
        records, _ = run_trace_through_fifo_batch(sub)
        store = stores[i] if stores is not None else None
        shards.append(Shard(_port_for(records, store=store), records))
    return shards


def _view(pq):
    return RunReport.from_port(pq).deterministic_view()


def _query_answer(pq, records):
    end = records[-1].deq_timestamp
    interval = QueryInterval(max(0, end - CONFIG.set_period_ns), end)
    return sorted(
        (str(flow), count)
        for flow, count in pq.query(interval=interval).estimate.items()
    )


# ---------------------------------------------------------------------------
# trace partitioning


def test_partition_covers_trace_and_respects_ports():
    trace = _trace()
    subs = partition_trace_by_port(trace, 4)
    assert len(subs) == 4
    assert sum(len(s.arrival_ns) for s in subs) == len(trace.arrival_ns)
    assignment = trace.flow_index % 4
    for port, sub in enumerate(subs):
        expected = np.flatnonzero(assignment == port)
        np.testing.assert_array_equal(sub.arrival_ns, trace.arrival_ns[expected])
        np.testing.assert_array_equal(sub.flow_index, trace.flow_index[expected])
        assert sub.name.endswith(f":port{port}")
        # A flow never lands on two ports.
        assert set(np.unique(sub.flow_index % 4).tolist()) <= {port}


def test_partition_single_port_is_whole_trace():
    trace = _trace()
    (sub,) = partition_trace_by_port(trace, 1)
    np.testing.assert_array_equal(sub.arrival_ns, trace.arrival_ns)
    np.testing.assert_array_equal(sub.flow_index, trace.flow_index)


# ---------------------------------------------------------------------------
# single-port facade: sharded == fused through drive_printqueue


@pytest.mark.parametrize("seed", [3, 17])
def test_sharded_engine_matches_fused_end_to_end(seed):
    triggers = {50, 900}
    fused = simulate_workload(
        "uw", 4_000_000, load=1.2, config=CONFIG, seed=seed,
        dp_trigger_indices=triggers, engine="fused",
    )
    sharded = simulate_workload(
        "uw", 4_000_000, load=1.2, config=CONFIG, seed=seed,
        dp_trigger_indices=triggers, engine="sharded",
    )
    assert _view(fused.pq) == _view(sharded.pq)
    assert fused.dp_results.keys() == sharded.dp_results.keys()
    for idx, result in fused.dp_results.items():
        other = sharded.dp_results[idx]
        assert result.interval == other.interval
        assert result.estimate.as_dict() == other.estimate.as_dict()
    assert _query_answer(fused.pq, fused.records) == _query_answer(
        sharded.pq, sharded.records
    )


def test_sharded_engine_counter_parity_with_fused():
    runs = {}
    for engine in ("fused", "sharded"):
        metrics = Metrics()
        simulate_workload(
            "uw", 4_000_000, load=1.2, config=CONFIG, seed=5,
            engine=engine, metrics=metrics,
        )
        runs[engine] = {
            name: value
            for name, value in metrics.snapshot().items()
            if "_ns" not in name and name.startswith("pq_ingest")
        }
    assert runs["fused"] == runs["sharded"]


def test_env_forces_in_process_fallback(monkeypatch):
    monkeypatch.setenv(INPROCESS_ENV, "1")
    trace = _trace(seed=9, duration_ns=3_000_000)
    records, _ = run_trace_through_fifo_batch(trace)
    pq = _port_for(records)
    pipeline = ShardedIngestPipeline(pq, records)
    pipeline.run()
    assert pipeline.last_execution == "in-process"

    reference = _port_for(records)
    FusedIngestPipeline(reference, records).run()
    assert _view(pq) == _view(reference)


def test_baselines_force_in_process():
    from repro.baselines.interval import FixedIntervalEstimator

    class ExactCounter:
        def __init__(self):
            self.counts = {}

        def update(self, flow, count=1):
            self.counts[flow] = self.counts.get(flow, 0) + count

        def flow_counts(self):
            return dict(self.counts)

        def reset(self):
            self.counts = {}

    trace = _trace(seed=9, duration_ns=3_000_000)
    records, _ = run_trace_through_fifo_batch(trace)
    pq = _port_for(records)
    baseline = FixedIntervalEstimator(ExactCounter(), period_ns=1_000_000)
    runner = ShardRunner([Shard(pq, records, baselines=[baseline])])
    runner.run()
    assert runner.last_execution == "in-process"


# ---------------------------------------------------------------------------
# shard-count invariance: 1 shard vs N shards, per-port answers identical


@pytest.mark.parametrize("num_ports", [2, 4])
def test_shard_count_invariance(num_ports):
    trace = _trace(seed=13, duration_ns=8_000_000)
    shards = _build_shards(trace, num_ports)
    runner = ShardRunner(shards)
    runner.run()

    for shard in shards:
        reference = _port_for(shard.records)
        FusedIngestPipeline(reference, shard.records).run()
        assert _view(shard.pq) == _view(reference)
        assert _query_answer(shard.pq, shard.records) == _query_answer(
            reference, shard.records
        )


@pytest.mark.parametrize("num_ports", [2, 4])
def test_shard_store_files_byte_identical(tmp_path, num_ports):
    trace = _trace(seed=13, duration_ns=8_000_000)
    stores = [
        MmapStore(tmp_path / f"sharded-{i}.pqstore") for i in range(num_ports)
    ]
    shards = _build_shards(trace, num_ports, stores=stores)
    ShardRunner(shards).run()
    for store in stores:
        store.close()

    for i, shard in enumerate(shards):
        ref_store = MmapStore(tmp_path / f"fused-{i}.pqstore")
        reference = _port_for(shard.records, store=ref_store)
        FusedIngestPipeline(reference, shard.records).run()
        ref_store.close()
        sharded_bytes = (tmp_path / f"sharded-{i}.pqstore").read_bytes()
        fused_bytes = (tmp_path / f"fused-{i}.pqstore").read_bytes()
        assert sharded_bytes == fused_bytes
        assert len(sharded_bytes) > 0


def test_pool_and_in_process_paths_agree(monkeypatch):
    trace = _trace(seed=21, duration_ns=6_000_000)
    pooled = _build_shards(trace, 3)
    pooled_runner = ShardRunner(pooled)
    pooled_runner.run()

    monkeypatch.setenv(INPROCESS_ENV, "1")
    serial = _build_shards(trace, 3)
    serial_runner = ShardRunner(serial)
    serial_runner.run()
    assert serial_runner.last_execution == "in-process"

    for a, b in zip(pooled, serial):
        assert _view(a.pq) == _view(b.pq)


# ---------------------------------------------------------------------------
# faults x sharded: per-shard quarantine/retry survives the pool


def test_fault_profile_under_sharded_engine():
    runs = {}
    for engine in ("fused", "sharded"):
        metrics = Metrics()
        run = simulate_workload(
            "uw", 20_000_000, load=1.2, config=CONFIG, seed=11,
            engine=engine, faults="chaos", metrics=metrics,
            dp_trigger_indices=set(range(0, 20000, 500)),
        )
        fault_counters = {
            name: value
            for name, value in metrics.snapshot().items()
            if ("fault" in name or "retries" in name) and "_ns" not in name
        }
        runs[engine] = (run, fault_counters)

    fused_run, fused_faults = runs["fused"]
    sharded_run, sharded_faults = runs["sharded"]
    # The chaos profile must actually fire for this test to mean anything.
    assert any("injected" in name for name in fused_faults)
    assert fused_faults == sharded_faults
    assert _view(fused_run.pq) == _view(sharded_run.pq)
    assert fused_run.dp_results.keys() == sharded_run.dp_results.keys()
    for idx, result in fused_run.dp_results.items():
        assert (
            result.estimate.as_dict()
            == sharded_run.dp_results[idx].estimate.as_dict()
        )


# ---------------------------------------------------------------------------
# config interning (ResultCache key fix)


def test_intern_config_returns_shared_instance():
    a = PrintQueueConfig(m0=6, k=10, alpha=2, T=3)
    b = PrintQueueConfig(m0=6, k=10, alpha=2, T=3)
    assert a is not b
    assert intern_config(a) is intern_config(b)


def test_parallel_sweep_interns_cell_configs():
    from repro.engine import ParallelSweep, SweepCell

    def worker(cell):
        return cell.config

    cells = [
        SweepCell(
            workload="uw",
            config=PrintQueueConfig(m0=6, k=10, alpha=2, T=3),
            duration_ns=1,
            seed=s,
        )
        for s in (1, 2)
    ]
    assert cells[0].config is not cells[1].config
    sweep = ParallelSweep(worker=worker, max_workers=1)
    results = sweep.run(cells)
    assert results[0] is results[1]


# ---------------------------------------------------------------------------
# bounded pool waits


def test_pool_timeout_falls_back_in_process(monkeypatch):
    """A PoolTimeoutError from the pool path downgrades to in-process,
    ticks the counter on the parent registry, and still returns correct
    per-shard results."""
    from repro.errors import PoolTimeoutError

    trace = _trace(duration_ns=2_000_000)
    metrics = Metrics()
    shards = _build_shards(trace, 2)
    shards[0].pq.attach_metrics(metrics)

    def _stalled_pool(self):
        raise PoolTimeoutError("shard 0 exceeded its 0.1s pool wait")

    monkeypatch.setattr(ShardRunner, "_run_pool", _stalled_pool)
    runner = ShardRunner(shards, timeout_s=0.1)
    assert runner.timeout_s == 0.1
    results = runner.run()
    assert len(results) == 2 and all(isinstance(r, dict) for r in results)
    assert runner.last_execution == "in-process"
    assert runner.pool_timeouts == 1
    assert metrics.counter("pq_pool_timeouts_total").value == 1


def test_shard_runner_timeout_resolution(monkeypatch):
    from repro.engine.parallel import DEFAULT_POOL_TIMEOUT_S, POOL_TIMEOUT_ENV

    monkeypatch.delenv(POOL_TIMEOUT_ENV, raising=False)
    assert ShardRunner([]).timeout_s == DEFAULT_POOL_TIMEOUT_S
    monkeypatch.setenv(POOL_TIMEOUT_ENV, "1.5")
    assert ShardRunner([]).timeout_s == 1.5
    assert ShardRunner([], timeout_s=-2).timeout_s is None
