"""Tests for the experiment harness: runner, sampling, evaluation."""

import numpy as np

from repro.baselines.interval import FixedIntervalEstimator
from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueuePort
from repro.experiments.evaluation import (
    evaluate_async_queries,
    evaluate_baseline,
    evaluate_dataplane_queries,
)
from repro.experiments.runner import (
    drive_printqueue,
    run_trace_through_fifo,
    simulate_workload,
)
from repro.experiments.sampling import band_label, sample_victims_by_band
from repro.switch.packet import FlowKey
from repro.switch.telemetry import DequeueRecord
from repro.traffic.scenarios import microburst_scenario


def small_config():
    # m0=10 matches the ~1200 ns inter-departure time of near-MTU WS
    # packets at 10 Gbps (the paper's WS/DM choice); an m0 far below the
    # packet interval starves the deeper windows (z ~ 2^m0/d << 1).
    return PrintQueueConfig(m0=10, k=10, alpha=1, T=3, min_packet_bytes=1500)


class TestRunner:
    def test_records_in_dequeue_order(self):
        trace = microburst_scenario(burst_packets_per_flow=50)
        records, drops = run_trace_through_fifo(trace)
        deqs = [r.deq_timestamp for r in records]
        assert deqs == sorted(deqs)
        assert drops == 0
        assert len(records) == len(trace)

    def test_drive_merges_events_consistently(self):
        """The replayed depth must match the recorded enq_qdepth."""
        trace = microburst_scenario(burst_packets_per_flow=30)
        records, _ = run_trace_through_fifo(trace)
        pq = PrintQueuePort(small_config(), model_dp_read_cost=False)

        seen_depths = []
        original = pq.process_enqueue

        def spy(flow, t, depth_after):
            seen_depths.append(depth_after)
            original(flow, t, depth_after)

        pq.process_enqueue = spy
        drive_printqueue(records, pq, engine="scalar")
        # Replayed depth-after at each enqueue == recorded depth + 1.
        by_enq = sorted(records, key=lambda r: r.enq_timestamp)
        expected = [r.enq_qdepth + 1 for r in by_enq]
        assert seen_depths == expected

    def test_batched_drive_sees_same_depths(self):
        """The batched engine's merged stream replays identical depths."""
        trace = microburst_scenario(burst_packets_per_flow=30)
        records, _ = run_trace_through_fifo(trace)
        pq = PrintQueuePort(small_config(), model_dp_read_cost=False)

        seen = []
        original = pq.process_batch

        def spy(is_enq, flows, times, depths):
            seen.extend(
                int(d) for e, d in zip(is_enq, depths) if e
            )
            original(is_enq, flows, times, depths)

        pq.process_batch = spy
        drive_printqueue(records, pq, engine="batched")
        by_enq = sorted(records, key=lambda r: r.enq_timestamp)
        assert seen == [r.enq_qdepth + 1 for r in by_enq]

    def test_simulate_workload_end_to_end(self):
        run = simulate_workload(
            "ws", duration_ns=5_000_000, load=1.1, config=small_config(), seed=2
        )
        assert len(run.records) > 100
        assert run.pq.packets_seen == len(run.records)
        assert len(run.pq.analysis.tw_snapshots) >= 1

    def test_deterministic(self):
        a = simulate_workload("ws", 3_000_000, 1.1, small_config(), seed=4)
        b = simulate_workload("ws", 3_000_000, 1.1, small_config(), seed=4)
        assert [r.deq_timestamp for r in a.records] == [
            r.deq_timestamp for r in b.records
        ]

    def test_dp_triggers_recorded(self):
        run = simulate_workload(
            "ws",
            3_000_000,
            1.2,
            small_config(),
            seed=4,
            dp_trigger_indices={10, 50},
        )
        assert set(run.dp_results) == {10, 50}

    def test_custom_trace_bypasses_generator(self):
        trace = microburst_scenario(burst_packets_per_flow=20)
        run = simulate_workload(
            "ignored", 1, config=small_config(), trace=trace
        )
        assert len(run.records) == len(trace)


class TestSampling:
    def _records(self, depths):
        flow = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
        return [
            DequeueRecord(flow, 100, i, i + 10, depth) for i, depth in enumerate(depths)
        ]

    def test_band_assignment(self):
        records = self._records([500, 1500, 3000, 12_000, 50_000])
        victims = sample_victims_by_band(records, per_band=10)
        assert victims[(1_000, 2_000)] == [1]
        assert victims[(2_000, 5_000)] == [2]
        assert victims[(10_000, 15_000)] == [3]
        assert victims[(20_000, None)] == [4]
        # Depth 500 falls below every band.
        assert sum(len(v) for v in victims.values()) == 4

    def test_per_band_cap(self):
        records = self._records([1500] * 500)
        victims = sample_victims_by_band(records, per_band=100)
        assert len(victims[(1_000, 2_000)]) == 100

    def test_deterministic_sampling(self):
        records = self._records([1500] * 500)
        a = sample_victims_by_band(records, per_band=10, seed=1)
        b = sample_victims_by_band(records, per_band=10, seed=1)
        assert a == b

    def test_band_labels(self):
        assert band_label((1_000, 2_000)) == "1-2k"
        assert band_label((20_000, None)) == ">20k"


class TestEvaluation:
    def test_async_scores_reasonable(self):
        run = simulate_workload("ws", 8_000_000, 1.3, small_config(), seed=6)
        depths = [r.enq_qdepth for r in run.records]
        lo = int(np.percentile(depths, 60))
        victims = [i for i, r in enumerate(run.records) if r.enq_qdepth >= lo][:20]
        scores = evaluate_async_queries(run.pq, run.taxonomy, run.records, victims)
        assert len(scores) == 20
        assert all(0 <= s.precision <= 1 and 0 <= s.recall <= 1 for s in scores)
        assert np.mean([s.recall for s in scores]) > 0.5

    def test_dataplane_beats_async_on_fresh_data(self):
        victims = set(range(2000, 2020))
        run = simulate_workload(
            "ws", 8_000_000, 1.3, small_config(), seed=6, dp_trigger_indices=victims
        )
        clean = simulate_workload("ws", 8_000_000, 1.3, small_config(), seed=6)
        dq = evaluate_dataplane_queries(
            run.dp_results, run.taxonomy, run.records, sorted(victims)
        )
        aq = evaluate_async_queries(
            clean.pq, clean.taxonomy, clean.records, sorted(victims)
        )
        assert np.mean([s.recall for s in dq]) >= np.mean([s.recall for s in aq]) - 0.05

    def test_baseline_evaluation_path(self):
        from repro.baselines.hashpipe import HashPipe

        cfg = small_config()
        hp = FixedIntervalEstimator(
            HashPipe(slots_per_stage=1024, stages=5), cfg.set_period_ns
        )
        run = simulate_workload(
            "ws", 8_000_000, 1.3, cfg, seed=6, baselines=[hp]
        )
        victims = list(range(1000, 1010))
        scores = evaluate_baseline(hp, run.taxonomy, run.records, victims)
        assert len(scores) == 10
        assert all(0 <= s.precision <= 1.0001 for s in scores)
