"""Call-graph resolution: methods, import aliases, ``functools.partial``,
context propagation — plus the meta-test that the live ``src/repro``
tree satisfies every PQ1xx concurrency invariant, fast."""

import time
from pathlib import Path

from repro.anlz import lint_paths
from repro.anlz.callgraph import build_project_index
from repro.anlz.contexts import async_roots, propagate, worker_roots
from repro.anlz.model import parse_module

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"

CONCURRENCY_RULES = ["PQ101", "PQ102", "PQ103", "PQ104", "PQ105"]


def build_tree(tmp_path, files):
    """Write ``rel_path -> source`` under a fixed ``proj/`` root and index
    the tree (primary qualnames are root-dir-prefixed: ``proj.pkg.mod``)."""
    root = tmp_path / "proj"
    modules = []
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        modules.append(parse_module(path, root))
    return build_project_index(modules)


def edges_of(index, qualname):
    return {edge.callee for edge in index.calls.get(qualname, ())}


class TestResolution:
    def test_cross_module_import_alias(self, tmp_path):
        index = build_tree(
            tmp_path,
            {
                "service/app.py": (
                    "from util.io import read_config as rc\n\n\n"
                    "async def handle():\n"
                    "    return rc()\n"
                ),
                "util/io.py": "def read_config():\n    return {}\n",
            },
        )
        assert "proj.util.io.read_config" in edges_of(index, "proj.service.app.handle")

    def test_method_resolution_via_self(self, tmp_path):
        index = build_tree(
            tmp_path,
            {
                "engine/core.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                    "\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
            },
        )
        assert "proj.engine.core.Engine.step" in edges_of(
            index, "proj.engine.core.Engine.run"
        )

    def test_method_resolution_via_annotation(self, tmp_path):
        index = build_tree(
            tmp_path,
            {
                "obs/gauge.py": (
                    "class Gauge:\n"
                    "    def set(self, v):\n"
                    "        self.v = v\n"
                ),
                "obs/poll.py": (
                    "from obs.gauge import Gauge\n\n\n"
                    "def poll(g: Gauge):\n"
                    "    g.set(1)\n"
                ),
            },
        )
        assert "proj.obs.gauge.Gauge.set" in edges_of(index, "proj.obs.poll.poll")

    def test_partial_resolution_direct_and_bound(self, tmp_path):
        index = build_tree(
            tmp_path,
            {
                "engine/pool.py": (
                    "from functools import partial\n\n\n"
                    "def work(x, y):\n"
                    "    return x + y\n\n\n"
                    "def fan_out(pool, items):\n"
                    "    bound = partial(work, 1)\n"
                    "    for i in items:\n"
                    "        pool.submit(partial(work, 0), i)\n"
                    "        pool.submit(bound, i)\n"
                ),
            },
        )
        assert len(index.submit_sites) == 2
        roots = worker_roots(index)
        assert [r.qualname for r in roots] == ["proj.engine.pool.work"]

    def test_propagate_shortest_chain(self, tmp_path):
        index = build_tree(
            tmp_path,
            {
                "service/app.py": (
                    "from service.helpers import step_one\n\n\n"
                    "async def handle():\n"
                    "    return step_one()\n"
                ),
                "service/helpers.py": (
                    "from util.io import leaf\n\n\n"
                    "def step_one():\n"
                    "    return leaf()\n"
                ),
                "util/io.py": "def leaf():\n    return 1\n",
            },
        )
        roots = async_roots(index)
        assert [r.qualname for r in roots] == ["proj.service.app.handle"]
        reached = propagate(index, roots)
        assert "proj.util.io.leaf" in reached
        reach = reached.reach("proj.util.io.leaf")
        assert reach.describe("open()") == (
            "service/app.py::handle -> service/helpers.py::step_one"
            " -> util/io.py::leaf -> open()"
        )

    def test_ref_edges_follow_submitted_callables(self, tmp_path):
        """A function shipped as an argument is reached like a call."""
        index = build_tree(
            tmp_path,
            {
                "engine/fan.py": (
                    "def worker(x):\n"
                    "    return x\n\n\n"
                    "def drive(pool):\n"
                    "    pool.submit(worker, 1)\n"
                ),
            },
        )
        reached = propagate(
            index, [index.functions["proj.engine.fan.drive"]]
        )
        assert "proj.engine.fan.worker" in reached


class TestLiveTreeConcurrency:
    def test_src_repro_concurrency_clean_and_fast(self):
        """Acceptance: PQ101-PQ105 pass project-wide, well under 10s."""
        start = time.monotonic()
        result = lint_paths([SRC_TREE], only=CONCURRENCY_RULES)
        elapsed = time.monotonic() - start
        assert result.findings == []
        assert result.files_checked > 50
        assert elapsed < 10.0
