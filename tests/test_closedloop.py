"""Tests for the closed-loop (AIMD) sender."""

import pytest

from repro.switch.packet import FlowKey
from repro.switch.port import EgressPort
from repro.switch.queue import EgressQueue
from repro.switch.switchsim import Switch
from repro.traffic.closedloop import ClosedLoopSender
from repro.units import GBPS

FLOW = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)
OTHER = FlowKey.from_strings("10.0.0.2", "10.1.0.1", 5001, 80)


def build(rate=10 * GBPS, capacity=None, **sender_kwargs):
    queue = EgressQueue(capacity_units=capacity)
    port = EgressPort(0, rate, queue=queue)
    switch = Switch([port])
    sender = ClosedLoopSender(switch, port, FLOW, **sender_kwargs)
    return switch, port, sender


class TestValidation:
    def test_bad_params(self):
        switch, port, _ = build()
        with pytest.raises(ValueError):
            ClosedLoopSender(switch, port, FLOW, rtt_ns=0)
        with pytest.raises(ValueError):
            ClosedLoopSender(switch, port, FLOW, mss_bytes=0)
        with pytest.raises(ValueError):
            ClosedLoopSender(switch, port, FLOW, initial_cwnd=0)
        with pytest.raises(ValueError):
            ClosedLoopSender(switch, port, FLOW, cwnd_limit=0.5)

    def test_double_start_rejected(self):
        _, _, sender = build(stop_ns=1000)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()


class TestDynamics:
    def test_reaches_link_rate_without_losses(self):
        """With ample buffer the flow should saturate the bottleneck."""
        switch, port, sender = build(
            rtt_ns=50_000, stop_ns=5_000_000, ssthresh=1000.0
        )
        sender.start()
        switch.run()
        # 10 Gbps for ~5 ms at 1500 B = ~4100 packets; allow ramp-up.
        assert sender.stats.sent > 2500
        assert sender.stats.lost == 0
        # Goodput within 2x of link rate over the active window.
        bytes_sent = sender.stats.sent * 1500
        assert bytes_sent * 8 / (5e-3) > 0.5 * 10 * GBPS

    def test_cwnd_halves_on_loss(self):
        switch, port, sender = build(
            capacity=20, rtt_ns=50_000, stop_ns=3_000_000, ssthresh=10_000.0
        )
        sender.start()
        switch.run()
        assert sender.stats.lost > 0
        # AIMD kept the window bounded near the pipe + buffer size.
        assert sender.stats.cwnd_max < 2_000

    def test_cwnd_limit_caps_rate(self):
        """A window cap models the paper's '~90% of link' background."""
        rtt = 100_000
        switch, port, sender = build(
            rtt_ns=rtt, stop_ns=10_000_000, ssthresh=10_000.0
        )
        cap = 0.9 * sender.bdp_packets(10 * GBPS)
        sender.cwnd_limit = cap
        sender.start()
        switch.run()
        active_s = 10e-3
        rate = sender.stats.acked * 1500 * 8 / active_s
        assert rate == pytest.approx(0.9 * 10 * GBPS, rel=0.15)
        assert sender.stats.lost == 0

    def test_stops_at_stop_ns(self):
        switch, port, sender = build(stop_ns=500_000, rtt_ns=50_000)
        sender.start()
        switch.run()
        sent_at_stop = sender.stats.sent
        assert sent_at_stop > 0
        # Nothing new after the stop time (acks drain, no sends).
        assert sender.in_flight == 0

    def test_acks_only_for_own_flow(self):
        from repro.switch.packet import Packet

        switch, port, sender = build(rtt_ns=50_000, stop_ns=200_000)
        sender.start()
        switch.inject(Packet(OTHER, 1500, 100))
        switch.run()
        # Acked count never exceeds own sent count.
        assert sender.stats.acked <= sender.stats.sent


class TestTwoFlows:
    def test_two_aimd_flows_share_the_link(self):
        queue = EgressQueue(capacity_units=200)
        port = EgressPort(0, 10 * GBPS, queue=queue)
        switch = Switch([port])
        a = ClosedLoopSender(
            switch, port, FLOW, rtt_ns=100_000, stop_ns=20_000_000, ssthresh=500.0
        )
        b = ClosedLoopSender(
            switch, port, OTHER, rtt_ns=100_000, stop_ns=20_000_000, ssthresh=500.0
        )
        a.start()
        b.start()
        switch.run()
        # Both make progress and neither starves (within 4x of each other).
        assert a.stats.acked > 1000 and b.stats.acked > 1000
        ratio = a.stats.acked / b.stats.acked
        assert 0.25 < ratio < 4.0
