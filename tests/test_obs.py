"""Tests for the observability layer (``repro.obs``).

Covers the metric primitives, the registry, RunReport serialisation, and
the two load-bearing guarantees: enabling metrics changes no diagnosis
result, and the scalar and batched ingest engines leave bit-identical
counters behind.
"""

import json

import pytest

from repro.core.diagnosis import Diagnoser
from repro.core.queries import QueryInterval
from repro.experiments.runner import simulate_workload
from repro.obs.metrics import MAX_LOG2_BUCKETS, Counter, Gauge, Histogram, Metrics
from repro.obs.report import DETERMINISTIC_SECTIONS, RunReport


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(7)
        g.set_max(3)
        assert g.snapshot() == 7
        g.set_max(11)
        assert g.snapshot() == 11
        g.set(2)
        assert g.snapshot() == 2

    def test_histogram_log2_bucket_boundaries(self):
        h = Histogram()
        for v in (0, 1, 2, 3, 4, 7, 8):
            h.observe(v)
        # bucket b covers [2^(b-1), 2^b): 0 -> b0; 1 -> b1; 2,3 -> b2;
        # 4..7 -> b3; 8 -> b4.
        assert h.counts[0] == 1
        assert h.counts[1] == 1
        assert h.counts[2] == 2
        assert h.counts[3] == 2
        assert h.counts[4] == 1
        assert h.count == 7
        assert h.sum == 25
        assert h.mean == pytest.approx(25 / 7)

    def test_histogram_overflow_clamps_to_last_bucket(self):
        h = Histogram()
        h.observe(1 << 100)
        assert h.counts[MAX_LOG2_BUCKETS - 1] == 1

    def test_histogram_nonzero_buckets_upper_bounds(self):
        h = Histogram()
        h.observe(3)
        h.observe(3)
        h.observe(100)
        # 3 -> bucket 2 (upper bound 2^2-1=3); 100 -> bucket 7 (ub 127).
        assert h.nonzero_buckets() == [(3, 2), (127, 1)]

    def test_histogram_snapshot_shape(self):
        h = Histogram()
        h.observe(5)
        snap = h.snapshot()
        assert snap == {"count": 1, "sum": 5, "mean": 5.0, "buckets": {"7": 1}}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        assert m.histogram("h", kind="x") is m.histogram("h", kind="x")
        assert len(m) == 2

    def test_labels_distinguish_instruments(self):
        m = Metrics()
        m.counter("q", kind="dp").inc()
        m.counter("q", kind="async").inc(2)
        assert m.find("q", kind="dp").value == 1
        assert m.find("q", kind="async").value == 2
        assert m.find("q", kind="missing") is None

    def test_kind_clash_raises(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            m.gauge("x")

    def test_snapshot_renders_labels(self):
        m = Metrics()
        m.counter("hits", port="0").inc(3)
        m.gauge("depth").set(9)
        snap = m.snapshot()
        assert snap == {'hits{port="0"}': 3, "depth": 9}

    def test_prometheus_exposition(self):
        m = Metrics()
        m.counter("c_total").inc(2)
        m.histogram("lat").observe(3)
        m.histogram("lat").observe(100)
        text = m.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE c_total counter" in lines
        assert "c_total 2" in lines
        assert "# TYPE lat histogram" in lines
        # Buckets are cumulative and end with +Inf == count.
        assert 'lat_bucket{le="3"} 1' in lines
        assert 'lat_bucket{le="127"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 2' in lines
        assert "lat_sum 103" in lines
        assert "lat_count 2" in lines
        assert text.endswith("\n")

    def test_samples_timeline(self):
        m = Metrics()
        m.sample(100, {"packets_seen": 5})
        m.sample(200, {"packets_seen": 9})
        assert m.samples == [(100, {"packets_seen": 5}), (200, {"packets_seen": 9})]


@pytest.fixture(scope="module")
def small_run():
    return simulate_workload(
        "ws", duration_ns=2_000_000, load=1.3, seed=5, metrics=Metrics()
    )


class TestRunReport:
    def test_sections_present(self, small_run):
        report = small_run.report()
        for name in DETERMINISTIC_SECTIONS:
            assert report.section(name) is not None, name
        assert report.section("queries") is not None
        assert report.section("metrics") is not None

    def test_per_level_counters_consistent(self, small_run):
        tw = small_run.report().section("time_windows")
        per_level = tw["per_level"]
        assert len(per_level) == small_run.pq.analysis.config.T
        assert sum(r["passes"] for r in per_level) == tw["passes"]
        assert sum(r["drops"] for r in per_level) == tw["drops"]
        for row in per_level:
            assert row["collisions"] == row["passes"] + row["drops"]
            assert 0.0 <= row["collision_rate"] <= 1.0

    def test_json_round_trip(self, small_run, tmp_path):
        report = small_run.report()
        path = tmp_path / "report.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        # The file itself is plain JSON.
        assert json.loads(path.read_text())["version"] == RunReport.VERSION

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(ValueError, match="version"):
            RunReport.load(path)

    def test_prometheus_exposition_of_report(self, small_run):
        text = small_run.report().to_prometheus()
        assert "# TYPE pq_tw_inserts_total counter" in text
        assert 'pq_tw_inserts_total{level="0"}' in text
        assert "pq_qm_pushes_total" in text
        assert "pq_packets_seen_total" in text

    def test_summary_mentions_config_and_counters(self, small_run):
        text = small_run.report().summary()
        assert small_run.pq.analysis.config.describe() in text
        assert "stale filter" in text
        assert "queue monitor" in text

    def test_poll_samples_are_monotonic(self, small_run):
        samples = small_run.report().section("samples")
        assert samples, "expected at least one poll-boundary sample"
        times = [s["time_ns"] for s in samples]
        assert times == sorted(times)
        seen = [s["counters"]["packets_seen"] for s in samples]
        assert seen == sorted(seen)


class TestEngineAndMetricsEquivalence:
    """The two guarantees the observability layer is built around."""

    KW = dict(duration_ns=2_500_000, load=1.3, seed=9)

    def test_scalar_and_batched_counters_identical(self):
        views = {}
        for engine in ("scalar", "batched"):
            run = simulate_workload(
                "ws", engine=engine, metrics=Metrics(), **self.KW
            )
            views[engine] = run.report().deterministic_view()
        assert views["scalar"] == views["batched"]

    def test_metrics_do_not_change_diagnosis(self):
        """A metrics-enabled run yields bit-identical results to a bare one."""
        run_on = simulate_workload("ws", metrics=Metrics(), **self.KW)
        run_off = simulate_workload("ws", **self.KW)

        victim = max(run_on.records, key=lambda r: r.queuing_delay)
        interval = QueryInterval.for_victim(
            victim.enq_timestamp, victim.deq_timestamp
        )
        result_on = run_on.pq.query(interval=interval)
        result_off = run_off.pq.query(interval=interval)
        assert result_on.estimate.as_dict() == result_off.estimate.as_dict()

        diag_on = Diagnoser(run_on.pq).diagnose_record(victim).summary(top=3)
        diag_off = Diagnoser(run_off.pq).diagnose_record(victim).summary(top=3)
        assert diag_on == diag_off

        # Structure counters agree too (samples only exist metrics-on).
        view_on = run_on.report().deterministic_view()
        view_off = run_off.report().deterministic_view()
        view_on.pop("samples")
        view_off.pop("samples")
        assert view_on == view_off

    def test_query_instrumentation_counts(self):
        run = simulate_workload("ws", metrics=Metrics(), **self.KW)
        victim = max(run.records, key=lambda r: r.queuing_delay)
        interval = QueryInterval.for_victim(
            victim.enq_timestamp, victim.deq_timestamp
        )
        run.pq.query(interval=interval)
        m = run.metrics
        assert (
            m.find("pq_queries_total", kind="time_windows", mode="async").value == 1
        )
        assert m.find("pq_queries_accepted_total").value == 1
        hist = m.find("pq_query_latency_ns", kind="time_windows")
        assert hist is not None and hist.count == 1

    def test_ingest_instrumentation_counts(self):
        run = simulate_workload("ws", metrics=Metrics(), **self.KW)
        m = run.metrics
        batches = m.find("pq_ingest_batches_total")
        sizes = m.find("pq_ingest_batch_events")
        assert batches is not None and batches.value > 0
        assert sizes is not None and sizes.count == batches.value
        # Every merged event lands in exactly one batch: 2 per record.
        assert sizes.sum == 2 * len(run.records)


class TestInstrumentConcurrency:
    """The service shares one registry across the ingest task and query
    handlers; increments from many threads must never lose updates."""

    def test_concurrent_increments_are_exact(self):
        import threading

        metrics = Metrics()
        threads_n, iters = 8, 2_000
        barrier = threading.Barrier(threads_n)

        def hammer(tid):
            barrier.wait()
            counter = metrics.counter("pq_service_requests_total")
            gauge = metrics.gauge("pq_service_queue_depth")
            hist = metrics.histogram("pq_service_latency_us")
            for i in range(iters):
                counter.inc()
                gauge.set_max(tid * iters + i)
                hist.observe(i + 1)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.counter("pq_service_requests_total").value == threads_n * iters
        hist = metrics.histogram("pq_service_latency_us")
        assert hist.count == threads_n * iters
        assert hist.sum == threads_n * sum(range(1, iters + 1))
        assert metrics.gauge("pq_service_queue_depth").value == threads_n * iters - 1

    def test_instruments_survive_pickling(self):
        import pickle

        metrics = Metrics()
        metrics.counter("c").inc(3)
        metrics.histogram("h").observe(5)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.counter("c").value == 3
        assert clone.histogram("h").count == 1
        clone.counter("c").inc()  # lock recreated: still usable
        assert clone.counter("c").value == 4
