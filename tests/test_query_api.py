"""The unified ``PrintQueuePort.query`` surface and the retired names."""

import warnings

import pytest

from repro import QueryError, QueryInterval, QueryResult
from repro.core.config import PrintQueueConfig
from repro.core.printqueue import PrintQueuePort
from repro.core.queries import FlowEstimate
from repro.experiments.runner import simulate_workload
from repro.switch.packet import FlowKey, Packet
from repro.switch.port import EgressPort
from repro.switch.queue import EgressQueue
from repro.switch.scheduler import StrictPriorityScheduler
from repro.switch.switchsim import Switch
from repro.units import GBPS

CONFIG = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)


@pytest.fixture(scope="module")
def run():
    return simulate_workload(
        "ws", duration_ns=1_500_000, load=1.3, config=CONFIG, seed=21
    )


@pytest.fixture(scope="module")
def victim_interval(run):
    victim = max(run.records, key=lambda r: r.queuing_delay)
    return victim, QueryInterval.for_victim(
        victim.enq_timestamp, victim.deq_timestamp
    )


# ---------------------------------------------------------------------------
# round trips per mode


def test_async_interval_query_round_trip(run, victim_interval):
    victim, interval = victim_interval
    result = run.pq.query(interval=interval)
    assert isinstance(result, QueryResult)
    assert result.kind == "time_windows" and result.mode == "async"
    assert result.interval == interval and result.accepted
    assert result.at_ns is None and result.classes is None
    assert result.estimate.total > 0
    assert result.top(3) == result.estimate.top(3)


def test_queue_monitor_query_round_trip(run, victim_interval):
    victim, _ = victim_interval
    result = run.pq.query(at_ns=victim.enq_timestamp)
    assert result.kind == "queue_monitor" and result.mode is None
    assert result.at_ns == victim.enq_timestamp
    assert result.interval is None and result.snapshot is None
    assert isinstance(result.estimate, FlowEstimate)


def test_data_plane_query_round_trip(run, victim_interval):
    victim, interval = victim_interval
    result = run.pq.query(interval=interval, mode="data_plane")
    assert result.kind == "time_windows" and result.mode == "data_plane"
    assert result.accepted and result.snapshot is not None
    assert result.snapshot.source == "data-plane"
    # Default read instant: the last covered instant of the interval.
    assert result.at_ns == interval.end_ns - 1
    explicit = run.pq.query(
        interval=interval, mode="data_plane", at_ns=victim.deq_timestamp
    )
    assert explicit.at_ns == victim.deq_timestamp


def test_rejected_data_plane_query_is_reported_not_raised(
    run, victim_interval, monkeypatch
):
    _, interval = victim_interval
    monkeypatch.setattr(run.pq.analysis, "dp_read", lambda now_ns: None)
    result = run.pq.query(interval=interval, mode="data_plane")
    assert not result.accepted
    assert result.estimate.total == 0 and result.snapshot is None


def test_classed_queue_monitor_round_trip():
    pq = PrintQueuePort(
        CONFIG, d_ns=1200.0, num_classes=2, model_dp_read_cost=False
    )
    queues = [EgressQueue(), EgressQueue()]
    port = EgressPort(0, 10 * GBPS, scheduler=StrictPriorityScheduler(queues))
    port.add_enqueue_hook(pq.on_enqueue)
    port.add_egress_hook(pq.on_dequeue)
    switch = Switch([port])
    bulk = FlowKey.from_strings("10.0.0.9", "10.1.0.1", 5009, 80)
    high = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5001, 80)
    packets = [Packet(bulk, 1500, i * 400, priority=1) for i in range(200)]
    packets += [Packet(high, 1500, 10_000 + i * 900, priority=0) for i in range(100)]
    switch.run_trace(packets)
    pq.finish(packets[-1].arrival_ns + 1_000_000)

    t = 150_000
    both = pq.query(at_ns=t, classes=[0, 1])
    only_high = pq.query(at_ns=t, classes=[0])
    assert both.classes == (0, 1) and only_high.classes == (0,)
    assert only_high.estimate[bulk] == 0
    assert both.estimate.total >= only_high.estimate.total
    # The retired name raises before touching the classed monitor.
    with pytest.raises(QueryError, match="query"):
        pq.original_culprits_by_class(t, classes=[0])


# ---------------------------------------------------------------------------
# invalid combinations fail eagerly


def test_query_argument_validation(run, victim_interval):
    _, interval = victim_interval
    pq = run.pq
    with pytest.raises(QueryError):
        pq.query()  # neither interval nor at_ns
    with pytest.raises(QueryError):
        pq.query(interval=interval, classes=[0])
    with pytest.raises(QueryError):
        pq.query(interval=interval, at_ns=5)  # async + at_ns
    with pytest.raises(QueryError):
        pq.query(interval=interval, mode="sideways")
    with pytest.raises(QueryError):
        pq.query(at_ns=5, classes=[0])  # port has no classed monitor


def test_query_is_keyword_only(run, victim_interval):
    _, interval = victim_interval
    with pytest.raises(TypeError):
        run.pq.query(interval)


# ---------------------------------------------------------------------------
# retired query surface: each old name raises a typed QueryError that
# names the exact query() replacement (no DeprecationWarning shims remain)


def test_old_methods_raise_query_error(run, victim_interval):
    victim, interval = victim_interval
    pq = run.pq
    with pytest.raises(QueryError, match="async_query"):
        pq.async_query(interval)
    with pytest.raises(QueryError, match="original_culprits"):
        pq.original_culprits(victim.enq_timestamp)
    with pytest.raises(QueryError, match="data_plane_query_interval"):
        pq.data_plane_query_interval(victim.deq_timestamp, interval)
    with pytest.raises(QueryError, match="data_plane_query"):
        pq.data_plane_query(victim)


def test_removal_messages_name_replacement_kwargs(run, victim_interval):
    """Each retired name's error spells out the exact query() keywords."""
    victim, interval = victim_interval
    pq = run.pq
    expected = {
        "async_query": ("query(interval=...)", lambda: pq.async_query(interval)),
        "original_culprits": (
            "query(at_ns=...)",
            lambda: pq.original_culprits(victim.enq_timestamp),
        ),
        "original_culprits_by_class": (
            "query(at_ns=..., classes=...)",
            lambda: pq.original_culprits_by_class(
                victim.enq_timestamp, classes=[0]
            ),
        ),
        "data_plane_query_interval": (
            'query(interval=..., mode="data_plane", at_ns=...)',
            lambda: pq.data_plane_query_interval(victim.deq_timestamp, interval),
        ),
        "data_plane_query": (
            'mode="data_plane")',
            lambda: pq.data_plane_query(victim),
        ),
    }
    for name, (replacement, call) in expected.items():
        with pytest.raises(QueryError) as excinfo:
            call()
        message = str(excinfo.value)
        assert message.startswith(f"PrintQueuePort.{name}("), (name, message)
        assert replacement in message, (name, message)


def test_retired_names_have_no_side_effects(run, victim_interval):
    """The retired names raise eagerly — no query runs, nothing is stored."""
    victim, interval = victim_interval
    pq = run.pq
    version_before = pq.analysis.store.version
    dp_before = len(pq.dp_results)
    for call in (
        lambda: pq.async_query(interval),
        lambda: pq.original_culprits(victim.enq_timestamp),
        lambda: pq.data_plane_query_interval(victim.deq_timestamp, interval),
        lambda: pq.data_plane_query(victim),
    ):
        with pytest.raises(QueryError):
            call()
    assert pq.analysis.store.version == version_before
    assert len(pq.dp_results) == dp_before


def test_no_deprecation_shims_remain():
    """src/repro carries no warnings.warn(..., DeprecationWarning) shims."""
    import inspect

    from repro.core import printqueue

    source = inspect.getsource(printqueue)
    assert "DeprecationWarning" not in source
    assert "warnings.warn" not in source


def test_new_api_is_warning_free(run, victim_interval):
    victim, interval = victim_interval
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run.pq.query(interval=interval)
        run.pq.query(at_ns=victim.enq_timestamp)
        run.pq.query(interval=interval, mode="data_plane")


def test_package_reexports():
    import repro

    assert repro.QueryResult is QueryResult
    assert repro.QueryError is QueryError
