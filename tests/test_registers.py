"""Tests for the Figure-8 bank-flipping discipline."""

import pytest

from repro.core.registers import BankedStructure
from repro.errors import RegisterError


class Counter:
    """Trivial structure standing in for a register array."""

    def __init__(self):
        self.value = 0


def make_banks():
    return BankedStructure(Counter)


class TestPeriodicFlips:
    def test_flip_returns_frozen_active(self):
        banks = make_banks()
        banks.active.value = 42
        frozen = banks.periodic_flip()
        assert frozen.value == 42
        assert banks.active.value == 0
        assert banks.periodic_flips == 1

    def test_alternation(self):
        banks = make_banks()
        seen = set()
        for _ in range(6):
            seen.add(banks.active_index)
            banks.periodic_flip()
        # Without data-plane locks, flips alternate between two banks.
        assert len(seen) == 2

    def test_updates_go_to_new_active(self):
        banks = make_banks()
        banks.active.value = 1
        frozen = banks.periodic_flip()
        banks.active.value = 2
        assert frozen.value == 1


class TestDataPlaneFreeze:
    def test_freeze_locks_and_redirects(self):
        banks = make_banks()
        banks.active.value = 7
        frozen = banks.dp_freeze()
        assert frozen.value == 7
        assert banks.locked_index is not None
        assert banks.active.value == 0

    def test_concurrent_freeze_rejected(self):
        banks = make_banks()
        assert banks.dp_freeze() is not None
        assert banks.dp_freeze() is None
        assert banks.dp_rejections == 1

    def test_release_allows_new_freeze(self):
        banks = make_banks()
        banks.dp_freeze()
        banks.dp_release()
        assert banks.dp_freeze() is not None

    def test_release_without_freeze_raises(self):
        with pytest.raises(RegisterError):
            make_banks().dp_release()

    def test_periodic_flips_avoid_locked_bank(self):
        """Section 6.2: while the special registers are being read,
        periodic updates flip between the two unused banks."""
        banks = make_banks()
        banks.dp_freeze()
        locked = banks.locked_index
        for _ in range(5):
            banks.periodic_flip()
            assert banks.active_index != locked

    def test_locked_bank_content_untouched(self):
        banks = make_banks()
        banks.active.value = 99
        frozen = banks.dp_freeze()
        for _ in range(4):
            banks.periodic_flip()
            banks.active.value += 1
        assert frozen.value == 99
