"""Unit tests for EgressQueue depth accounting and metadata stamping."""

import pytest

from repro.errors import SimulationError
from repro.switch.packet import FlowKey, Packet
from repro.switch.queue import EgressQueue

FLOW = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)


def make_packet(size=1500, arrival=0):
    return Packet(FLOW, size, arrival)


class TestEnqueueMetadata:
    def test_enq_qdepth_excludes_self(self):
        q = EgressQueue()
        p1, p2 = make_packet(), make_packet()
        q.enqueue(p1, 10)
        q.enqueue(p2, 20)
        assert p1.enq_qdepth == 0
        assert p2.enq_qdepth == 1

    def test_enq_timestamp_stamped(self):
        q = EgressQueue()
        p = make_packet()
        q.enqueue(p, 123)
        assert p.enq_timestamp == 123

    def test_deq_stamps_timedelta_and_depth(self):
        q = EgressQueue()
        p = make_packet()
        q.enqueue(p, 100)
        out = q.dequeue(150)
        assert out is p
        assert p.deq_timedelta == 50
        assert p.deq_qdepth == 0

    def test_fifo_order(self):
        q = EgressQueue()
        packets = [make_packet() for _ in range(5)]
        for i, p in enumerate(packets):
            q.enqueue(p, i)
        for p in packets:
            assert q.dequeue(100) is p


class TestDepthAccounting:
    def test_packet_units_default(self):
        q = EgressQueue()
        q.enqueue(make_packet(size=9000), 0)
        assert q.depth_units == 1

    def test_cell_units(self):
        q = EgressQueue(cell_bytes=80)
        q.enqueue(make_packet(size=1500), 0)  # ceil(1500/80) = 19 cells
        assert q.depth_units == 19
        q.enqueue(make_packet(size=80), 0)
        assert q.depth_units == 20
        q.enqueue(make_packet(size=81), 0)
        assert q.depth_units == 22

    def test_bytes_tracked(self):
        q = EgressQueue()
        q.enqueue(make_packet(size=100), 0)
        q.enqueue(make_packet(size=200), 0)
        assert q.buffered_bytes == 300
        q.dequeue(5)
        assert q.buffered_bytes == 200

    def test_max_depth_seen(self):
        q = EgressQueue()
        for i in range(4):
            q.enqueue(make_packet(), i)
        q.dequeue(10)
        q.dequeue(11)
        assert q.max_depth_seen == 4


class TestTailDrop:
    def test_drop_when_full(self):
        q = EgressQueue(capacity_units=2)
        assert q.enqueue(make_packet(), 0)
        assert q.enqueue(make_packet(), 0)
        victim = make_packet()
        assert not q.enqueue(victim, 0)
        assert victim.dropped
        assert q.drops == 1
        assert len(q) == 2

    def test_capacity_respects_units(self):
        q = EgressQueue(capacity_units=20, cell_bytes=80)
        assert q.enqueue(make_packet(size=1500), 0)  # 19 cells
        assert not q.enqueue(make_packet(size=160), 0)  # 2 cells > 1 left
        assert q.enqueue(make_packet(size=80), 0)  # exactly fits

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EgressQueue(capacity_units=0)


class TestErrors:
    def test_dequeue_empty(self):
        with pytest.raises(SimulationError):
            EgressQueue().dequeue(0)

    def test_dequeue_before_enqueue_time(self):
        q = EgressQueue()
        q.enqueue(make_packet(), 100)
        with pytest.raises(SimulationError):
            q.dequeue(50)

    def test_samples_disabled_by_default(self):
        q = EgressQueue()
        with pytest.raises(SimulationError):
            _ = q.samples

    def test_samples_recorded(self):
        q = EgressQueue(record_samples=True)
        q.enqueue(make_packet(), 5)
        q.enqueue(make_packet(), 7)
        q.dequeue(9)
        depths = [(s.time_ns, s.depth) for s in q.samples]
        assert depths == [(5, 1), (7, 2), (9, 1)]
