"""Tests for the queue monitor (Section 5) — including a replay of the
paper's Figure 7 example and a hypothesis equivalence proof against the
exact monotone-stack oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queuemonitor import QueueMonitor
from repro.switch.packet import FlowKey

FLOWS = {
    name: FlowKey.from_strings("10.0.0.%d" % (i + 1), "10.1.0.1", 5000 + i, 80)
    for i, name in enumerate("ABCDEFGH")
}


class TestFigure7:
    def test_stale_peak_entry_filtered(self):
        """Figure 7: B raises the queue 2->5, the queue drains back to 2,
        D raises it 2->7.  The entry at level 5 is a stale leftover from
        the earlier peak; the walk must keep A (level <=2) and D (7) but
        not B."""
        qm = QueueMonitor(levels=16)
        qm.on_enqueue(FLOWS["A"], 2)  # A brings depth to 2
        qm.on_enqueue(FLOWS["B"], 5)  # B: 2 -> 5
        qm.on_dequeue(FLOWS["B"], 2)  # drains back to 2
        qm.on_enqueue(FLOWS["D"], 7)  # D: 2 -> 7
        snapshot = qm.snapshot(time_ns=100)
        survivors = {(e.level, e.flow) for e in snapshot.walk()}
        assert (2, FLOWS["A"]) in survivors
        assert (7, FLOWS["D"]) in survivors
        assert all(flow != FLOWS["B"] for _, flow in survivors)

    def test_flow_counts(self):
        qm = QueueMonitor(levels=16)
        qm.on_enqueue(FLOWS["A"], 1)
        qm.on_enqueue(FLOWS["A"], 2)
        qm.on_enqueue(FLOWS["B"], 3)
        counts = qm.snapshot(0).flow_counts()
        assert counts == {FLOWS["A"]: 2, FLOWS["B"]: 1}


class TestBasicSemantics:
    def test_simple_rise(self):
        qm = QueueMonitor(levels=8)
        for depth, name in [(1, "A"), (2, "B"), (3, "C")]:
            qm.on_enqueue(FLOWS[name], depth)
        entries = qm.snapshot(0).walk()
        assert [(e.level, e.flow) for e in entries] == [
            (1, FLOWS["A"]),
            (2, FLOWS["B"]),
            (3, FLOWS["C"]),
        ]

    def test_drain_clears_upper_levels(self):
        qm = QueueMonitor(levels=8)
        qm.on_enqueue(FLOWS["A"], 1)
        qm.on_enqueue(FLOWS["B"], 2)
        qm.on_dequeue(FLOWS["A"], 1)
        entries = qm.snapshot(0).walk()
        assert [(e.level, e.flow) for e in entries] == [(1, FLOWS["A"])]

    def test_refill_overwrites(self):
        qm = QueueMonitor(levels=8)
        qm.on_enqueue(FLOWS["A"], 1)
        qm.on_enqueue(FLOWS["B"], 2)
        qm.on_dequeue(FLOWS["A"], 1)
        qm.on_enqueue(FLOWS["C"], 2)
        entries = qm.snapshot(0).walk()
        assert [(e.level, e.flow) for e in entries] == [
            (1, FLOWS["A"]),
            (2, FLOWS["C"]),
        ]

    def test_empty_queue_no_survivors(self):
        qm = QueueMonitor(levels=8)
        qm.on_enqueue(FLOWS["A"], 1)
        qm.on_dequeue(FLOWS["A"], 0)
        assert qm.snapshot(0).walk() == []

    def test_granularity_folds_levels(self):
        qm = QueueMonitor(levels=8, granularity=4)
        qm.on_enqueue(FLOWS["A"], 3)  # level 0
        qm.on_enqueue(FLOWS["B"], 9)  # level 2
        entries = qm.snapshot(0).walk()
        assert [(e.level, e.flow) for e in entries] == [(2, FLOWS["B"])]

    def test_overflow_clamped(self):
        qm = QueueMonitor(levels=4)
        qm.on_enqueue(FLOWS["A"], 100)
        assert qm.overflows == 1
        assert qm.top == 3

    def test_reset(self):
        qm = QueueMonitor(levels=8)
        qm.on_enqueue(FLOWS["A"], 1)
        qm.reset()
        assert qm.snapshot(0).walk() == []
        assert qm.top == 0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            QueueMonitor(levels=0)
        with pytest.raises(ValueError):
            QueueMonitor(levels=4, granularity=0)

    def test_snapshot_is_frozen(self):
        qm = QueueMonitor(levels=8)
        qm.on_enqueue(FLOWS["A"], 1)
        snap = qm.snapshot(0)
        qm.on_enqueue(FLOWS["B"], 2)
        assert len(snap.walk()) == 1


class MonotoneStackOracle:
    """The exact original-culprit semantics: a stack of (level, flow)
    pairs, pushed on enqueue, popped down to the new depth on dequeue."""

    def __init__(self):
        self.stack = []
        self.depth = 0

    def enqueue(self, flow):
        self.depth += 1
        self.stack.append((self.depth, flow))

    def dequeue(self):
        self.depth -= 1
        while self.stack and self.stack[-1][0] > self.depth:
            self.stack.pop()

    def survivors(self):
        return list(self.stack)


@settings(max_examples=80, deadline=None)
@given(
    ops=st.lists(st.booleans(), min_size=1, max_size=400),
)
def test_monitor_equals_oracle(ops):
    """With granularity 1 and lossless levels, the queue monitor's walk
    must equal the exact monotone-stack oracle after any enqueue/dequeue
    sequence (dequeues on an empty queue are skipped)."""
    qm = QueueMonitor(levels=512)
    oracle = MonotoneStackOracle()
    flows = list(FLOWS.values())
    i = 0
    for is_enqueue in ops:
        if is_enqueue:
            flow = flows[i % len(flows)]
            i += 1
            oracle.enqueue(flow)
            qm.on_enqueue(flow, oracle.depth)
        else:
            if oracle.depth == 0:
                continue
            leaving = flows[(i * 7) % len(flows)]
            oracle.dequeue()
            qm.on_dequeue(leaving, oracle.depth)
    got = [(e.level, e.flow) for e in qm.snapshot(0).walk()]
    assert got == oracle.survivors()
