"""Tests for the FlowRadar baseline: encode + single-cell decode."""

import pytest

from repro.baselines.flowradar import FlowRadar
from repro.switch.packet import FlowKey


def flow(i):
    return FlowKey.from_strings(
        "10.0.%d.%d" % (i // 250, i % 250 + 1), "10.1.0.1", 5000 + (i % 60000), 80
    )


class TestDecodeRoundTrip:
    def test_single_flow(self):
        fr = FlowRadar(num_cells=64, num_hashes=3)
        for _ in range(17):
            fr.update(flow(0))
        result = fr.decode()
        assert result.flows == {flow(0): 17}
        assert result.fully_decoded

    def test_moderate_population_exact(self):
        """Below the decode threshold (#flows << cells), the decode is
        exact for every flow."""
        fr = FlowRadar(num_cells=1024, num_hashes=3)
        truth = {}
        for i in range(100):
            count = (i % 7) + 1
            fr.update(flow(i), count=count)
            truth[flow(i)] = count
        result = fr.decode()
        assert result.flows == truth
        assert result.fully_decoded

    def test_multiple_updates_same_flow(self):
        fr = FlowRadar(num_cells=256, num_hashes=3)
        fr.update(flow(0), count=3)
        fr.update(flow(0), count=4)
        assert fr.decode().flows[flow(0)] == 7

    def test_overload_leaves_undecoded_cells(self):
        """Far more flows than cells: the peeling decode stalls and
        reports undecoded cells rather than inventing flows."""
        fr = FlowRadar(num_cells=64, num_hashes=3)
        truth = {}
        for i in range(500):
            fr.update(flow(i))
            truth[flow(i)] = 1
        result = fr.decode()
        assert not result.fully_decoded
        # Whatever did decode is correct.
        for f, count in result.flows.items():
            assert truth[f] == count

    def test_decode_is_nondestructive(self):
        fr = FlowRadar(num_cells=128, num_hashes=3)
        fr.update(flow(0), count=5)
        first = fr.decode()
        second = fr.decode()
        assert first.flows == second.flows


class TestValidation:
    def test_bad_cells(self):
        with pytest.raises(ValueError):
            FlowRadar(num_cells=0)

    def test_bad_hashes(self):
        with pytest.raises(ValueError):
            FlowRadar(num_cells=8, num_hashes=0)
        with pytest.raises(ValueError):
            FlowRadar(num_cells=8, num_hashes=9)

    def test_bad_filter(self):
        with pytest.raises(ValueError):
            FlowRadar(filter_bits=4)

    def test_reset(self):
        fr = FlowRadar(num_cells=64)
        fr.update(flow(0))
        fr.reset()
        result = fr.decode()
        assert result.flows == {}
        assert result.fully_decoded

    def test_flow_counts_interface(self):
        fr = FlowRadar(num_cells=64)
        fr.update(flow(0), count=2)
        assert fr.flow_counts() == {flow(0): 2}

    def test_sram_entries_accounts_filter(self):
        fr = FlowRadar(num_cells=100, filter_bits=640)
        assert fr.sram_entries == 100 + 10
