"""Tests for the linear-storage telemetry models (NetSight/BurstRadar)."""

import pytest

from repro.baselines.linear import LinearStorageModel
from repro.switch.packet import FlowKey

A = FlowKey.from_strings("10.0.0.1", "10.1.0.1", 5000, 80)


class TestNetSightMode:
    def test_every_packet_exported(self):
        model = LinearStorageModel(record_bytes=16)
        for t in range(0, 1000, 100):
            model.update(A, t)
        assert model.exported_packets == 10
        assert model.exported_bytes == 160

    def test_measured_rate(self):
        model = LinearStorageModel(record_bytes=16)
        # 1000 packets over 1 ms -> 1 Mpps -> 16 MB/s.
        for i in range(1000):
            model.update(A, i * 1000)
        assert model.storage_mbps() == pytest.approx(16.0, rel=0.01)

    def test_rate_zero_when_empty(self):
        assert LinearStorageModel().storage_mbps() == 0.0

    def test_records_kept_on_request(self):
        model = LinearStorageModel(keep_records=True)
        model.update(A, 5)
        assert model.records()[0].deq_timestamp == 5

    def test_records_not_kept_by_default(self):
        model = LinearStorageModel()
        model.update(A, 5)
        with pytest.raises(ValueError):
            model.records()


class TestBurstRadarMode:
    def test_only_congested_packets(self):
        model = LinearStorageModel(congested_only=True, depth_threshold=10)
        model.update(A, 0, enq_qdepth=5)
        model.update(A, 1, enq_qdepth=15)
        model.update(A, 2, enq_qdepth=10)
        assert model.exported_packets == 2

    def test_bad_record_size(self):
        with pytest.raises(ValueError):
            LinearStorageModel(record_bytes=0)
