"""Tests for the scenario builders (microburst, incast, case study)."""

import pytest

from repro.switch.fastpath import fifo_timestamps
from repro.switch.packet import PROTO_TCP, PROTO_UDP
from repro.traffic.scenarios import (
    incast_scenario,
    microburst_scenario,
    udp_burst_case_study,
)
from repro.units import DEFAULT_LINK_RATE_BPS, NS_PER_SEC


class TestMicroburst:
    def test_burst_exceeds_drain_rate(self):
        trace = microburst_scenario()
        # During the burst window the offered rate is far above 10 Gbps.
        start = 1_000_000
        burst = trace.slice_time(start, start + 100_000)
        rate = burst.size_bytes.sum() * 8 / (100_000 / NS_PER_SEC)
        assert rate > 2 * DEFAULT_LINK_RATE_BPS

    def test_burst_builds_queue(self):
        trace = microburst_scenario()
        result = fifo_timestamps(
            trace.arrival_ns, trace.size_bytes, DEFAULT_LINK_RATE_BPS
        )
        assert result.enq_qdepth.max() > 500

    def test_flow_population(self):
        trace = microburst_scenario(burst_flows=8)
        assert trace.num_flows == 9  # 8 burst + 1 background

    def test_background_alone_underloaded(self):
        trace = microburst_scenario(burst_flows=1, burst_packets_per_flow=1)
        assert trace.offered_load_bps() < DEFAULT_LINK_RATE_BPS


class TestIncast:
    def test_synchronized_starts(self):
        trace = incast_scenario(fan_in=16, sync_spread_ns=20_000)
        first_arrivals = []
        for i in range(trace.num_flows):
            mask = trace.flow_index == i
            first_arrivals.append(int(trace.arrival_ns[mask].min()))
        assert max(first_arrivals) - min(first_arrivals) <= 25_000

    def test_fan_in_flow_count(self):
        assert incast_scenario(fan_in=32).num_flows == 32

    def test_single_application_regime(self):
        """The paper's point: the whole burst is one application's
        traffic — every flow shares the destination."""
        trace = incast_scenario(fan_in=8)
        dsts = {f.dst_ip for f in trace.flows}
        assert len(dsts) == 1


class TestCaseStudy:
    def test_flow_roles(self):
        study = udp_burst_case_study(duration_ns=10_000_000, burst_datagrams=100)
        assert study.burst_flow.proto == PROTO_UDP
        assert study.background_flow.proto == PROTO_TCP
        assert study.new_tcp_flow.proto == PROTO_TCP
        assert study.new_tcp_start_ns > study.burst_start_ns

    def test_rates_match_spec(self):
        study = udp_burst_case_study(duration_ns=30_000_000, burst_datagrams=2000)
        trace = study.trace
        # Background flow ~9 Gbps over the run.
        bg_index = trace.flows.index(study.background_flow)
        mask = trace.flow_index == bg_index
        bg_bytes = int(trace.size_bytes[mask].sum())
        bg_rate = bg_bytes * 8 / (trace.duration_ns / NS_PER_SEC)
        assert bg_rate == pytest.approx(0.9 * DEFAULT_LINK_RATE_BPS, rel=0.1)

    def test_burst_causes_long_lived_queue(self):
        """The headline effect: queuing persists far longer than the
        burst itself (paper: 76x; open-loop model: >2x)."""
        study = udp_burst_case_study(duration_ns=60_000_000)
        trace = study.trace
        result = fifo_timestamps(
            trace.arrival_ns, trace.size_bytes, DEFAULT_LINK_RATE_BPS
        )
        burst_index = trace.flows.index(study.burst_flow)
        burst_mask = trace.flow_index == burst_index
        burst_span = (
            trace.arrival_ns[burst_mask].max() - trace.arrival_ns[burst_mask].min()
        )
        # Queuing persists to the end of the (60 ms) trace — long after
        # the ~30 ms burst ended — because the post-burst drain rate is
        # only 0.5 Gbps.  The full drain takes ~6x the burst length.
        depth_positive = result.enq_qdepth > 10
        last_congested = result.enq_timestamp[depth_positive].max()
        queuing_span = last_congested - study.burst_start_ns
        assert queuing_span > 1.8 * burst_span
        # The backlog at trace end is still substantial.
        final_depth = result.enq_qdepth[-1]
        assert final_depth > 1000
