"""Tests for the always-on diagnosis service (repro.service)."""

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queries import QueryInterval
from repro.errors import (
    IngestFailed,
    QueryError,
    ServiceDegradedRejection,
    ServiceOverloadError,
    ServiceShuttingDown,
)
from repro.experiments.runner import simulate_workload
from repro.obs.metrics import Metrics
from repro.service import (
    AdmissionController,
    DegradationController,
    DiagnosisService,
    IngestSupervisor,
    LiveIngest,
    ServiceConfig,
    ServiceHarness,
    SLOTargets,
    SLOTracker,
    Stage,
    TokenBucket,
)
from repro.service import protocol
from repro.service.client import ServiceClient

# ---------------------------------------------------------------------------
# admission control


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestAdmission:
    def test_token_bucket_rate_and_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0  # burst of 2
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.1)  # one token at 10/s
        clock.now += 0.1
        assert bucket.try_acquire() == 0.0  # refilled

    def test_disabled_bucket_always_admits(self):
        bucket = TokenBucket(rate_per_s=0.0)
        assert all(bucket.try_acquire() == 0.0 for _ in range(100))

    def test_queue_full_rejection_is_typed_with_hint(self):
        admission = AdmissionController(max_pending=2, metrics=Metrics())
        admission.admit(0)
        admission.admit(1)
        with pytest.raises(ServiceOverloadError) as excinfo:
            admission.admit(2)
        assert excinfo.value.retry_after_ms > 0
        assert admission.admitted == 2 and admission.rejected == 1

    def test_rate_rejection_hints_refill_time(self):
        clock = FakeClock()
        admission = AdmissionController(
            max_pending=100, rate_per_s=10.0, burst=1.0, clock=clock
        )
        admission.admit(0)
        with pytest.raises(ServiceOverloadError) as excinfo:
            admission.admit(0)
        assert excinfo.value.retry_after_ms == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# degradation state machine


class TestDegradation:
    def test_escalates_one_stage_per_observation(self):
        controller = DegradationController()
        # Massive overload: still only one stage per observation.
        assert controller.observe(1.0, 10_000.0) == Stage.BATCH_ONLY
        assert controller.observe(1.0, 10_000.0) == Stage.REDUCED
        assert controller.observe(1.0, 10_000.0) == Stage.REDUCED  # floor

    def test_recovery_needs_calm_hold(self):
        controller = DegradationController(calm_hold=3)
        controller.observe(1.0, 10_000.0)
        assert controller.stage == Stage.BATCH_ONLY
        controller.observe(0.0, 0.0)
        controller.observe(0.0, 0.0)
        assert controller.stage == Stage.BATCH_ONLY  # still holding
        controller.observe(0.0, 0.0)
        assert controller.stage == Stage.NORMAL

    def test_loud_sample_resets_the_hold(self):
        controller = DegradationController(calm_hold=2, recover_frac=0.5)
        controller.observe(1.0, 10_000.0)
        controller.observe(0.0, 0.0)
        # Above recover_frac * entry threshold: not calm, hold resets.
        controller.observe(0.4, 0.0)
        controller.observe(0.0, 0.0)
        assert controller.stage == Stage.BATCH_ONLY
        controller.observe(0.0, 0.0)
        assert controller.stage == Stage.NORMAL

    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),
                st.floats(min_value=0.0, max_value=1000.0),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_never_skips_a_stage_and_always_recovers(self, samples):
        """The satellite property: (a) the stage index moves by at most
        one per observation in either direction; (b) sustained calm
        always walks the controller back to NORMAL."""
        controller = DegradationController(calm_hold=2)
        previous = controller.stage
        for queue_frac, p99_ms in samples:
            current = controller.observe(queue_frac, p99_ms)
            assert abs(int(current) - int(previous)) <= 1
            previous = current
        # (b) drop the load: recovery within calm_hold * stages samples.
        for _ in range(2 * len(Stage) + 2):
            previous = controller.observe(0.0, 0.0)
        assert controller.stage == Stage.NORMAL

    def test_transitions_are_recorded_in_order(self):
        controller = DegradationController(calm_hold=1)
        controller.observe(1.0, 0.0)
        controller.observe(1.0, 1_000.0)
        controller.observe(0.0, 0.0)
        assert controller.transitions == [
            (Stage.NORMAL, Stage.BATCH_ONLY),
            (Stage.BATCH_ONLY, Stage.REDUCED),
            (Stage.REDUCED, Stage.BATCH_ONLY),
        ]


# ---------------------------------------------------------------------------
# SLO tracking


class TestSLO:
    def test_percentiles_and_burn_rate(self):
        tracker = SLOTracker(SLOTargets(p99_ms=10.0, error_budget=0.1))
        for latency in range(1, 101):  # 1..100 ms; 90 within, 10 beyond
            tracker.observe(float(latency))
        assert tracker.percentile(0.5) == 50.0
        assert tracker.percentile(0.99) == 99.0
        assert tracker.violations == 90  # latencies 11..100 missed p99=10
        assert tracker.burn_rate == pytest.approx(9.0)  # 90% misses / 10% budget

    def test_errors_count_against_the_budget(self):
        tracker = SLOTracker(SLOTargets(p99_ms=1_000.0, error_budget=0.5))
        tracker.observe(1.0, ok=False)
        tracker.observe(1.0, ok=True)
        assert tracker.errors == 1 and tracker.violations == 1
        assert tracker.burn_rate == pytest.approx(1.0)

    def test_metrics_export(self):
        metrics = Metrics()
        tracker = SLOTracker(SLOTargets(), metrics=metrics)
        tracker.observe(2.0)
        assert metrics.counter("pq_service_requests_total").value == 1
        assert metrics.histogram("pq_service_latency_us").count == 1


# ---------------------------------------------------------------------------
# live ingest + supervisor


def _tiny_pipeline():
    run = simulate_workload("uw", 4_000_000, load=1.2, seed=7, engine="fused")
    from repro.engine.fused import FusedIngestPipeline
    from repro.experiments.runner import run_trace_through_fifo_batch

    records, _ = run_trace_through_fifo_batch(run.trace)
    from repro.core.config import PrintQueueConfig
    from repro.core.printqueue import PrintQueuePort

    span = records[-1].deq_timestamp - records[0].deq_timestamp
    pq = PrintQueuePort(
        PrintQueueConfig(),
        d_ns=span / (len(records) - 1),
        model_dp_read_cost=False,
    )
    return FusedIngestPipeline(pq, records)


class TestLiveIngest:
    def test_chunked_drive_drains(self):
        ingest = LiveIngest(_tiny_pipeline(), chunk_events=1000)
        while ingest.step_chunk():
            pass
        assert ingest.status == "drained"
        assert ingest.events_ingested > 0
        assert ingest.chunks_ingested >= 1
        assert ingest.step_chunk() is False  # idempotent after drain

    def test_generator_crash_is_fail_stop(self):
        class Boom:
            def steps(self):
                yield 10
                raise RuntimeError("register bank on fire")

        ingest = LiveIngest(Boom(), chunk_events=1000)
        with pytest.raises(IngestFailed):
            ingest.step_chunk()
        assert ingest.status == "failed"
        assert ingest.step_chunk() is False  # poisoned permanently

    def test_supervisor_restarts_chaos_crashes(self):
        crashes = {"left": 2}

        def chaos():
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise OSError("injected task crash")

        ingest = LiveIngest(_tiny_pipeline(), chunk_events=5_000)
        supervisor = IngestSupervisor(
            ingest,
            max_restarts=3,
            backoff_base_s=0.001,
            metrics=Metrics(),
            chaos_hook=chaos,
        )
        asyncio.run(supervisor.run())
        assert supervisor.state == "drained"
        assert supervisor.restarts == 2
        assert ingest.status == "drained"

    def test_supervisor_gives_up_past_restart_budget(self):
        def chaos():
            raise OSError("injected task crash")

        ingest = LiveIngest(_tiny_pipeline(), chunk_events=5_000)
        supervisor = IngestSupervisor(
            ingest, max_restarts=2, backoff_base_s=0.001, chaos_hook=chaos
        )
        with pytest.raises(IngestFailed):
            asyncio.run(supervisor.run())
        assert supervisor.state == "failed"
        assert supervisor.restarts == 2

    def test_backoff_is_bounded_exponential(self):
        ingest = LiveIngest(_tiny_pipeline())
        supervisor = IngestSupervisor(
            ingest, max_restarts=10, backoff_base_s=0.1, backoff_cap_s=0.5
        )
        delays = []
        for restarts in range(5):
            supervisor.restarts = restarts
            delays.append(supervisor.next_backoff_s())
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


# ---------------------------------------------------------------------------
# protocol round-trips


class TestProtocol:
    def test_encode_decode_round_trip(self):
        payload = {"id": 3, "op": "query", "args": {"start_ns": 1, "end_ns": 2}}
        assert protocol.decode(protocol.encode(payload)) == payload

    def test_malformed_line_is_typed(self):
        with pytest.raises(QueryError):
            protocol.decode(b"{nope\n")
        with pytest.raises(QueryError):
            protocol.decode(b"[1,2]\n")

    @pytest.mark.parametrize(
        "exc",
        [
            ServiceOverloadError("full", retry_after_ms=12.5),
            ServiceDegradedRejection("shed", stage="REDUCED", retry_after_ms=3.0),
            ServiceShuttingDown("draining"),
            QueryError("bad interval"),
            IngestFailed("dead"),
        ],
    )
    def test_errors_round_trip_typed(self, exc):
        with pytest.raises(type(exc)) as excinfo:
            protocol.raise_error(protocol.error_payload(exc))
        raised = excinfo.value
        assert str(raised) == str(exc)
        if isinstance(exc, ServiceOverloadError):
            assert raised.retry_after_ms == exc.retry_after_ms
        if isinstance(exc, ServiceDegradedRejection):
            assert raised.stage == exc.stage


# ---------------------------------------------------------------------------
# the service end to end (in-process harness)

SERVICE_DURATION_NS = 12_000_000


def _service_config(**overrides):
    defaults = dict(
        workload="ws",
        duration_ns=SERVICE_DURATION_NS,
        load=1.2,
        seed=3,
        engine="fused",
        max_pending=16,
        calm_hold=2,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _wait_drained(client, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status()
        if status["ingest"]["status"] in ("drained", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError("ingest did not drain in time")


class TestServiceEndToEnd:
    def test_live_serving_matches_offline_run(self):
        """The tentpole equivalence: a query against the live service,
        after ingest drains, is numerically identical to the same query
        against an offline run of the same (workload, seed, config)."""
        offline = simulate_workload(
            "ws", SERVICE_DURATION_NS, load=1.2, seed=3, engine="fused"
        )
        end = offline.records[-1].deq_timestamp
        interval = QueryInterval(end - 2_000_000, end)
        expected = offline.pq.query(interval=interval)
        with ServiceHarness(config=_service_config()) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                assert client.ping()
                _wait_drained(client)
                answer = client.query(interval.start_ns, interval.end_ns)
        assert answer["stage"] == "NORMAL"
        assert answer["degraded"] is False
        expected_map = {str(f): v for f, v in expected.estimate.items()}
        assert answer["estimate"] == pytest.approx(expected_map)
        assert len(answer["estimate"]) > 0
        assert harness.service.state == "stopped"

    def test_overload_gets_typed_rejection_with_retry_hint(self):
        config = _service_config(rate_limit_qps=0.001, burst=1.0)
        with ServiceHarness(config=config) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                _wait_drained(client)
                end = SERVICE_DURATION_NS
                client.query(end - 1_000_000, end)  # burst token
                with pytest.raises(ServiceOverloadError) as excinfo:
                    client.query(end - 1_000_000, end)
                assert excinfo.value.retry_after_ms > 0
        assert harness.service.admission.rejected >= 1

    def test_degraded_stage_always_flags_answers(self):
        """Satellite property, part 3: while the service sits in a
        degraded stage, every answer it returns is flagged degraded."""
        with ServiceHarness(config=_service_config()) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                _wait_drained(client)
                harness.service.degrade.stage = Stage.REDUCED
                # Freeze the stage: recovery hysteresis would otherwise
                # step back down between queries (which is correct —
                # this test pins behaviour *while* degraded).
                harness.service.degrade.calm_hold = 10**9
                end = SERVICE_DURATION_NS
                for span in (500_000, 1_000_000, 4_000_000):
                    answer = client.query(end - span, end)
                    assert answer["stage"] == "REDUCED"
                    assert answer["degraded"] is True
                    assert "coverage" in answer

    def test_reduced_stage_reports_truncated_coverage(self):
        # Fast poll cadence (small m0/k) so the run holds many periodic
        # snapshots, then keep only the newest one: the reduced plan's
        # horizon is visibly shorter than the full history.
        from repro.core.config import PrintQueueConfig

        with ServiceHarness(
            config=_service_config(
                reduced_keep_snapshots=1,
                pq_config=PrintQueueConfig(m0=8, k=10, alpha=1, T=3),
            )
        ) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                _wait_drained(client)
                harness.service.degrade.stage = Stage.REDUCED
                harness.service.degrade.calm_hold = 10**9
                # An interval reaching back to t=1 must report the
                # pre-cutoff history as lost.
                answer = client.query(1, SERVICE_DURATION_NS)
                assert answer["degraded"] is True
                assert answer["lost_ns"], "expected truncated history"
                (start, _end) = answer["lost_ns"][0]
                assert start == 1

    def test_batch_only_stage_matches_normal_numbers(self):
        offline = simulate_workload(
            "ws", SERVICE_DURATION_NS, load=1.2, seed=3, engine="fused"
        )
        end = offline.records[-1].deq_timestamp
        interval = QueryInterval(end - 2_000_000, end)
        expected = offline.pq.query(interval=interval)
        with ServiceHarness(config=_service_config()) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                _wait_drained(client)
                harness.service.degrade.stage = Stage.BATCH_ONLY
                harness.service.degrade.calm_hold = 10**9
                answer = client.query(interval.start_ns, interval.end_ns)
        assert answer["stage"] == "BATCH_ONLY"
        assert answer["degraded"] is False  # exact, just cheaper
        expected_map = {str(f): v for f, v in expected.estimate.items()}
        assert answer["estimate"] == pytest.approx(expected_map)

    def test_service_under_faults_serves_with_zero_crashes(self):
        config = _service_config(faults="chaos")
        with ServiceHarness(config=config) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                status = _wait_drained(client)
                assert status["ingest"]["status"] == "drained"
                assert status["faults"] == "chaos"
                end = SERVICE_DURATION_NS
                answer = client.query(end - 2_000_000, end)
                assert "estimate" in answer
        assert harness.service.state == "stopped"

    def test_chaos_hook_restarts_are_supervised(self):
        crashes = {"left": 1}

        def chaos():
            if crashes["left"] > 0:
                crashes["left"] -= 1
                raise OSError("injected ingest-task crash")

        config = _service_config(backoff_base_s=0.001)
        harness = ServiceHarness(config=config, chaos_hook=chaos)
        try:
            host, port = harness.start()
            with ServiceClient(host, port) as client:
                status = _wait_drained(client)
                assert status["ingest"]["restarts"] == 1
                assert status["ingest"]["status"] == "drained"
        finally:
            harness.stop()

    def test_draining_service_rejects_new_requests(self):
        service = DiagnosisService(config=_service_config())
        service._draining = True

        async def _probe():
            return await service._handle_line(
                protocol.encode({"id": 1, "op": "ping"})
            )

        response = asyncio.run(_probe())
        assert response["ok"] is False
        assert response["error"]["type"] == "ServiceShuttingDown"

    def test_unknown_op_is_typed_error(self):
        with ServiceHarness(config=_service_config()) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                with pytest.raises(QueryError):
                    client.request("explode")

    def test_slo_section_populated_after_queries(self):
        with ServiceHarness(config=_service_config()) as harness:
            host, port = harness.service.address
            with ServiceClient(host, port) as client:
                _wait_drained(client)
                end = SERVICE_DURATION_NS
                for _ in range(5):
                    client.query(end - 1_000_000, end)
                status = client.status()
        slo = status["slo"]
        assert slo["total"] >= 5
        assert slo["p99_ms"] > 0
        metrics = harness.service.metrics
        assert metrics.counter("pq_service_requests_total").value >= 5
