"""Tests for the control-plane analysis program: polling, snapshot
coverage, interval splitting, and count recovery on synthetic streams."""

import pytest

from repro.core.analysis import AnalysisProgram
from repro.core.config import PrintQueueConfig
from repro.core.queries import QueryInterval
from repro.errors import QueryError
from repro.switch.packet import FlowKey

FLOWS = [
    FlowKey.from_strings("10.0.%d.%d" % (i // 200, i % 200 + 1), "10.1.0.1", 5000 + i, 80)
    for i in range(16)
]


def cfg(m0=4, k=6, alpha=1, T=3):
    return PrintQueueConfig(m0=m0, k=k, alpha=alpha, T=T)


def feed_uniform(analysis, start_ns, end_ns, gap_ns, flow_of=None):
    """One packet every gap_ns; returns per-flow true counts."""
    counts = {}
    t = start_ns
    i = 0
    while t < end_ns:
        flow = FLOWS[i % len(FLOWS)] if flow_of is None else flow_of(i)
        analysis.on_dequeue(flow, t)
        counts[flow] = counts.get(flow, 0) + 1
        t += gap_ns
        i += 1
    return counts


class TestPolling:
    def test_periodic_poll_stores_snapshot(self):
        analysis = AnalysisProgram(cfg())
        feed_uniform(analysis, 0, 1000, 16)
        snap = analysis.periodic_poll(1000)
        assert analysis.tw_snapshots == [snap]
        assert snap.source == "periodic"
        assert len(analysis.qm_snapshots) == 1

    def test_snapshot_ring_bounded(self):
        analysis = AnalysisProgram(cfg(), max_snapshots=3)
        for i in range(10):
            analysis.periodic_poll(i * 1000)
        assert len(analysis.tw_snapshots) == 3
        assert len(analysis.qm_snapshots) == 3

    def test_valid_from_tracks_activation(self):
        analysis = AnalysisProgram(cfg())
        s1 = analysis.periodic_poll(1000)
        s2 = analysis.periodic_poll(2000)
        assert s1.valid_from_ns == 0
        assert s2.valid_from_ns == 1000


class TestQueryNoSnapshots:
    def test_raises(self):
        analysis = AnalysisProgram(cfg())
        with pytest.raises(QueryError):
            analysis.query_time_windows(QueryInterval(0, 10))

    def test_qm_raises(self):
        analysis = AnalysisProgram(cfg())
        with pytest.raises(QueryError):
            analysis.query_queue_monitor(0)


class TestRecovery:
    def test_window0_exact_for_recent_interval(self):
        """A query entirely inside window 0's span is exact: one packet
        per cell, no compression."""
        config = cfg(m0=4, k=8, alpha=1, T=3)
        analysis = AnalysisProgram(config, d_ns=16.0)
        # One packet per cell period (gap = 2^m0 = 16 ns): no collisions.
        feed_uniform(analysis, 0, 40_000, 16)
        analysis.periodic_poll(40_000)
        # Window 0 period = 2^(4+8) = 4096 ns; query the last 2000 ns.
        interval = QueryInterval(38_000, 40_000)
        estimate = analysis.query_time_windows(interval)
        expected = 2000 // 16
        assert estimate.total == pytest.approx(expected, abs=2)

    def test_deep_window_recovery_within_tolerance(self):
        """Queries over old spans hit compressed windows; coefficient
        division recovers totals within a modest relative error."""
        config = cfg(m0=4, k=8, alpha=1, T=4)
        analysis = AnalysisProgram(config, d_ns=16.0)
        feed_uniform(analysis, 0, 60_000, 16)
        analysis.periodic_poll(60_000)
        # Window 0 covers [~56k, 60k]; query [20k, 40k] (deep windows).
        interval = QueryInterval(20_000, 40_000)
        estimate = analysis.query_time_windows(interval)
        expected = 20_000 / 16
        assert estimate.total == pytest.approx(expected, rel=0.4)

    def test_interval_split_across_snapshots(self):
        config = cfg(m0=4, k=8, alpha=1, T=3)
        analysis = AnalysisProgram(config, d_ns=16.0)
        feed_uniform(analysis, 0, 5_000, 16)
        analysis.periodic_poll(5_000)
        feed_uniform(analysis, 5_000, 10_000, 16)
        analysis.periodic_poll(10_000)
        # The interval spans both snapshots' coverage.
        estimate = analysis.query_time_windows(QueryInterval(4_000, 6_000))
        assert estimate.total == pytest.approx(2000 / 16, rel=0.25)

    def test_per_flow_attribution(self):
        config = cfg(m0=4, k=8, alpha=1, T=2)
        analysis = AnalysisProgram(config, d_ns=16.0)
        # Alternate two flows strictly.
        truth = feed_uniform(
            analysis, 0, 4_000, 16, flow_of=lambda i: FLOWS[i % 2]
        )
        analysis.periodic_poll(4_000)
        estimate = analysis.query_time_windows(QueryInterval(0, 4_000))
        for flow in (FLOWS[0], FLOWS[1]):
            assert estimate[flow] == pytest.approx(truth[flow], rel=0.1)

    def test_coefficients_disabled_underestimates(self):
        """Ablation: without coefficient recovery, deep-window counts are
        biased low."""
        config = cfg(m0=4, k=8, alpha=1, T=4)
        with_c = AnalysisProgram(config, d_ns=16.0)
        without_c = AnalysisProgram(config, d_ns=16.0, apply_coefficients=False)
        for analysis in (with_c, without_c):
            feed_uniform(analysis, 0, 60_000, 16)
            analysis.periodic_poll(60_000)
        interval = QueryInterval(20_000, 40_000)
        assert (
            without_c.query_time_windows(interval).total
            < with_c.query_time_windows(interval).total
        )


class TestDpRead:
    def test_instant_mode_nondestructive(self):
        analysis = AnalysisProgram(cfg(), model_dp_read_cost=False)
        feed_uniform(analysis, 0, 1000, 16)
        active_before = analysis.tw_banks.active_index
        snap = analysis.dp_read(1000)
        assert snap is not None
        assert analysis.tw_banks.active_index == active_before
        assert analysis.tw_snapshots == []  # not stored

    def test_hardware_mode_locks(self):
        analysis = AnalysisProgram(cfg(), model_dp_read_cost=True)
        feed_uniform(analysis, 0, 1000, 16)
        first = analysis.dp_read(1000)
        assert first is not None
        # A trigger during the modelled PCIe read window is rejected.
        assert analysis.dp_read(1001) is None
        assert analysis.tw_banks.dp_rejections == 1
        # After the lock expires, reads succeed again.
        later = analysis.dp_read(1000 + 10**9)
        assert later is not None

    def test_hardware_mode_rotates_banks(self):
        analysis = AnalysisProgram(cfg(), model_dp_read_cost=True)
        before = analysis.tw_banks.active_index
        analysis.dp_read(100)
        assert analysis.tw_banks.active_index != before


class TestQueueMonitorQueries:
    def test_closest_snapshot_selected(self):
        analysis = AnalysisProgram(cfg())
        analysis.queue_monitor.on_enqueue(FLOWS[0], 1)
        analysis.periodic_poll(1000)
        analysis.queue_monitor.on_enqueue(FLOWS[1], 2)
        analysis.periodic_poll(2000)
        snap = analysis.query_queue_monitor(1200)
        assert snap.time_ns == 1000

    def test_original_culprits_counts(self):
        analysis = AnalysisProgram(cfg())
        analysis.queue_monitor.on_enqueue(FLOWS[0], 1)
        analysis.queue_monitor.on_enqueue(FLOWS[0], 2)
        analysis.queue_monitor.on_enqueue(FLOWS[1], 3)
        analysis.periodic_poll(1000)
        estimate = analysis.original_culprits(1000)
        assert estimate[FLOWS[0]] == 2
        assert estimate[FLOWS[1]] == 1
