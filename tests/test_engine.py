"""The batched ingest engine: bit-identical to the scalar reference path.

The contract of ``repro.engine`` is equivalence, not approximation: the
vectorised ``absorb_batch`` / ``apply_batch`` kernels and the
poll-aligned :class:`IngestPipeline` must leave every register bank,
counter, and snapshot in exactly the state the scalar per-packet loop
produces.  These tests compare full state signatures, including
collision-heavy configurations where the Algorithm-1 passing rule fires
constantly.
"""

import os

import numpy as np
import pytest

from repro.core.config import PrintQueueConfig
from repro.core.queuemonitor import QueueMonitor
from repro.core.windowset import TimeWindowSet
from repro.engine import IngestPipeline, ParallelSweep, ResultCache, SweepCell
from repro.engine.ingest import _GatheredFlows
from repro.experiments.runner import drive_printqueue, simulate_workload
from repro.switch.fastpath import merge_event_streams
from repro.switch.packet import FlowKey

# ---------------------------------------------------------------------------
# state signatures


def _windowset_state(ws: TimeWindowSet):
    return (
        [(tuple(w.cycle_ids), tuple(w.flows)) for w in ws.windows],
        (ws.updates, ws.passes, ws.drops),
    )


def _monitor_state(qm: QueueMonitor):
    return (
        qm.top,
        qm._seq,
        qm.overflows,
        tuple(qm.inc_seq),
        tuple(qm.inc_flow),
        tuple(qm.dec_seq),
        tuple(qm.dec_flow),
    )


def _tw_snapshot_state(snapshot):
    return (
        snapshot.read_time_ns,
        snapshot.source,
        snapshot.valid_from_ns,
        [
            (fw.window_index, fw.shift, tuple(fw.cells), fw.reference_tts)
            for fw in snapshot.windows
        ],
    )


def _qm_snapshot_state(snapshot):
    return (
        snapshot.time_ns,
        snapshot.top,
        tuple(snapshot.inc_seq),
        tuple(snapshot.inc_flow),
        tuple(snapshot.dec_seq),
    )


def _port_state(pq):
    analysis = pq.analysis
    banks = analysis.tw_banks
    return (
        pq.packets_seen,
        banks.active_index,
        banks.periodic_flips,
        banks.dp_freezes,
        banks.dp_rejections,
        [_windowset_state(bank) for bank in banks.banks],
        _monitor_state(analysis.queue_monitor),
        [_tw_snapshot_state(s) for s in analysis.tw_snapshots],
        [_qm_snapshot_state(s) for s in analysis.qm_snapshots],
    )


def _flow(i: int) -> FlowKey:
    return FlowKey.from_strings(
        f"10.0.{(i >> 8) & 255}.{i & 255}", "10.1.0.1", 5000 + i % 37, 80
    )


# ---------------------------------------------------------------------------
# end-to-end equivalence


def _run_both(config, duration_ns, load, seed, dp_triggers=None):
    scalar = simulate_workload(
        "ws",
        duration_ns=duration_ns,
        load=load,
        config=config,
        seed=seed,
        dp_trigger_indices=dp_triggers,
        engine="scalar",
    )
    batched = simulate_workload(
        "ws",
        duration_ns=duration_ns,
        load=load,
        config=config,
        seed=seed,
        dp_trigger_indices=dp_triggers,
        engine="batched",
    )
    return scalar, batched


def test_batched_ingest_matches_scalar_end_to_end():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    scalar, batched = _run_both(
        config, duration_ns=2_000_000, load=1.3, seed=11, dp_triggers={5, 60, 200}
    )
    assert len(scalar.records) == len(batched.records) > 100
    assert _port_state(scalar.pq) == _port_state(batched.pq)
    assert scalar.dp_results.keys() == batched.dp_results.keys()
    for idx, result in scalar.dp_results.items():
        other = batched.dp_results[idx]
        assert result.trigger_time_ns == other.trigger_time_ns
        assert result.interval == other.interval
        assert result.estimate._counts == other.estimate._counts


def test_batched_ingest_matches_scalar_collision_heavy():
    # k=4 gives 16-cell windows, so nearly every insert collides and the
    # passing rule is exercised across all levels; the tiny monitor keeps
    # the very frequent polls (set period 2^10 ns) cheap.
    config = PrintQueueConfig(m0=4, k=4, alpha=1, T=3, qm_levels=256)
    scalar, batched = _run_both(config, duration_ns=400_000, load=1.4, seed=3)
    assert _port_state(scalar.pq) == _port_state(batched.pq)
    bank = batched.pq.analysis.tw_banks.active
    assert bank.drops + bank.passes > 0  # the config really does collide


def test_batched_queries_match_scalar_queries():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    scalar, batched = _run_both(config, duration_ns=1_500_000, load=1.3, seed=7)
    victim = max(scalar.records, key=lambda r: r.queuing_delay)
    from repro.core.queries import QueryInterval

    interval = QueryInterval.for_victim(victim.enq_timestamp, victim.deq_timestamp)
    assert (
        scalar.pq.query(interval=interval).estimate._counts
        == batched.pq.query(interval=interval).estimate._counts
    )
    assert (
        scalar.pq.query(at_ns=victim.enq_timestamp).estimate._counts
        == batched.pq.query(at_ns=victim.enq_timestamp).estimate._counts
    )


def test_pipeline_slices_at_poll_boundaries():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3, qm_levels=1024)
    run = simulate_workload(
        "ws", duration_ns=2_000_000, load=1.2, config=config, seed=5, engine="scalar"
    )
    from repro.core.printqueue import PrintQueuePort

    pq = PrintQueuePort(config, d_ns=1200.0, model_dp_read_cost=False)
    pipeline = IngestPipeline(pq, run.records)
    pipeline.run()
    # The trace spans many set periods, so the stream must have been cut
    # into several poll-aligned batches (one batch would mean no polls).
    assert pipeline.batches_processed > 1
    assert pq.analysis.tw_banks.periodic_flips > 0


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        drive_printqueue([], None, engine="turbo")


# ---------------------------------------------------------------------------
# kernel-level randomized equivalence


@pytest.mark.parametrize("k,alpha,T", [(4, 1, 3), (6, 2, 4), (8, 1, 2)])
def test_absorb_batch_matches_scalar_randomized(k, alpha, T):
    config = PrintQueueConfig(m0=4, k=k, alpha=alpha, T=T)
    rng = np.random.default_rng(k * 100 + alpha * 10 + T)
    # Clustered timestamps maximise same-cell and adjacent-cycle hits.
    gaps = rng.integers(1, 1 << (config.m0 + 2), size=600)
    timestamps = np.cumsum(gaps).astype(np.int64)
    flows = [_flow(int(i)) for i in rng.integers(0, 40, size=600)]

    reference = TimeWindowSet(config)
    for flow, ts in zip(flows, timestamps.tolist()):
        reference.update(flow, ts)

    batched = TimeWindowSet(config)
    # Split into uneven chunks to exercise cross-batch cell state.
    for lo, hi in ((0, 1), (1, 7), (7, 250), (250, 600)):
        batched.absorb_batch(flows[lo:hi], timestamps[lo:hi])

    assert _windowset_state(reference) == _windowset_state(batched)


def test_absorb_batch_validates_lengths():
    ws = TimeWindowSet(PrintQueueConfig(m0=4, k=4, alpha=1, T=2))
    with pytest.raises(ValueError):
        ws.absorb_batch([_flow(0)], np.array([1, 2], dtype=np.int64))
    assert ws.absorb_batch([], np.array([], dtype=np.int64)) == 0
    assert ws.updates == 0


def test_apply_batch_matches_scalar_randomized():
    rng = np.random.default_rng(42)
    for granularity in (1, 3):
        reference = QueueMonitor(levels=32, granularity=granularity)
        batched = QueueMonitor(levels=32, granularity=granularity)
        depth = 0
        events = []
        for _ in range(500):
            enq = depth == 0 or rng.random() < 0.55
            depth += 1 if enq else -1
            # Occasionally exceed the register to exercise overflow clamping.
            d = depth + (100 if rng.random() < 0.02 else 0)
            events.append((enq, _flow(int(rng.integers(0, 20))), d))
        for enq, flow, d in events:
            if enq:
                reference.on_enqueue(flow, d)
            else:
                reference.on_dequeue(flow, d)
        for lo, hi in ((0, 3), (3, 120), (120, 500)):
            chunk = events[lo:hi]
            batched.apply_batch(
                np.array([e[0] for e in chunk], dtype=bool),
                [e[1] for e in chunk],
                np.array([e[2] for e in chunk], dtype=np.int64),
            )
        assert _monitor_state(reference) == _monitor_state(batched)


def test_apply_batch_empty_is_noop():
    qm = QueueMonitor(levels=8)
    qm.apply_batch(np.array([], dtype=bool), [], np.array([], dtype=np.int64))
    assert qm._seq == 0 and qm.top == 0


# ---------------------------------------------------------------------------
# stream merging


def _naive_merge(enq, deq):
    # Tie rule: an enqueue at t precedes a dequeue at t (a packet cannot
    # leave before the packet arriving at the same instant is counted).
    events = sorted(
        [(int(t), 0, i) for i, t in enumerate(enq)]
        + [(int(t), 1, i) for i, t in enumerate(deq)]
    )
    return events


def test_merge_event_streams_matches_naive_merge():
    rng = np.random.default_rng(9)
    n = 400
    enq = np.sort(rng.integers(0, 5_000, size=n)).astype(np.int64)
    deq = np.sort(enq + rng.integers(1, 3_000, size=n)).astype(np.int64)
    stream = merge_event_streams(enq, deq)
    expected = _naive_merge(enq, deq)
    got = [
        (int(t), 0 if e else 1, int(r))
        for t, e, r in zip(stream.time_ns, stream.is_enqueue, stream.record_index)
    ]
    assert got == expected
    depth = np.cumsum(np.where(stream.is_enqueue, 1, -1))
    assert np.array_equal(depth, stream.depth_after)
    assert depth.min() >= 0 and depth[-1] == 0


def test_merge_event_streams_enqueue_wins_ties():
    enq = np.array([0, 10], dtype=np.int64)
    deq = np.array([10, 20], dtype=np.int64)
    stream = merge_event_streams(enq, deq)
    # At t=10 the enqueue of record 1 must precede the dequeue of record 0.
    assert stream.is_enqueue.tolist() == [True, True, False, False]
    assert stream.depth_after.min() >= 1 or stream.depth_after.tolist()[-1] == 0


def test_merge_event_streams_unsorted_enqueues_fall_back():
    # FIFO dequeue order does not imply enqueue order under priority
    # scheduling; the merge must sort the enqueue side when needed.
    enq = np.array([50, 10, 30], dtype=np.int64)
    deq = np.array([60, 70, 80], dtype=np.int64)
    stream = merge_event_streams(enq, deq)
    enq_events = [
        (int(t), int(r))
        for t, e, r in zip(stream.time_ns, stream.is_enqueue, stream.record_index)
        if e
    ]
    assert enq_events == [(10, 1), (30, 2), (50, 0)]


def test_merge_event_streams_rejects_unsorted_dequeues():
    enq = np.array([0, 1], dtype=np.int64)
    deq = np.array([10, 5], dtype=np.int64)
    with pytest.raises(ValueError):
        merge_event_streams(enq, deq)


def test_gathered_flows_lazy_view():
    base = np.empty(6, dtype=object)
    flows = [_flow(i) for i in range(6)]
    base[:] = flows
    view = _GatheredFlows(base, np.array([5, 3, 1, 0], dtype=np.int64))
    assert len(view) == 4
    assert view[1] is flows[3]
    narrowed = view[np.array([True, False, True, False])]
    assert len(narrowed) == 2 and narrowed[1] is flows[1]
    sliced = view[1:3]
    assert [sliced[i] for i in range(len(sliced))] == [flows[3], flows[1]]


# ---------------------------------------------------------------------------
# the parallel sweep fabric


def test_result_cache_counts_hits_and_misses():
    cache = ResultCache()
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or("a", compute) == 42
    assert cache.get_or("a", compute) == 42
    assert len(calls) == 1
    assert (cache.hits, cache.misses) == (1, 1)
    cache.put("b", 7)
    assert "b" in cache and cache.get("b") == 7
    cache.clear()
    assert len(cache) == 0 and cache.get("a") is None


def test_parallel_sweep_caches_and_dedups():
    evaluated = []

    def worker(cell):
        evaluated.append(cell)
        return cell * 10

    sweep = ParallelSweep(worker=worker, max_workers=1)
    results = sweep.run([3, 1, 3, 2])
    assert results == [30, 10, 30, 20]
    assert sorted(evaluated) == [1, 2, 3]  # duplicate evaluated once
    assert sweep.last_execution == "serial"
    again = sweep.run([1, 2, 3])
    assert again == [10, 20, 30]
    assert evaluated.count(1) == 1  # fully served from cache
    assert sweep.last_execution == "cached"


def test_parallel_sweep_pool_falls_back_on_unpicklable_worker():
    sweep = ParallelSweep(worker=lambda c: c + 1, max_workers=4)
    assert sweep.run([1, 2, 3]) == [2, 3, 4]
    assert sweep.last_execution in ("pool", "serial")


def test_sweep_cell_is_hashable_cache_key():
    config = PrintQueueConfig(m0=6, k=8, alpha=2, T=3)
    a = SweepCell(workload="ws", config=config, duration_ns=1000)
    b = SweepCell(workload="ws", config=config, duration_ns=1000)
    assert a == b and hash(a) == hash(b)
    assert a != SweepCell(workload="ws", config=config, duration_ns=1000, port=1)
    # the fault profile is part of the cache key: a faulted run must never
    # be served from a fault-free cell's cached result.
    faulted = SweepCell(workload="ws", config=config, duration_ns=1000, faults="chaos")
    assert a != faulted and hash(faulted) == hash(faulted)


# ---------------------------------------------------------------------------
# sweep resilience: worker bugs vs pool-infrastructure failures
#
# Cells are (parent_pid, value) pairs so module-level workers — picklable
# by reference under the fork start method — can tell whether they run in
# the parent (serial / in-process retry) or in a pool child.


def _pool_available() -> bool:
    """Whether this environment can actually run a process pool."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            return list(pool.map(abs, [-1])) == [1]
    except Exception:
        return False


def _fails_in_child_worker(cell):
    """Raises only inside pool children; succeeds on in-process retry."""
    parent_pid, value = cell
    if os.getpid() != parent_pid:
        raise RuntimeError("transient child-only failure")
    return value * 10


def _always_fails_worker(cell):
    """A genuine worker bug: fails everywhere, retries included."""
    raise ValueError(f"cell bomb: {cell!r}")


def _crashes_child_worker(cell):
    """Kills the pool child outright, breaking the pool itself."""
    parent_pid, value = cell
    if os.getpid() != parent_pid:
        os._exit(1)
    return value * 10


@pytest.mark.skipif(not _pool_available(), reason="no subprocess support")
def test_sweep_retries_worker_failures_in_process():
    cells = [(os.getpid(), v) for v in range(4)]
    sweep = ParallelSweep(worker=_fails_in_child_worker, max_workers=2)
    results = sweep.run(cells)
    assert results == [0, 10, 20, 30]
    assert sweep.last_execution == "pool"
    # every cell failed once in a child and was recovered by a retry
    assert sweep.cell_retries_used == len(cells)
    assert sweep.pool_restarts == 0


def test_sweep_reraises_genuine_worker_exceptions():
    """A worker bug propagates with its original type — it is never
    masked as "no subprocess support" and silently re-run serially."""
    for max_workers in (1, 4):
        sweep = ParallelSweep(worker=_always_fails_worker, max_workers=max_workers)
        with pytest.raises(ValueError, match="cell bomb"):
            sweep.run([(os.getpid(), 1)])
        assert sweep.cell_retries_used == sweep.cell_retries


@pytest.mark.skipif(not _pool_available(), reason="no subprocess support")
def test_sweep_survives_crashed_pool_workers():
    cells = [(os.getpid(), v) for v in range(3)]
    sweep = ParallelSweep(worker=_crashes_child_worker, max_workers=2)
    results = sweep.run(cells)
    assert results == [0, 10, 20]
    # every pool (original + one restart) broke; serial fallback finished
    assert sweep.pool_restarts == sweep.max_pool_restarts == 1
    assert sweep.last_execution == "serial"


def _stalls_in_child_worker(cell):
    """Sleeps only inside pool children; instant on the serial fallback."""
    parent_pid, value = cell
    if os.getpid() != parent_pid:
        import time

        time.sleep(3.0)
    return value * 10


@pytest.mark.skipif(not _pool_available(), reason="no subprocess support")
def test_sweep_bounded_wait_falls_back_serial():
    """An expired pool wait degrades to serial and ticks the counter."""
    from repro.obs.metrics import Metrics

    metrics = Metrics()
    cells = [(os.getpid(), v) for v in range(2)]
    sweep = ParallelSweep(
        worker=_stalls_in_child_worker, max_workers=2, timeout_s=0.2, metrics=metrics
    )
    results = sweep.run(cells)
    assert results == [0, 10]
    assert sweep.last_execution == "serial"
    assert sweep.pool_timeouts == 1
    assert metrics.counter("pq_pool_timeouts_total").value == 1


def test_sweep_timeout_resolution(monkeypatch):
    from repro.engine.parallel import (
        DEFAULT_POOL_TIMEOUT_S,
        POOL_TIMEOUT_ENV,
        default_pool_timeout_s,
    )

    monkeypatch.delenv(POOL_TIMEOUT_ENV, raising=False)
    assert default_pool_timeout_s() == DEFAULT_POOL_TIMEOUT_S
    assert ParallelSweep(max_workers=1).timeout_s == DEFAULT_POOL_TIMEOUT_S
    monkeypatch.setenv(POOL_TIMEOUT_ENV, "2.5")
    assert default_pool_timeout_s() == 2.5
    monkeypatch.setenv(POOL_TIMEOUT_ENV, "0")
    assert default_pool_timeout_s() is None  # <= 0 disables the bound
    monkeypatch.setenv(POOL_TIMEOUT_ENV, "junk")
    assert default_pool_timeout_s() == DEFAULT_POOL_TIMEOUT_S
    assert ParallelSweep(max_workers=1, timeout_s=-1).timeout_s is None
    assert ParallelSweep(max_workers=1, timeout_s=7.0).timeout_s == 7.0
