"""Unit tests for time/rate conversions in repro.units."""

import pytest

from repro import units


class TestTxDelay:
    def test_64b_at_10g_is_51200_ps(self):
        assert units.tx_delay_ps(64, 10 * units.GBPS) == 51_200

    def test_1500b_at_10g_is_1200_ns(self):
        assert units.tx_delay_ns(1500, 10 * units.GBPS) == 1200

    def test_rounding_half_up(self):
        # 1 byte at 10 Gbps = 0.8 ns -> rounds to 1 ns.
        assert units.tx_delay_ns(1, 10 * units.GBPS) == 1

    def test_zero_size(self):
        assert units.tx_delay_ps(0, units.GBPS) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            units.tx_delay_ps(-1, units.GBPS)

    def test_non_positive_rate_rejected(self):
        with pytest.raises(ValueError):
            units.tx_delay_ps(100, 0)
        with pytest.raises(ValueError):
            units.tx_delay_ps(100, -5)

    def test_exact_at_40g(self):
        # 1500 B at 40 Gbps = 300 ns exactly.
        assert units.tx_delay_ns(1500, 40 * units.GBPS) == 300

    def test_scales_linearly_with_size(self):
        one = units.tx_delay_ps(100, units.GBPS)
        ten = units.tx_delay_ps(1000, units.GBPS)
        assert ten == 10 * one


class TestMinPktTxDelay:
    def test_default_min_packet(self):
        # 64 B at 10 Gbps = 51.2 ns -> 51 ns.
        assert units.min_pkt_tx_delay_ns(10 * units.GBPS) == 51

    def test_custom_min_packet(self):
        assert units.min_pkt_tx_delay_ns(10 * units.GBPS, 1500) == 1200

    def test_never_zero(self):
        # Even absurdly fast links yield at least 1 ns.
        assert units.min_pkt_tx_delay_ns(10**15, 1) == 1


class TestPps:
    def test_uw_like_rate(self):
        # ~100 B packets at 10 Gbps is 12.5 Mpps back-to-back.
        assert units.pps(10 * units.GBPS, 100) == pytest.approx(12.5e6)

    def test_mtu_rate(self):
        assert units.pps(10 * units.GBPS, 1500) == pytest.approx(833_333.3, rel=1e-3)

    def test_bad_packet_size(self):
        with pytest.raises(ValueError):
            units.pps(units.GBPS, 0)


class TestMisc:
    def test_bits_to_bytes_rounds_up(self):
        assert units.bits_to_bytes(8) == 1
        assert units.bits_to_bytes(9) == 2
        assert units.bits_to_bytes(0) == 0

    def test_ns_to_sec(self):
        assert units.ns_to_sec(1_500_000_000) == pytest.approx(1.5)
